"""Documentation checks: doctest the README quickstart and verify that
every intra-repo markdown link resolves.

Run from anywhere::

    python docs/check_docs.py

Exit status is non-zero on any failure; CI runs this as the ``docs``
job, and ``tests/test_docs.py`` wraps the same checks for the tier-1
suite.  External links (http/https/mailto) and pure anchors are not
checked; relative links are resolved against the file containing them,
and a ``#fragment`` suffix is ignored.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: markdown files whose ``>>>`` examples must run green (README's
#: quickstart uses the library through its public import surface)
DOCTESTED = ["README.md"]

#: directories never scanned for markdown
SKIP_DIRS = {".git", ".hypothesis", "__pycache__", ".pytest_cache"}

_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def doctest_failures(root: Path = REPO_ROOT) -> list[str]:
    """Run the ``>>>`` examples of the doctested markdown files;
    returns a list of human-readable failure descriptions."""
    sys.path.insert(0, str(root / "src"))
    failures = []
    try:
        for name in DOCTESTED:
            path = root / name
            results = doctest.testfile(
                str(path), module_relative=False, verbose=False
            )
            if results.failed:
                failures.append(
                    f"{name}: {results.failed} of {results.attempted} "
                    "doctest examples failed"
                )
    finally:
        sys.path.remove(str(root / "src"))
    return failures


def markdown_files(root: Path = REPO_ROOT) -> list[Path]:
    return [
        path
        for path in sorted(root.rglob("*.md"))
        if not (SKIP_DIRS & set(part.name for part in path.parents))
    ]


def broken_links(root: Path = REPO_ROOT) -> list[str]:
    """All intra-repo markdown links whose target file or directory
    does not exist, as ``file: target`` strings."""
    broken = []
    for path in markdown_files(root):
        for match in _LINK.finditer(path.read_text(encoding="utf-8")):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(f"{path.relative_to(root)}: {target}")
    return broken


def main() -> int:
    ok = True
    failures = doctest_failures()
    for failure in failures:
        print(f"DOCTEST FAIL  {failure}")
        ok = False
    if not failures:
        print(f"doctests green in {', '.join(DOCTESTED)}")
    links = broken_links()
    for link in links:
        print(f"BROKEN LINK   {link}")
        ok = False
    if not links:
        print(f"all intra-repo links resolve in {len(markdown_files())} markdown files")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
