"""Packaging shim (there is no pyproject.toml in this tree; the
reproduction is usually run straight from ``src`` via ``PYTHONPATH``).

Declares the package layout explicitly so ``pip install .`` works and
ships the ``py.typed`` marker (PEP 561) with the package data.
"""

from setuptools import find_packages, setup

setup(
    name="repro-fagin-middleware",
    version="0.1.0",
    description=(
        "Reproduction of 'Optimal Aggregation Algorithms for Middleware' "
        "(Fagin, Lotem, Naor; PODS 2001)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["py.typed"]},
    include_package_data=True,
    zip_safe=False,
    python_requires=">=3.10",
    install_requires=["numpy"],
)
