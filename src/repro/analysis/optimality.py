"""Empirical instance optimality: certificate ("shortest proof") search.

Section 5 of the paper interprets the cost of the best nondeterministic
algorithm on a database ``D`` as *the cost of the shortest proof that the
output really is the top k*.  Measuring an optimality ratio therefore
needs that proof cost.  Computing it exactly is infeasible in general, so
this module searches a natural certificate family:

    Run lockstep sorted access to some depth ``d``; then pay random
    accesses to (a) fully resolve each answer object ``y`` (establishing
    the lower bounds ``t(y)``) and (b) greedily reveal fields of any seen
    non-answer object whose upper bound ``B`` still exceeds the k-th
    answer grade, until ``B`` drops to it.  Unseen objects are bounded by
    the threshold ``t(bottoms)``, which must not exceed the k-th answer
    grade (unless everything is seen).

Every such certificate is a valid correctness proof (the same reasoning
as Theorem 4.1 / Proposition 8.2), so its cost *upper-bounds* the best
nondeterministic algorithm's cost, and the ratio ``algorithm cost /
certificate cost`` *lower-bounds* nothing and *upper... * -- concretely:
the reported ``measured ratio`` is a conservative (under-)estimate of the
true optimality ratio on that database, which is exactly what is needed
to check the paper's upper bounds, and on the paper's adversarial
families the searcher recovers the intended competitor exactly (e.g.
``2 cR`` on Figure 1 with ``wild_guesses=True``).

With ``wild_guesses=False`` answer objects must have been seen under
sorted access by depth ``d`` (Theorem 6.1's algorithm class); with
``wild_guesses=True`` they may be resolved blindly (Example 6.3's lucky
guess).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Hashable

from ..aggregation.base import AggregationFunction
from ..middleware.cost import UNIT_COSTS, CostModel
from ..middleware.database import Database

__all__ = ["Certificate", "minimal_certificate", "measured_optimality_ratio"]

_TOL = 1e-12


@dataclass(frozen=True)
class Certificate:
    """A feasible proof found by the searcher."""

    depth: int
    sorted_accesses: int
    random_accesses: int
    cost: float
    answer: tuple[Hashable, ...]
    wild_guesses: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Certificate(depth={self.depth}, s={self.sorted_accesses}, "
            f"r={self.random_accesses}, cost={self.cost:g})"
        )


class _Instance:
    """Pre-computed positional structure of one database."""

    def __init__(self, db: Database, t: AggregationFunction, k: int):
        self.db = db
        self.t = t
        self.k = k
        self.n = db.num_objects
        self.m = db.num_lists
        self.order: list[list[Hashable]] = []
        self.pos: dict[Hashable, list[int]] = {
            obj: [0] * self.m for obj in db.objects
        }
        for i in range(self.m):
            column: list[Hashable] = []
            for p in range(self.n):
                obj, _ = db.sorted_entry(i, p)
                column.append(obj)
                self.pos[obj][i] = p
            self.order.append(column)
        ranked = db.top_k(t, k)
        self.answer = tuple(obj for obj, _ in ranked)
        self.g_k = ranked[-1][1]
        overall = db.overall_grades(t)
        # ties make the answer flexible: objects strictly above the k-th
        # grade are forced into every correct answer, objects *at* the
        # k-th grade compete for the remaining slots
        self.forced = [obj for obj, g in overall.items() if g > self.g_k + _TOL]
        self.boundary = [
            obj
            for obj, g in overall.items()
            if abs(g - self.g_k) <= _TOL
        ]
        self.slots = k - len(self.forced)
        assert 0 <= self.slots <= len(self.boundary)
        self.first_depth = {
            obj: 1 + min(positions) for obj, positions in self.pos.items()
        }

    def bottoms(self, depth: int) -> list[float]:
        out: list[float] = []
        for i in range(self.m):
            if depth == 0:
                out.append(1.0)
            else:
                _, grade = self.db.sorted_entry(i, min(depth, self.n) - 1)
                out.append(grade)
        return out

    def known_fields(self, obj: Hashable, depth: int) -> dict[int, float]:
        """Fields of ``obj`` visible from lockstep sorted access to
        ``depth``."""
        vec = self.db.grade_vector(obj)
        return {
            i: vec[i]
            for i in range(self.m)
            if self.pos[obj][i] < depth
        }

    def greedy_reveal_count(
        self, obj: Hashable, depth: int, bottoms: list[float]
    ) -> int:
        """Random accesses needed to drive ``B(obj)`` down to ``g_k``.

        Greedy: repeatedly reveal the hidden field whose true value is
        farthest below the bottom currently standing in for it.  Always
        terminates because revealing everything gives ``B = t(obj) <=
        g_k`` for non-answer objects.
        """
        vec = self.db.grade_vector(obj)
        known = self.known_fields(obj, depth)
        count = 0
        while True:
            b = self.t.best_case(known, bottoms)
            if b <= self.g_k + _TOL:
                return count
            hidden = [i for i in range(self.m) if i not in known]
            if not hidden:  # pragma: no cover - defensive
                raise AssertionError(
                    f"object {obj!r} outside the answer has grade above g_k"
                )
            best_i = max(hidden, key=lambda i: bottoms[i] - vec[i])
            known[best_i] = vec[best_i]
            count += 1


def minimal_certificate(
    db: Database,
    t: AggregationFunction,
    k: int,
    cost_model: CostModel = UNIT_COSTS,
    wild_guesses: bool = False,
    depth_step: int = 1,
    max_depth: int | None = None,
) -> Certificate:
    """Search lockstep depths for the cheapest certificate (see module
    docstring).

    ``depth_step > 1`` subsamples depths (the result stays a valid
    certificate, just possibly not the cheapest one); ``max_depth`` caps
    the scan.  The scan also stops as soon as the sorted cost alone
    exceeds the best certificate found.
    """
    if depth_step < 1:
        raise ValueError(f"depth_step must be >= 1, got {depth_step}")
    inst = _Instance(db, t, k)
    n, m = inst.n, inst.m
    limit = n if max_depth is None else min(n, max_depth)

    best: Certificate | None = None
    forced_set = set(inst.forced)
    boundary_set = set(inst.boundary)
    # problem heap over seen objects strictly below the k-th grade,
    # keyed by cached B (B only decreases with depth, so cached values
    # are upper bounds on the fresh value)
    problem_heap: list[tuple[float, int, Hashable]] = []
    seq = 0
    # any real B is at most t(1, ..., 1); new entries enter above that
    b_ceiling = t.aggregate((1.0,) * m) + 1.0

    depths = list(range(0, limit + 1, depth_step))
    if depths[-1] != limit:
        depths.append(limit)

    # objects ordered by first_depth for incremental insertion
    by_first = sorted(inst.first_depth.items(), key=lambda kv: kv[1])
    cursor = 0
    forced_seen = 0
    boundary_seen: list[Hashable] = []

    for depth in depths:
        if best is not None and m * depth * cost_model.cs >= best.cost:
            break
        bottoms = inst.bottoms(depth)
        tau = inst.t.threshold(bottoms)
        while cursor < len(by_first) and by_first[cursor][1] <= depth:
            obj, _ = by_first[cursor]
            cursor += 1
            if obj in forced_set:
                forced_seen += 1
            elif obj in boundary_set:
                boundary_seen.append(obj)
            else:
                seq += 1
                heapq.heappush(problem_heap, (-b_ceiling, seq, obj))
        everyone_seen = cursor >= len(by_first)

        # unseen objects (including unchosen boundary ones, whose grade
        # is exactly g_k) must be dominated by the threshold
        if not everyone_seen and tau > inst.g_k + _TOL:
            continue
        # the answer must be reachable: every forced object, plus enough
        # boundary objects to fill the remaining slots
        if not wild_guesses:
            if forced_seen < len(inst.forced):
                continue
            if len(boundary_seen) < inst.slots:
                continue

        randoms = 0
        answer: list[Hashable] = []
        # fully resolve every forced answer object
        for y in inst.forced:
            known = inst.known_fields(y, depth)
            randoms += m - len(known)
            answer.append(y)

        # fill the remaining slots with the cheapest boundary objects:
        # including z costs its missing fields, excluding a *seen* z
        # costs driving its B down to g_k (0 if already there)
        if inst.slots:
            scored: list[tuple[int, Hashable, int, int]] = []
            for z in boundary_seen:
                known = inst.known_fields(z, depth)
                cost_in = m - len(known)
                if inst.t.best_case(known, bottoms) > inst.g_k + _TOL:
                    cost_out = inst.greedy_reveal_count(z, depth, bottoms)
                else:
                    cost_out = 0
                scored.append((cost_out - cost_in, z, cost_in, cost_out))
            scored.sort(key=lambda item: -item[0])
            chosen = scored[: inst.slots]
            rest = scored[inst.slots :]
            randoms += sum(item[2] for item in chosen)
            randoms += sum(item[3] for item in rest)
            answer.extend(item[1] for item in chosen)
            missing_slots = inst.slots - len(chosen)
            if missing_slots:
                # wild-guess mode may answer with unseen boundary
                # objects, resolving them blindly at m accesses each
                unseen_boundary = [
                    z for z in inst.boundary
                    if inst.first_depth[z] > depth
                ]
                randoms += m * missing_slots
                answer.extend(unseen_boundary[:missing_slots])

        # dominate every seen object strictly below the k-th grade
        pushback: list[tuple[float, int, Hashable]] = []
        while problem_heap:
            neg_b, _, obj = problem_heap[0]
            if -neg_b <= inst.g_k + _TOL:
                break
            heapq.heappop(problem_heap)
            known = inst.known_fields(obj, depth)
            fresh_b = inst.t.best_case(known, bottoms)
            if fresh_b <= inst.g_k + _TOL:
                continue
            randoms += inst.greedy_reveal_count(obj, depth, bottoms)
            seq += 1
            pushback.append((-fresh_b, seq, obj))
        for entry in pushback:
            heapq.heappush(problem_heap, entry)

        cost = cost_model.cost(m * depth, randoms)
        if best is None or cost < best.cost:
            best = Certificate(
                depth=depth,
                sorted_accesses=m * depth,
                random_accesses=randoms,
                cost=cost,
                answer=tuple(answer),
                wild_guesses=wild_guesses,
            )

    assert best is not None, "full-depth certificate is always feasible"
    return best


def measured_optimality_ratio(
    algorithm_cost: float, certificate_cost: float
) -> float:
    """``cost(algorithm) / cost(certificate)`` -- a conservative estimate
    of the instance-optimality ratio on this database."""
    if certificate_cost <= 0:
        return float("inf")
    return algorithm_cost / certificate_cost
