"""Convergence trajectories: how the halting quantities evolve with
depth.

Two recorders, one per algorithm family:

* :func:`threshold_trajectory` -- TA's view: the threshold
  ``tau = t(bottoms)`` falling towards the k-th best seen grade ``beta``
  rising; TA halts where the curves cross (Section 4), and the gap
  ``tau/beta`` is exactly the early-stopping guarantee of Section 6.2.
* :func:`bound_trajectory` -- NRA's view: ``M_k`` (the k-th largest
  lower bound) rising towards the best upper bound of any non-top-k
  object falling; NRA halts at the crossover (Section 8.1).

Both run their own lockstep sorted access over a fresh session (the
recorders *are* instrumented re-implementations of the algorithms' state
machines, kept separate so the production algorithms stay lean), and
both return plain rows ready for
:func:`repro.analysis.report.format_table` or plotting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..aggregation.base import AggregationFunction
from ..core.bounds import CandidateStore
from ..middleware.access import AccessSession
from ..middleware.database import Database

__all__ = ["TrajectoryPoint", "threshold_trajectory", "bound_trajectory"]


@dataclass(frozen=True)
class TrajectoryPoint:
    """One depth sample of a halting pair ``(upper, lower)``.

    The algorithm in question halts at the first depth where
    ``upper <= lower``; ``guarantee`` is the certified approximation
    factor if stopped here (Section 6.2's ``theta``).
    """

    depth: int
    upper: float  # tau (TA) or best outside B (NRA)
    lower: float  # beta (TA) or M_k (NRA)

    @property
    def halted(self) -> bool:
        return self.upper <= self.lower

    @property
    def guarantee(self) -> float:
        if self.lower <= 0:
            return float("inf")
        return max(1.0, self.upper / self.lower)


def threshold_trajectory(
    db: Database,
    aggregation: AggregationFunction,
    k: int,
    max_depth: int | None = None,
) -> list[TrajectoryPoint]:
    """Record TA's ``(tau, beta)`` per round until its halting rule
    fires (or ``max_depth``)."""
    aggregation.check_arity(db.num_lists)
    session = AccessSession(db)
    m = db.num_lists
    bottoms = [1.0] * m
    best: dict = {}
    points: list[TrajectoryPoint] = []
    limit = db.num_objects if max_depth is None else min(max_depth, db.num_objects)
    for depth in range(1, limit + 1):
        for i in range(m):
            entry = session.sorted_access(i)
            if entry is None:
                continue
            obj, grade = entry
            bottoms[i] = grade
            if obj not in best:
                grades = tuple(
                    grade if j == i else session.random_access(j, obj)
                    for j in range(m)
                )
                best[obj] = aggregation.aggregate(grades)
        tau = aggregation.aggregate(tuple(bottoms))
        if len(best) >= k:
            beta = sorted(best.values(), reverse=True)[k - 1]
        else:
            beta = float("-inf")
        point = TrajectoryPoint(depth=depth, upper=tau, lower=beta)
        points.append(point)
        if point.halted:
            break
    return points


def bound_trajectory(
    db: Database,
    aggregation: AggregationFunction,
    k: int,
    max_depth: int | None = None,
) -> list[TrajectoryPoint]:
    """Record NRA's ``(best outside B, M_k)`` per round until halting
    (or ``max_depth``)."""
    aggregation.check_arity(db.num_lists)
    session = AccessSession.no_random(db)
    m = db.num_lists
    store = CandidateStore(aggregation, m, k, naive=True)
    points: list[TrajectoryPoint] = []
    limit = db.num_objects if max_depth is None else min(max_depth, db.num_objects)
    for depth in range(1, limit + 1):
        for i in range(m):
            entry = session.sorted_access(i)
            if entry is None:
                continue
            obj, grade = entry
            store.update_bottom(i, grade)
            store.record(obj, i, grade)
        topk, m_k = store.current_topk()
        topk_set = set(topk)
        outside = [
            store.b_value(obj)
            for obj in store.fields
            if obj not in topk_set
        ]
        if store.seen_count < session.num_objects:
            outside.append(store.threshold)
        best_outside = max(outside) if outside else float("-inf")
        point = TrajectoryPoint(depth=depth, upper=best_outside, lower=m_k)
        points.append(point)
        if store.seen_count >= k and point.halted:
            break
    return points
