"""Plain-text table rendering for benchmarks and examples.

Keeps benchmark output self-describing without any plotting dependency:
every figure/table of the paper is regenerated as an aligned text table
plus assertions on its shape.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_kv"]


def _cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Align ``rows`` under ``headers``; numeric cells right-aligned."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def format_kv(pairs: dict, title: str | None = None) -> str:
    """Render a flat key/value mapping."""
    width = max((len(str(k)) for k in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"{str(k):<{width}}  {_cell(v)}" for k, v in pairs.items())
    return "\n".join(lines)
