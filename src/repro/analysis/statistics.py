"""Statistics helpers for experiment sweeps.

Cost measurements in this library are deterministic given a seed, so
benchmarks average over seeds and fit growth exponents; these helpers
keep that logic out of the benchmark files and under test.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

__all__ = ["SweepPoint", "fit_power_law", "seed_average", "summarize"]


@dataclass(frozen=True)
class SweepPoint:
    """One x-position of a sweep with per-seed measurements."""

    x: float
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        mu = self.mean
        if len(self.values) < 2:
            return 0.0
        var = sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        return math.sqrt(var)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` on ``log x``: the growth
    exponent of ``y ~ x^a``."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit an exponent")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit needs strictly positive data")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    var = sum((a - mean_x) ** 2 for a in lx)
    if var == 0:
        raise ValueError("all x values identical; exponent undefined")
    return cov / var


def seed_average(
    measure: Callable[[int], float], seeds: Sequence[int]
) -> float:
    """Average a deterministic-per-seed measurement over ``seeds``."""
    if not seeds:
        raise ValueError("need at least one seed")
    return sum(measure(seed) for seed in seeds) / len(seeds)


def summarize(
    xs: Sequence[float],
    measure: Callable[[float, int], float],
    seeds: Sequence[int],
) -> list[SweepPoint]:
    """Run ``measure(x, seed)`` over the sweep grid and package points."""
    return [
        SweepPoint(x, tuple(measure(x, seed) for seed in seeds)) for x in xs
    ]
