"""Table 1 of the paper: the grid of upper and lower bounds on
optimality ratios, as executable formulas.

Rows are restrictions on the algorithm class ``A`` (wild guesses allowed /
forbidden / no random access), columns are restrictions on the databases
``D`` and the aggregation function ``t``.  The benchmark
``benchmarks/bench_table1_bounds.py`` prints this grid next to measured
ratios from the corresponding adversarial families.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..middleware.cost import CostModel

__all__ = [
    "BoundsCell",
    "ta_upper_bound",
    "ta_distinctness_upper_bound",
    "taz_upper_bound",
    "nra_upper_bound",
    "ca_upper_bound_smv",
    "ca_upper_bound_min",
    "ta_lower_bound_strict",
    "nra_lower_bound_strict",
    "theorem_9_2_lower_bound",
    "probabilistic_lower_bound",
    "table_1",
    "format_table_1",
]


def ta_upper_bound(m: int, cost_model: CostModel) -> float:
    """TA's ratio, no wild guesses, any monotone ``t`` (proof of
    Thm 6.1): ``m + m(m-1) cR/cS``."""
    return m + m * (m - 1) * cost_model.ratio


def ta_distinctness_upper_bound(m: int, cost_model: CostModel) -> float:
    """TA's ratio under strict monotonicity + distinctness (proof of
    Thm 6.5): ``c m^2`` with ``c = max(cR/cS, cS/cR)``."""
    c = max(cost_model.ratio, 1.0 / cost_model.ratio)
    return c * m * m


def taz_upper_bound(m_prime: int, m: int, cost_model: CostModel) -> float:
    """TAZ's ratio with ``|Z| = m'`` (proof of Thm 7.1):
    ``m' + m'(m-1) cR/cS``."""
    return m_prime + m_prime * (m - 1) * cost_model.ratio


def nra_upper_bound(m: int) -> float:
    """NRA's ratio among no-random-access algorithms (Thm 8.5): ``m``."""
    return float(m)


def ca_upper_bound_smv(m: int, k: int) -> float:
    """CA's ratio for ``t`` strictly monotone in each argument +
    distinctness (proof of Thm 8.9): ``4m + k``."""
    return 4.0 * m + k


def ca_upper_bound_min(m: int) -> float:
    """CA's ratio for ``t = min`` + distinctness (proof of Thm 8.10):
    ``5m``."""
    return 5.0 * m


def ta_lower_bound_strict(m: int, cost_model: CostModel) -> float:
    """No deterministic no-wild-guess algorithm beats
    ``m + m(m-1) cR/cS`` for strict ``t`` (Thm 9.1) -- TA is tight."""
    return m + m * (m - 1) * cost_model.ratio


def nra_lower_bound_strict(m: int) -> float:
    """No deterministic no-random-access algorithm beats ``m`` for
    strict ``t`` (Thm 9.5) -- NRA is tight."""
    return float(m)


def theorem_9_2_lower_bound(m: int, cost_model: CostModel) -> float:
    """For ``t = min(x1+x2, x3, ..., xm)`` under distinctness, every
    deterministic algorithm has ratio at least ``(m-2)/2 * cR/cS``
    (Thm 9.2) -- so no CA-style ``cR/cS``-independence for all strictly
    monotone ``t``."""
    return (m - 2) / 2.0 * cost_model.ratio


def probabilistic_lower_bound(m: int) -> float:
    """``m/2`` lower bound for deterministic *and* mistake-free
    probabilistic algorithms (Thms 9.3, 9.4)."""
    return m / 2.0


@dataclass(frozen=True)
class BoundsCell:
    """One cell of Table 1."""

    algorithm_class: str
    database_class: str
    upper: float | None
    upper_source: str
    lower: float | None
    lower_source: str

    def consistent(self) -> bool:
        """Upper >= lower wherever both are stated."""
        if self.upper is None or self.lower is None:
            return True
        return self.upper >= self.lower - 1e-9


def table_1(m: int, k: int, cost_model: CostModel) -> list[BoundsCell]:
    """The six populated cells of the paper's Table 1 for given
    parameters."""
    return [
        BoundsCell(
            "every correct A (wild guesses ok)",
            "every D, every monotone t",
            None,
            "no instance-optimal algorithm possible (Thm 6.4)",
            math.inf,
            "Thm 6.4",
        ),
        BoundsCell(
            "every correct A (wild guesses ok)",
            "distinctness, strictly monotone t",
            ta_distinctness_upper_bound(m, cost_model),
            "TA (Thm 6.5)",
            theorem_9_2_lower_bound(m, cost_model),
            "Thm 9.2 (for t = min(x1+x2, x3..xm))",
        ),
        BoundsCell(
            "every correct A (wild guesses ok)",
            "distinctness, t SMV or min",
            min(ca_upper_bound_smv(m, k), ca_upper_bound_min(m)),
            "CA (Thms 8.9, 8.10)",
            probabilistic_lower_bound(m),
            "Thm 9.4 (min)",
        ),
        BoundsCell(
            "no wild guesses",
            "every D, every monotone t",
            ta_upper_bound(m, cost_model),
            "TA (Thm 6.1)",
            ta_lower_bound_strict(m, cost_model),
            "Thm 9.1 (strict t) -- tight",
        ),
        BoundsCell(
            "no random access",
            "every D, every monotone t",
            nra_upper_bound(m),
            "NRA (Thm 8.5)",
            nra_lower_bound_strict(m),
            "Thm 9.5 (strict t) -- tight",
        ),
        BoundsCell(
            "restricted sorted access (|Z| = m')",
            "every D, every monotone t",
            taz_upper_bound(m, m, cost_model),
            "TAZ with m'=m (Thm 7.1)",
            ta_lower_bound_strict(m, cost_model),
            "Cor 7.2 (strict t) -- tight",
        ),
    ]


def format_table_1(m: int, k: int, cost_model: CostModel) -> str:
    """Human-readable rendering of :func:`table_1`."""
    lines = [
        f"Table 1 bounds for m={m}, k={k}, cR/cS={cost_model.ratio:g}",
        f"{'algorithm class':<40} {'database class':<38} "
        f"{'upper':>10} {'lower':>10}",
    ]
    for cell in table_1(m, k, cost_model):
        upper = "none" if cell.upper is None else f"{cell.upper:.3g}"
        lower = "-" if cell.lower is None else f"{cell.lower:.3g}"
        lines.append(
            f"{cell.algorithm_class:<40} {cell.database_class:<38} "
            f"{upper:>10} {lower:>10}"
        )
        lines.append(f"    upper: {cell.upper_source}; lower: {cell.lower_source}")
    return "\n".join(lines)
