"""Instance-optimality analysis: verification, certificate search,
Table 1 bound formulas, experiment running and reporting."""

from .charts import bar_chart, render_trajectory, sparkline
from .experiments import (
    OptimalityMeasurement,
    check_instance_optimality,
    optimality_sweep,
    worst_ratios,
)
from .optimality import (
    Certificate,
    measured_optimality_ratio,
    minimal_certificate,
)
from .progress import (
    TrajectoryPoint,
    bound_trajectory,
    threshold_trajectory,
)
from .report import format_kv, format_table
from .runner import RunRecord, compare_costs, run_algorithms
from .statistics import SweepPoint, fit_power_law, seed_average, summarize
from .tables import (
    BoundsCell,
    ca_upper_bound_min,
    ca_upper_bound_smv,
    format_table_1,
    nra_lower_bound_strict,
    nra_upper_bound,
    probabilistic_lower_bound,
    ta_distinctness_upper_bound,
    ta_lower_bound_strict,
    ta_upper_bound,
    table_1,
    taz_upper_bound,
    theorem_9_2_lower_bound,
)
from .verify import (
    VerificationError,
    assert_correct_topk,
    assert_result_correct,
    is_correct_topk,
    is_theta_approximation,
    true_topk_grades,
)

__all__ = [
    "bar_chart",
    "render_trajectory",
    "sparkline",
    "OptimalityMeasurement",
    "check_instance_optimality",
    "optimality_sweep",
    "worst_ratios",
    "Certificate",
    "measured_optimality_ratio",
    "minimal_certificate",
    "TrajectoryPoint",
    "bound_trajectory",
    "threshold_trajectory",
    "format_kv",
    "format_table",
    "RunRecord",
    "compare_costs",
    "run_algorithms",
    "SweepPoint",
    "fit_power_law",
    "seed_average",
    "summarize",
    "BoundsCell",
    "ca_upper_bound_min",
    "ca_upper_bound_smv",
    "format_table_1",
    "nra_lower_bound_strict",
    "nra_upper_bound",
    "probabilistic_lower_bound",
    "ta_distinctness_upper_bound",
    "ta_lower_bound_strict",
    "ta_upper_bound",
    "table_1",
    "taz_upper_bound",
    "theorem_9_2_lower_bound",
    "VerificationError",
    "assert_correct_topk",
    "assert_result_correct",
    "is_correct_topk",
    "is_theta_approximation",
    "true_topk_grades",
]
