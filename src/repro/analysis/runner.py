"""Experiment runner: run algorithms over databases, collect uniform
records, verify correctness on the fly.

The runner creates a *fresh session per run* (algorithms are stateless
across runs; sessions are not), asks each algorithm to build the session
it needs (NRA forbids random access on its own sessions, etc.), and
returns flat :class:`RunRecord` rows ready for
:func:`repro.analysis.report.format_table`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..aggregation.base import AggregationFunction
from ..core.base import TopKAlgorithm
from ..core.result import TopKResult
from ..middleware.cost import UNIT_COSTS, CostModel
from ..middleware.database import Database
from .verify import assert_result_correct

__all__ = ["RunRecord", "run_algorithms", "compare_costs"]


@dataclass
class RunRecord:
    """One algorithm run, flattened for tabulation."""

    algorithm: str
    label: str
    n: int
    m: int
    k: int
    sorted_accesses: int
    random_accesses: int
    middleware_cost: float
    depth: int
    rounds: int
    halt_reason: str
    max_buffer_size: int
    result: TopKResult = field(repr=False, default=None)

    @classmethod
    def from_result(
        cls, result: TopKResult, label: str, n: int, m: int
    ) -> "RunRecord":
        return cls(
            algorithm=result.algorithm,
            label=label,
            n=n,
            m=m,
            k=result.k,
            sorted_accesses=result.sorted_accesses,
            random_accesses=result.random_accesses,
            middleware_cost=result.middleware_cost,
            depth=result.depth,
            rounds=result.rounds,
            halt_reason=result.halt_reason,
            max_buffer_size=result.max_buffer_size,
            result=result,
        )

    def row(self) -> list:
        return [
            self.algorithm,
            self.label,
            self.n,
            self.m,
            self.k,
            self.sorted_accesses,
            self.random_accesses,
            self.middleware_cost,
            self.depth,
            self.max_buffer_size,
            self.halt_reason,
        ]

    HEADERS = [
        "algorithm",
        "database",
        "N",
        "m",
        "k",
        "sorted",
        "random",
        "cost",
        "depth",
        "buffer",
        "halt",
    ]


def run_algorithms(
    algorithms: Sequence[TopKAlgorithm],
    database: Database,
    aggregation: AggregationFunction,
    k: int,
    cost_model: CostModel = UNIT_COSTS,
    label: str = "db",
    verify: bool = True,
    session_kwargs: dict | None = None,
) -> list[RunRecord]:
    """Run each algorithm on a fresh session over ``database``."""
    records: list[RunRecord] = []
    for algorithm in algorithms:
        result = algorithm.run_on(
            database, aggregation, k, cost_model, **(session_kwargs or {})
        )
        if verify:
            assert_result_correct(database, aggregation, result)
        records.append(
            RunRecord.from_result(
                result, label, database.num_objects, database.num_lists
            )
        )
    return records


def compare_costs(records: Iterable[RunRecord]) -> dict[str, float]:
    """``{algorithm: middleware cost}`` for quick assertions."""
    return {rec.algorithm: rec.middleware_cost for rec in records}
