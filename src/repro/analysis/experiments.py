"""Instance-optimality sweeps: the paper's inequalities checked over
*populations* of databases.

Instance optimality is a statement about every database, so a convincing
reproduction checks the inequality ``cost(B, D) <= c * cost(A, D) + c'``
not only on the adversarial families where it is tight, but across
random instances too.  :func:`optimality_sweep` runs algorithms over a
seeded family of databases, computes the certificate ("shortest proof")
cost per instance, and returns per-instance measurements;
:func:`check_instance_optimality` verifies the Theorem 6.1-shaped
inequality with explicit multiplicative and additive constants.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..aggregation.base import AggregationFunction
from ..core.base import TopKAlgorithm
from ..middleware.cost import UNIT_COSTS, CostModel
from ..middleware.database import Database
from .optimality import minimal_certificate

__all__ = [
    "OptimalityMeasurement",
    "optimality_sweep",
    "check_instance_optimality",
    "worst_ratios",
]


@dataclass(frozen=True)
class OptimalityMeasurement:
    """One (algorithm, database) cost measurement with its certificate."""

    algorithm: str
    seed: int
    n: int
    m: int
    k: int
    cost: float
    certificate_cost: float

    @property
    def ratio(self) -> float:
        if self.certificate_cost <= 0:
            return float("inf")
        return self.cost / self.certificate_cost


def optimality_sweep(
    algorithms: Sequence[TopKAlgorithm],
    make_database: Callable[[int], Database],
    aggregation: AggregationFunction,
    k: int,
    seeds: Sequence[int],
    cost_model: CostModel = UNIT_COSTS,
    certificate_depth_step: int = 1,
) -> list[OptimalityMeasurement]:
    """Measure every algorithm against the certificate on each seeded
    database."""
    if not seeds:
        raise ValueError("need at least one seed")
    measurements: list[OptimalityMeasurement] = []
    for seed in seeds:
        db = make_database(seed)
        cert = minimal_certificate(
            db,
            aggregation,
            k,
            cost_model,
            depth_step=certificate_depth_step,
        )
        for algorithm in algorithms:
            result = algorithm.run_on(db, aggregation, k, cost_model)
            measurements.append(
                OptimalityMeasurement(
                    algorithm=result.algorithm,
                    seed=seed,
                    n=db.num_objects,
                    m=db.num_lists,
                    k=k,
                    cost=result.middleware_cost,
                    certificate_cost=cert.cost,
                )
            )
    return measurements


def check_instance_optimality(
    measurements: Sequence[OptimalityMeasurement],
    multiplicative: float,
    additive: float,
) -> list[OptimalityMeasurement]:
    """Return the measurements violating
    ``cost <= multiplicative * certificate + additive`` (empty = the
    Theorem 6.1-shaped inequality holds on every instance)."""
    return [
        meas
        for meas in measurements
        if meas.cost > multiplicative * meas.certificate_cost + additive + 1e-9
    ]


def worst_ratios(
    measurements: Sequence[OptimalityMeasurement],
) -> dict[str, float]:
    """``{algorithm: max measured cost/certificate ratio}``."""
    worst: dict[str, float] = {}
    for meas in measurements:
        worst[meas.algorithm] = max(
            worst.get(meas.algorithm, 0.0), meas.ratio
        )
    return worst
