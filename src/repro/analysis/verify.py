"""Correctness verification of top-k outputs.

The paper's semantics break grade ties arbitrarily, so two correct runs
may return different *objects*.  An output ``Y`` is a correct top-``k``
iff ``|Y| = k`` and ``min_{y in Y} t(y) >= max_{z not in Y} t(z)`` --
equivalently, the multiset of output grades equals the multiset of the
``k`` largest grades.  A ``theta``-approximation (Section 6.2) relaxes
this to ``theta * min_Y t >= max_{not Y} t``.

Verification reads ground truth straight from the database (no access
accounting), so it must never be called by an algorithm -- only by tests,
benchmarks and examples.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Hashable

from ..aggregation.base import AggregationFunction
from ..middleware.database import Database
from ..core.result import TopKResult

__all__ = [
    "VerificationError",
    "is_correct_topk",
    "is_theta_approximation",
    "assert_correct_topk",
    "assert_result_correct",
    "true_topk_grades",
]

_TOL = 1e-9


class VerificationError(AssertionError):
    """An algorithm produced an incorrect top-k."""


def true_topk_grades(db: Database, t: AggregationFunction, k: int) -> list[float]:
    """The ``k`` largest overall grades, descending."""
    overall = sorted(db.overall_grades(t).values(), reverse=True)
    return overall[:k]


def _output_analysis(
    db: Database,
    t: AggregationFunction,
    objects: Sequence[Hashable],
) -> tuple[float, float]:
    """(min grade inside the output, max grade outside it)."""
    chosen = set(objects)
    if len(chosen) != len(objects):
        raise VerificationError(f"output contains duplicates: {objects!r}")
    inside = min(t.aggregate(db.grade_vector(obj)) for obj in objects)
    outside = float("-inf")
    for obj in db.objects:
        if obj in chosen:
            continue
        grade = t.aggregate(db.grade_vector(obj))
        if grade > outside:
            outside = grade
    return inside, outside


def is_correct_topk(
    db: Database,
    t: AggregationFunction,
    k: int,
    objects: Sequence[Hashable],
) -> bool:
    """True iff ``objects`` is a valid top-``k`` under arbitrary
    tie-breaking."""
    if len(objects) != k:
        return False
    inside, outside = _output_analysis(db, t, objects)
    return inside >= outside - _TOL


def is_theta_approximation(
    db: Database,
    t: AggregationFunction,
    k: int,
    objects: Sequence[Hashable],
    theta: float,
) -> bool:
    """True iff ``theta * t(y) >= t(z)`` for all returned ``y`` and
    non-returned ``z`` (Section 6.2's definition)."""
    if len(objects) != k:
        return False
    inside, outside = _output_analysis(db, t, objects)
    return theta * inside >= outside - _TOL


def assert_correct_topk(
    db: Database,
    t: AggregationFunction,
    k: int,
    objects: Sequence[Hashable],
    context: str = "",
) -> None:
    """Raise :class:`VerificationError` with diagnostics if the output is
    not a correct top-``k``."""
    if len(objects) != k:
        raise VerificationError(
            f"{context}: expected {k} objects, got {len(objects)}: {objects!r}"
        )
    inside, outside = _output_analysis(db, t, objects)
    if inside < outside - _TOL:
        expected = true_topk_grades(db, t, k)
        raise VerificationError(
            f"{context}: output min grade {inside} < excluded max grade "
            f"{outside}; output {list(objects)!r}, true top-{k} grades "
            f"{expected}"
        )


def assert_result_correct(
    db: Database,
    t: AggregationFunction,
    result: TopKResult,
) -> None:
    """Verify a :class:`~repro.core.result.TopKResult`: the object set,
    and any exact grades / bound pairs it reported."""
    assert_correct_topk(db, t, result.k, result.objects, context=result.algorithm)
    for item in result.items:
        truth = t.aggregate(db.grade_vector(item.obj))
        if item.grade is not None and abs(item.grade - truth) > _TOL:
            raise VerificationError(
                f"{result.algorithm}: reported grade {item.grade} for "
                f"{item.obj!r} but t = {truth}"
            )
        if not (
            item.lower_bound - _TOL <= truth <= item.upper_bound + _TOL
        ):
            raise VerificationError(
                f"{result.algorithm}: bounds [{item.lower_bound}, "
                f"{item.upper_bound}] do not contain t({item.obj!r}) = {truth}"
            )
