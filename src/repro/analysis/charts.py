"""Terminal charts: sparklines and trajectory plots in plain text.

The library is terminal-first (no plotting dependency); these helpers
turn sweep series and halting trajectories into compact unicode charts
for examples, benchmarks and debugging sessions.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .progress import TrajectoryPoint

__all__ = ["sparkline", "bar_chart", "render_trajectory"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def _finite(values: Sequence[float]) -> list[float]:
    return [v for v in values if math.isfinite(v)]


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline; non-finite values render as spaces."""
    finite = _finite(values)
    if not finite:
        return " " * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars: list[str] = []
    for v in values:
        if not math.isfinite(v):
            chars.append(" ")
        elif span == 0:
            chars.append(_BLOCKS[0])
        else:
            index = int((v - lo) / span * (len(_BLOCKS) - 1))
            chars.append(_BLOCKS[index])
    return "".join(chars)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str | None = None,
) -> str:
    """Horizontal bar chart with value annotations."""
    if len(labels) != len(values):
        raise ValueError(
            f"length mismatch: {len(labels)} labels vs {len(values)} values"
        )
    finite = _finite(values) or [0.0]
    peak = max(max(finite), 1e-12)
    label_width = max((len(str(lbl)) for lbl in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if math.isfinite(value):
            filled = int(round(width * max(value, 0.0) / peak))
            bar = "█" * filled
            lines.append(f"{str(label):>{label_width}}  {bar} {value:g}")
        else:
            lines.append(f"{str(label):>{label_width}}  {value}")
    return "\n".join(lines)


def render_trajectory(
    points: Sequence[TrajectoryPoint],
    width: int = 60,
    title: str | None = None,
) -> str:
    """Two sparklines (upper bound falling, lower bound rising) plus the
    crossover summary -- the halting rule at a glance."""
    if not points:
        raise ValueError("no trajectory points to render")
    stride = max(1, len(points) // width)
    sampled = list(points[::stride])
    if sampled[-1] is not points[-1]:
        sampled.append(points[-1])
    uppers = [p.upper for p in sampled]
    lowers = [p.lower for p in sampled]
    lines = [title] if title else []
    lines.append(f"upper (falls): {sparkline(uppers)}")
    lines.append(f"lower (rises): {sparkline(lowers)}")
    last = points[-1]
    if last.halted:
        lines.append(
            f"crossover at depth {last.depth}: halted with "
            f"upper={last.upper:.6g} <= lower={last.lower:.6g}"
        )
    else:
        lines.append(
            f"not yet halted at depth {last.depth}: guarantee "
            f"{last.guarantee:.4g}"
        )
    return "\n".join(lines)
