"""Transport-backed service factories: the network twins of
:func:`~repro.services.assemble.services_for_database` and
:func:`~repro.services.assemble.shard_run_services`.

Where the simulated factories wrap *local data* as services, these
connect to a running :class:`~repro.transport.server.GradedSourceServer`
(in this process, another process, or another machine) and return
sources satisfying the very same contracts -- so
:class:`~repro.services.session.AsyncAccessSession`,
:func:`~repro.services.assemble.assemble_remote_database` and
:func:`~repro.services.assemble.fetch_merged_orders` run over real
sockets unmodified::

    with ServerProcess(db, num_shards=2) as server:
        sources = network_services(server.address)
        with AsyncAccessSession(sources) as session:
            result = ThresholdAlgorithm().run(session, AVERAGE, 10)

Both factories are synchronous (they fetch the server manifest on a
private throwaway loop); the sources they return are used from
whatever event loop ends up driving them -- the underlying
:class:`~repro.transport.client.TransportClient` keeps one connection
pool per loop.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from .simulated import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..transport.client import (
        NetworkGradedSource,
        NetworkRunSource,
        TransportClient,
    )

__all__ = ["network_client", "network_services", "network_shard_runs"]


def network_client(
    address: tuple[str, int],
    *,
    retry: RetryPolicy | None = None,
    request_timeout: float = 30.0,
    connect_timeout: float = 5.0,
    pool_size: int = 1,
) -> TransportClient:
    """A :class:`~repro.transport.client.TransportClient` for
    ``address`` (``(host, port)``, e.g. ``server.address``)."""
    # imported lazily: repro.transport itself imports from this package
    from ..transport.client import TransportClient

    host, port = address
    return TransportClient(
        host,
        int(port),
        retry=retry,
        request_timeout=request_timeout,
        connect_timeout=connect_timeout,
        pool_size=pool_size,
    )


def network_services(
    address: tuple[str, int] | None = None,
    *,
    client: TransportClient | None = None,
    **client_kwargs,
) -> list[NetworkGradedSource]:
    """One :class:`~repro.transport.client.NetworkGradedSource` per
    list the server exports, in list order -- the transport twin of
    :func:`~repro.services.assemble.services_for_database` (give
    ``client`` to share connections with other factories)."""
    client = _client(address, client, client_kwargs)
    return asyncio.run(client.sources())


def network_shard_runs(
    address: tuple[str, int] | None = None,
    *,
    client: TransportClient | None = None,
    **client_kwargs,
) -> list[list[NetworkRunSource]]:
    """The server's ``[list][shard]`` run grid as network sources --
    the transport twin of
    :func:`~repro.services.assemble.shard_run_services`, feeding
    :func:`~repro.services.assemble.fetch_merged_orders` directly."""
    client = _client(address, client, client_kwargs)
    return asyncio.run(client.shard_runs())


def _client(
    address: tuple[str, int] | None,
    client: TransportClient | None,
    client_kwargs: dict,
) -> TransportClient:
    if client is not None:
        if address is not None or client_kwargs:
            raise ValueError(
                "give either a client or an address (+ client options), "
                "not both"
            )
        return client
    if address is None:
        raise ValueError("need a server address or a client")
    return network_client(address, **client_kwargs)
