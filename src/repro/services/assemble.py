"""Service assembly and the drain adapters.

Builders (the :func:`~repro.middleware.sources.assemble_database` style
helpers, pointed the other way -- local data *into* remote services):

* :func:`services_for_database` -- one
  :class:`~repro.services.simulated.SimulatedListService` per list of
  any :class:`~repro.middleware.database.Database`, preserving its
  exact per-list tie order;
* :func:`services_for_sources` -- wrap a
  :class:`~repro.middleware.sources.GradedSource` sequence (the
  examples' metasearch engines / restaurant subsystems) as services,
  carrying their capability flags;
* :func:`shard_run_services` -- one
  :class:`~repro.services.simulated.ShardRunService` per (list, shard)
  run of a :class:`~repro.middleware.database.ShardedDatabase`: the
  distributed form of PR 3's shard layout.

Drain adapters (how prefetched batches reach the engines unmodified):

* :func:`assemble_remote_database` -- concurrently drain all sorted
  streams into a :class:`~repro.middleware.database.ColumnarDatabase`
  (or :class:`~repro.middleware.database.ShardedDatabase`) plus the
  matching capability vector.  The drained backend is identical to one
  built locally -- tie order is the services' authoritative order --
  so the speculative chunked engines of TA/NRA/CA/Stream-Combine run
  on it *unmodified* and bit-for-bit equal to every other backend.
* :func:`fetch_merged_orders` -- gather the ``S`` run streams of each
  list (overlapped, or sequential round-robin for the baseline) and
  feed them to a :class:`~repro.middleware.database.ListMergeCursor`
  k-way merge: exact global sorted order out of per-shard remote
  streams, however the arrivals interleaved.

Both drain modes produce identical bytes; only wall-clock differs
(``benchmarks/bench_async.py`` measures the gap).
"""

from __future__ import annotations

import asyncio
from collections.abc import Sequence

import numpy as np

from ..middleware.access import ListCapabilities
from ..middleware.database import (
    ColumnarDatabase,
    Database,
    ListMergeCursor,
    ShardedDatabase,
)
from ..middleware.errors import DatabaseError
from ..middleware.sources import GradedSource
from .protocol import RemoteGradedSource, RunStreamSource
from .simulated import (
    FailureModel,
    LatencyModel,
    RetryPolicy,
    ShardRunService,
    SimulatedListService,
)

__all__ = [
    "services_for_database",
    "services_for_sources",
    "shard_run_services",
    "drain_columns",
    "assemble_remote_database",
    "fetch_merged_orders",
]


def _per_list(value, m: int, what: str) -> list:
    """Broadcast one model (or None) to every list, or validate a
    per-list sequence."""
    if value is None or not isinstance(value, (list, tuple)):
        return [value] * m
    if len(value) != m:
        raise DatabaseError(
            f"got {len(value)} {what} entries for m={m} lists"
        )
    return list(value)


def services_for_database(
    db: Database,
    *,
    latency: LatencyModel | Sequence[LatencyModel | None] | None = None,
    failures: FailureModel | Sequence[FailureModel | None] | None = None,
    retry: RetryPolicy | Sequence[RetryPolicy | None] | None = None,
    capabilities: Sequence[ListCapabilities] | None = None,
    names: Sequence[str] | None = None,
) -> list[SimulatedListService]:
    """One simulated service per list of ``db``, streaming that list's
    exact sorted order (tie placement included)."""
    m = db.num_lists
    n = db.num_objects
    lat = _per_list(latency, m, "latency")
    fail = _per_list(failures, m, "failure")
    ret = _per_list(retry, m, "retry")
    if names is not None and len(names) != m:
        raise DatabaseError(f"got {len(names)} names for m={m} lists")
    services: list[SimulatedListService] = []
    for i in range(m):
        entries = [db.sorted_entry(i, pos) for pos in range(n)]
        caps = (
            capabilities[i]
            if capabilities is not None
            else ListCapabilities()
        )
        services.append(
            SimulatedListService(
                names[i] if names is not None else f"list-{i}",
                entries,
                supports_sorted=caps.sorted_allowed,
                supports_random=caps.random_allowed,
                latency=lat[i],
                failures=fail[i],
                retry=ret[i],
            )
        )
    return services


def services_for_sources(
    sources: Sequence[GradedSource],
    *,
    latency: LatencyModel | Sequence[LatencyModel | None] | None = None,
    failures: FailureModel | Sequence[FailureModel | None] | None = None,
    retry: RetryPolicy | Sequence[RetryPolicy | None] | None = None,
) -> list[SimulatedListService]:
    """Wrap graded sources (the paper's QBIC / search-engine / Zagat
    subsystems) as remote services, keeping their names, entry order
    and capability flags."""
    if not sources:
        raise DatabaseError("need at least one source")
    m = len(sources)
    lat = _per_list(latency, m, "latency")
    fail = _per_list(failures, m, "failure")
    ret = _per_list(retry, m, "retry")
    return [
        SimulatedListService(
            src.name,
            src.entries,
            supports_sorted=src.supports_sorted,
            supports_random=src.supports_random,
            latency=lat[i],
            failures=fail[i],
            retry=ret[i],
        )
        for i, src in enumerate(sources)
    ]


def shard_run_services(
    db: ShardedDatabase,
    *,
    latency: LatencyModel | Sequence[LatencyModel | None] | None = None,
    failures: FailureModel | Sequence[FailureModel | None] | None = None,
    retry: RetryPolicy | Sequence[RetryPolicy | None] | None = None,
) -> list[list[ShardRunService]]:
    """``[list][shard]`` grid of run services over ``db``'s shard-local
    sorted runs -- each serves one ``(rows, grades, ties)`` run, the
    unit :class:`~repro.middleware.database.ListMergeCursor` merges.
    A sequence model is per *list* (every shard of list ``i`` gets
    entry ``i``), like :func:`services_for_database`."""
    m = db.num_lists
    lat = _per_list(latency, m, "latency")
    fail = _per_list(failures, m, "failure")
    ret = _per_list(retry, m, "retry")
    grid: list[list[ShardRunService]] = []
    for i in range(m):
        row: list[ShardRunService] = []
        for s, (rows, grades, ties) in enumerate(db.list_runs(i)):
            row.append(
                ShardRunService(
                    f"list-{i}/shard-{s}",
                    rows,
                    grades,
                    ties,
                    latency=lat[i],
                    failures=fail[i],
                    retry=ret[i],
                )
            )
        grid.append(row)
    return grid


# ----------------------------------------------------------------------
# drain adapters
# ----------------------------------------------------------------------

async def _drain_sorted(
    service: RemoteGradedSource, batch_size: int
) -> list[tuple]:
    entries: list[tuple] = []
    async for page in service.sorted_access_stream(batch_size):
        entries.extend(zip(page.objects, page.grades))
    return entries


async def _drain_columns_overlapped(
    services: Sequence[RemoteGradedSource], batch_size: int
) -> list[list[tuple]]:
    return list(
        await asyncio.gather(
            *(_drain_sorted(s, batch_size) for s in services)
        )
    )


async def _drain_columns_round_robin(
    services: Sequence[RemoteGradedSource], batch_size: int
) -> list[list[tuple]]:
    """The sequential baseline: one page in flight at a time, cycling
    the services -- what a synchronous single-threaded client does."""
    columns: list[list[tuple]] = [[] for _ in services]
    streams = [s.sorted_access_stream(batch_size) for s in services]
    live = list(range(len(services)))
    while live:
        still: list[int] = []
        for i in live:
            try:
                page = await anext(streams[i])
            except StopAsyncIteration:
                continue
            columns[i].extend(zip(page.objects, page.grades))
            still.append(i)
        live = still
    return columns


def drain_columns(
    services: Sequence[RemoteGradedSource],
    *,
    batch_size: int = 256,
    sequential: bool = False,
) -> list[list[tuple]]:
    """Drain every service's sorted stream to completion; returns one
    ``[(object, grade), ...]`` column per service, in the exact order
    served.  ``sequential`` uses the round-robin baseline instead of
    overlapping the streams; the columns are identical either way."""
    if not services:
        raise DatabaseError("need at least one service")
    drainer = (
        _drain_columns_round_robin if sequential else _drain_columns_overlapped
    )
    return asyncio.run(drainer(services, batch_size))


def assemble_remote_database(
    services: Sequence[RemoteGradedSource],
    num_shards: int | None = None,
    *,
    batch_size: int = 256,
    sequential: bool = False,
) -> tuple[ColumnarDatabase, list[ListCapabilities]]:
    """Drain remote services into a columnar (or sharded) backend plus
    the matching capability vector -- the async twin of
    :func:`~repro.middleware.sources.assemble_database`.

    The services' streams are drained concurrently (the overlap is
    where the wall-clock win lives; see ``benchmarks/bench_async.py``)
    and compiled with
    :meth:`~repro.middleware.database.Database.from_columns` semantics:
    the served order *is* the tie order, so the resulting backend is
    bit-identical to one assembled locally from the same lists, and
    the speculative chunked engines run on it unmodified.

    Raises :class:`~repro.middleware.errors.DatabaseError` if the
    services disagree on the object universe or none supports sorted
    access (then nothing could be drained without wild guesses).
    """
    if not any(s.supports_sorted for s in services):
        raise DatabaseError(
            "at least one service must support sorted access (|Z| >= 1)"
        )
    columns = drain_columns(
        services, batch_size=batch_size, sequential=sequential
    )
    universe = {obj for obj, _ in columns[0]}
    for service, column in zip(services[1:], columns[1:]):
        if {obj for obj, _ in column} != universe:
            raise DatabaseError(
                f"services {services[0].name!r} and {service.name!r} "
                "disagree on the object universe"
            )
    database = ColumnarDatabase.from_columns(columns)
    if num_shards is not None:
        database = ShardedDatabase.from_database(
            database, num_shards=num_shards
        )
    return database, [s.capabilities() for s in services]


async def _gather_runs_overlapped(
    shard_services: Sequence[RunStreamSource], batch_size: int
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    return list(
        await asyncio.gather(
            *(s.fetch_run(batch_size) for s in shard_services)
        )
    )


async def _gather_runs_round_robin(
    shard_services: Sequence[RunStreamSource], batch_size: int
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    parts: list[list[tuple]] = [[] for _ in shard_services]
    streams = [s.run_stream(batch_size) for s in shard_services]
    live = list(range(len(shard_services)))
    while live:
        still: list[int] = []
        for s in live:
            try:
                chunk = await anext(streams[s])
            except StopAsyncIteration:
                continue
            parts[s].append(chunk)
            still.append(s)
        live = still
    runs: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for s, chunks in enumerate(parts):
        if chunks:
            runs.append(tuple(np.concatenate(a) for a in zip(*chunks)))
        else:
            runs.append(
                (
                    np.empty(0, dtype=np.intp),
                    np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=np.int64),
                )
            )
    return runs


def fetch_merged_orders(
    grid: Sequence[Sequence[RunStreamSource]],
    *,
    batch_size: int = 512,
    sequential: bool = False,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Gather every list's per-shard run streams and k-way merge them.

    All ``S x m`` streams are drained concurrently (or by sequential
    round-robin for the baseline), then each list's runs feed a
    :class:`~repro.middleware.database.ListMergeCursor` whose
    vectorised drain reconstructs the global ``(rows, grades)`` order
    -- bit-identical to the owning
    :class:`~repro.middleware.database.ShardedDatabase`'s own merged
    orders, tie placement included.
    """
    if not grid:
        raise DatabaseError("need at least one list of run services")

    async def _gather_all():
        gather = (
            _gather_runs_round_robin if sequential else _gather_runs_overlapped
        )
        if sequential:
            # strict baseline: one list at a time, one page in flight
            out: list[list] = []
            for shard_services in grid:
                out.append(await gather(shard_services, batch_size))
            return out
        return list(
            await asyncio.gather(
                *(gather(shard_services, batch_size) for shard_services in grid)
            )
        )

    runs_per_list = asyncio.run(_gather_all())
    return [ListMergeCursor(runs).drain() for runs in runs_per_list]
