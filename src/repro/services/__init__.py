"""Asynchronous remote-source subsystem.

The paper's middleware is a *client of autonomous remote subsystems*
(Section 1): each of the ``m`` graded lists lives in a separate service
with its own access latency.  This package realises that setting:

* :mod:`repro.services.protocol` -- the asynchronous wire contract
  (:class:`RemoteGradedSource`: paged ``sorted_access_stream`` +
  ``random_access_batch``);
* :mod:`repro.services.simulated` -- in-process services wrapping
  per-attribute lists or per-shard runs behind configurable latency,
  jitter, failure and retry models;
* :mod:`repro.services.session` -- :class:`AsyncAccessSession`, which
  overlaps all ``m`` services' sorted streams behind bounded prefetch
  buffers while charging the *identical*
  :class:`~repro.middleware.access.AccessStats`/trace semantics as the
  synchronous plane;
* :mod:`repro.services.assemble` -- builders and drain adapters: remote
  streams into the columnar/sharded backends (and their merge cursors)
  the speculative chunked engines consume unmodified;
* :mod:`repro.services.network` -- transport-backed factories
  (:func:`network_services`, :func:`network_shard_runs`) connecting the
  same contracts to a :mod:`repro.transport` server in another process.

See ``docs/ARCHITECTURE.md`` ("Async services", "Real transport") for
the overlap model and the charging equivalence contract.
"""

from .assemble import (
    assemble_remote_database,
    drain_columns,
    fetch_merged_orders,
    services_for_database,
    services_for_sources,
    shard_run_services,
)
from .network import network_client, network_services, network_shard_runs
from .protocol import RemoteGradedSource, RunStreamSource, SortedPage
from .session import AsyncAccessSession, ServiceSession, SharedScanSession
from .simulated import (
    FailureModel,
    LatencyModel,
    RetryPolicy,
    ShardRunService,
    SimulatedListService,
)

__all__ = [
    "RemoteGradedSource",
    "RunStreamSource",
    "SortedPage",
    "AsyncAccessSession",
    "ServiceSession",
    "SharedScanSession",
    "LatencyModel",
    "FailureModel",
    "RetryPolicy",
    "SimulatedListService",
    "ShardRunService",
    "services_for_database",
    "services_for_sources",
    "shard_run_services",
    "drain_columns",
    "assemble_remote_database",
    "fetch_merged_orders",
    "network_client",
    "network_services",
    "network_shard_runs",
]
