"""In-process simulated remote services.

Each simulated service wraps local data -- a per-attribute graded list,
or one shard's sorted run of one list -- behind the asynchronous
:class:`~repro.services.protocol.RemoteGradedSource` contract, with
three composable behaviour models:

:class:`LatencyModel`
    every service call sleeps ``base + jitter`` (jitter drawn from a
    seeded RNG, so runs are reproducible).  ``asyncio.sleep`` means
    concurrent calls to *different* services overlap -- the whole point
    of the async plane.
:class:`FailureModel`
    scripted and/or probabilistic failure injection per call:
    ``timeout`` and ``transient`` failures are retryable, ``permanent``
    kills the service for good.  Deterministic under a seed.
:class:`RetryPolicy`
    the client-side stub's retry budget.  Retryable failures are
    re-attempted up to ``max_attempts`` times (with optional backoff);
    exhaustion raises the matching
    :class:`~repro.middleware.errors.RemoteServiceError` subclass, and
    a permanent failure raises
    :class:`~repro.middleware.errors.ServiceUnavailableError`
    immediately.

A failed call raises *before* any data is served, so the session layer
never charges for it -- failure injection can delay or abort a run but
can never corrupt the access accounting (asserted by the failure tests).
"""

from __future__ import annotations

import asyncio
import random
from collections.abc import AsyncIterator, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from ..middleware.access import ListCapabilities
from ..middleware.errors import (
    DatabaseError,
    ServiceTimeoutError,
    ServiceTransientError,
    ServiceUnavailableError,
    UnknownObjectError,
)
from .protocol import SortedPage

__all__ = [
    "LatencyModel",
    "FailureModel",
    "RetryPolicy",
    "SimulatedListService",
    "ShardRunService",
]

#: failure kinds understood by :class:`FailureModel` scripts
_KINDS = ("timeout", "transient", "permanent")


@dataclass(frozen=True)
class LatencyModel:
    """Per-call latency: ``base`` seconds plus uniform jitter in
    ``[0, jitter]``, drawn from a seeded RNG."""

    base: float = 0.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.base < 0 or self.jitter < 0:
            raise ValueError("latency base and jitter must be >= 0")

    def sampler(self) -> "random.Random":
        return random.Random(self.seed)

    def delay(self, rng: "random.Random") -> float:
        if self.jitter:
            return self.base + rng.random() * self.jitter
        return self.base


@dataclass(frozen=True)
class FailureModel:
    """Failure injection per service call.

    ``script`` maps a 0-based call index to a failure kind
    (``"timeout"`` / ``"transient"`` / ``"permanent"``) for exact,
    deterministic tests; ``timeout_rate`` / ``transient_rate`` inject
    probabilistic failures from a seeded RNG on the calls the script
    does not mention.  Every *attempt* (including retries) counts as
    one call.
    """

    script: Mapping[int, str] = field(default_factory=dict)
    timeout_rate: float = 0.0
    transient_rate: float = 0.0
    seed: int = 0

    def __post_init__(self):
        for kind in self.script.values():
            if kind not in _KINDS:
                raise ValueError(
                    f"unknown failure kind {kind!r}; expected one of {_KINDS}"
                )
        if not (0.0 <= self.timeout_rate <= 1.0) or not (
            0.0 <= self.transient_rate <= 1.0
        ):
            raise ValueError("failure rates must be in [0, 1]")

    def sampler(self) -> "random.Random":
        return random.Random(self.seed)

    def verdict(self, call_index: int, rng: "random.Random") -> str | None:
        scripted = self.script.get(call_index)
        if scripted is not None:
            return scripted
        if self.timeout_rate or self.transient_rate:
            draw = rng.random()
            if draw < self.timeout_rate:
                return "timeout"
            if draw < self.timeout_rate + self.transient_rate:
                return "transient"
        return None


@dataclass(frozen=True)
class RetryPolicy:
    """Client-stub retry budget for retryable (timeout/transient)
    failures, with seeded exponential backoff.

    The delay before retry number ``a`` (1-based) is::

        min(backoff * multiplier ** (a - 1), max_backoff)
        * (1 + U(-jitter, jitter))

    with ``U`` drawn from a per-stub RNG seeded with ``seed`` -- so a
    fixed seed gives a bit-reproducible delay schedule, while distinct
    stubs (distinct seeds) desynchronise their retries instead of
    hammering a briefly-unavailable service in lockstep (the retry
    storm the earlier fixed-delay policy produced).  The defaults
    (``backoff=0``) keep retries immediate, matching the previous
    behaviour.
    """

    max_attempts: int = 3
    backoff: float = 0.0
    multiplier: float = 2.0
    max_backoff: float | None = None
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_backoff is not None and self.max_backoff < 0:
            raise ValueError(
                f"max_backoff must be >= 0, got {self.max_backoff}"
            )
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def sampler(self) -> "random.Random":
        """The per-stub jitter RNG (deterministic under the seed)."""
        return random.Random(self.seed)

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Seconds to sleep before retrying after failed attempt number
        ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = self.backoff * self.multiplier ** (attempt - 1)
        if self.max_backoff is not None:
            base = min(base, self.max_backoff)
        if self.jitter and rng is not None and base:
            base *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return base


class _SimulatedEndpoint:
    """Shared latency / failure / retry plumbing of the simulated
    services.  Each network-shaped operation calls :meth:`_call` once
    per page or batch; the method sleeps, consults the failure model,
    and retries retryable failures within the policy."""

    def __init__(
        self,
        name: str,
        latency: LatencyModel | None = None,
        failures: FailureModel | None = None,
        retry: RetryPolicy | None = None,
    ):
        self.name = name
        self._latency = latency or LatencyModel()
        self._failures = failures or FailureModel()
        self._retry = retry or RetryPolicy()
        self._latency_rng = self._latency.sampler()
        self._failure_rng = self._failures.sampler()
        self._retry_rng = self._retry.sampler()
        self._calls = 0
        self._dead = False
        #: total attempts that were failed by injection (observability
        #: for tests and benchmarks; not part of any charging)
        self.failed_attempts = 0

    @property
    def calls(self) -> int:
        """Number of attempts this service has served (retries count)."""
        return self._calls

    async def _call(self) -> None:
        if self._dead:
            raise ServiceUnavailableError(self.name)
        attempts = 0
        while True:
            attempts += 1
            index = self._calls
            self._calls += 1
            delay = self._latency.delay(self._latency_rng)
            if delay:
                await asyncio.sleep(delay)
            verdict = self._failures.verdict(index, self._failure_rng)
            if verdict is None:
                return
            self.failed_attempts += 1
            if verdict == "permanent":
                self._dead = True
                raise ServiceUnavailableError(self.name, attempts)
            if attempts >= self._retry.max_attempts:
                if verdict == "timeout":
                    raise ServiceTimeoutError(self.name, attempts)
                raise ServiceTransientError(self.name, attempts)
            pause = self._retry.delay(attempts, self._retry_rng)
            if pause:
                await asyncio.sleep(pause)


class SimulatedListService(_SimulatedEndpoint):
    """One attribute's graded list behind the remote protocol.

    ``entries`` must already be in the authoritative sorted order
    (grade non-increasing); tie placement is preserved exactly as
    given, like :meth:`~repro.middleware.database.Database.from_columns`
    -- the simulated service *is* the authority on its tie order.
    """

    def __init__(
        self,
        name: str,
        entries: Iterable[tuple[Hashable, float]],
        *,
        supports_sorted: bool = True,
        supports_random: bool = True,
        latency: LatencyModel | None = None,
        failures: FailureModel | None = None,
        retry: RetryPolicy | None = None,
    ):
        super().__init__(name, latency, failures, retry)
        self._entries = [(obj, float(g)) for obj, g in entries]
        if not self._entries:
            raise DatabaseError(f"service {name!r} has no entries")
        previous = None
        self._grades: dict[Hashable, float] = {}
        for obj, grade in self._entries:
            if previous is not None and grade > previous + 1e-15:
                raise DatabaseError(
                    f"service {name!r} entries are not sorted descending "
                    f"at object {obj!r}"
                )
            previous = grade
            if obj in self._grades:
                raise DatabaseError(
                    f"service {name!r} graded object {obj!r} twice"
                )
            self._grades[obj] = grade
        self.supports_sorted = supports_sorted
        self.supports_random = supports_random

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def objects(self) -> set[Hashable]:
        return set(self._grades)

    def capabilities(self) -> ListCapabilities:
        return ListCapabilities(
            sorted_allowed=self.supports_sorted,
            random_allowed=self.supports_random,
        )

    async def sorted_access_stream(
        self, batch_size: int
    ) -> AsyncIterator[SortedPage]:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        position = 0
        entries = self._entries
        while position < len(entries):
            await self._call()
            page = entries[position : position + batch_size]
            position += len(page)
            yield SortedPage(
                [obj for obj, _ in page], [g for _, g in page]
            )

    async def page(self, start: int, count: int) -> SortedPage:
        """One *stateless* page: entries ``[start, start + count)`` of
        the sorted list, one service call.

        This is the request shape of the wire protocol
        (:mod:`repro.transport`), whose clients keep their own cursors
        so that a retried request is idempotent.  Paged sequentially at
        a fixed ``count`` it makes exactly the calls of
        :meth:`sorted_access_stream`, latency and failure injection
        included.
        """
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        await self._call()
        page = self._entries[start : start + count]
        return SortedPage([obj for obj, _ in page], [g for _, g in page])

    async def random_access_batch(
        self, objects: Sequence[Hashable]
    ) -> list[float]:
        await self._call()
        grades = self._grades
        out: list[float] = []
        for obj in objects:
            grade = grades.get(obj)
            if grade is None:
                raise UnknownObjectError(obj)
            out.append(grade)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        modes = "".join(
            flag
            for flag, on in (
                ("S", self.supports_sorted),
                ("R", self.supports_random),
            )
            if on
        )
        return (
            f"<SimulatedListService {self.name!r} n={len(self._entries)} "
            f"modes={modes or '-'}>"
        )


class ShardRunService(_SimulatedEndpoint):
    """One shard's sorted run of one list as a remote stream.

    This is the distributed twin of
    :class:`~repro.middleware.database.ShardedDatabase`'s per-shard run
    storage: the service streams its ``(rows, grades, ties)`` triple in
    pages, already sorted by the merge key *(grade desc, tie asc)*, and
    a :class:`~repro.middleware.database.ListMergeCursor` over the
    gathered runs reconstructs the exact global sorted order --
    bit-for-bit, tie placement included -- no matter how the page
    arrivals interleaved.
    """

    def __init__(
        self,
        name: str,
        rows: np.ndarray,
        grades: np.ndarray,
        ties: np.ndarray,
        *,
        latency: LatencyModel | None = None,
        failures: FailureModel | None = None,
        retry: RetryPolicy | None = None,
    ):
        super().__init__(name, latency, failures, retry)
        if not (len(rows) == len(grades) == len(ties)):
            raise DatabaseError(
                f"service {name!r}: run arrays disagree in length"
            )
        self._rows = np.asarray(rows, dtype=np.intp)
        self._grades = np.asarray(grades, dtype=np.float64)
        self._ties = np.asarray(ties, dtype=np.int64)

    @property
    def num_entries(self) -> int:
        return len(self._rows)

    async def run_stream(
        self, batch_size: int
    ) -> AsyncIterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Page out the run as ``(rows, grades, ties)`` array triples."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        position = 0
        total = len(self._rows)
        while position < total:
            await self._call()
            stop = min(position + batch_size, total)
            yield (
                self._rows[position:stop],
                self._grades[position:stop],
                self._ties[position:stop],
            )
            position = stop

    async def run_page(
        self, start: int, count: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One *stateless* page of the run: ``(rows, grades, ties)``
        slices covering ``[start, start + count)``, one service call
        (the wire-protocol twin of :meth:`run_stream`; see
        :meth:`SimulatedListService.page`)."""
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        await self._call()
        stop = min(start + count, len(self._rows))
        return (
            self._rows[start:stop],
            self._grades[start:stop],
            self._ties[start:stop],
        )

    async def fetch_run(
        self, batch_size: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Drain the whole stream into one concatenated run triple."""
        rows_parts, grade_parts, tie_parts = [], [], []
        async for rows, grades, ties in self.run_stream(batch_size):
            rows_parts.append(rows)
            grade_parts.append(grades)
            tie_parts.append(ties)
        if not rows_parts:
            return (
                np.empty(0, dtype=np.intp),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        return (
            np.concatenate(rows_parts),
            np.concatenate(grade_parts),
            np.concatenate(tie_parts),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ShardRunService {self.name!r} n={len(self._rows)}>"
