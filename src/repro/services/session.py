"""Service-backed access sessions: remote services, synchronous
charging.

Two concrete sessions give the paper's algorithms -- unmodified --
accounted access to ``m`` remote graded sources:

* :class:`AsyncAccessSession` owns a private asyncio loop on a
  background thread and one prefetch task per list (the single-query
  plane: one session, one set of cursors);
* :class:`SharedScanSession` owns nothing: it reads the materialized
  prefix of *shared* per-list scans (one underlying cursor serving many
  concurrent queries; see :mod:`repro.server.scancache`) and bridges
  its random accesses onto a loop it is lent.  It adds cooperative
  cancellation: a cancelled query's next access raises
  :class:`~repro.middleware.errors.QueryCancelledError` *before*
  anything is charged, so its accounting stops exactly at the prefix it
  consumed.

Both share :class:`ServiceSession`, which holds everything that makes
the charging-equivalence contract work:

charging equivalence contract
    :class:`ServiceSession` subclasses
    :class:`~repro.middleware.access.AccessSession` and overrides
    nothing about charging.  The parent's scalar machinery runs against
    a :class:`Database`-shaped facade (:class:`_ServiceBackedView`), so
    per-list counters, depth, the wild-guess certificate, capability
    checks, trace events and cost are *the same code paths* as the
    synchronous plane -- sorted accesses charge exactly the consumed
    prefix (prefetched or shared-scan pages beyond it are uncharged
    speculation, like
    :meth:`~repro.middleware.access.AccessSession.columnar_view`
    reads), random accesses charge after their grade is served, and a
    failed service call raises *before* anything is charged.  The
    differential suites hold algorithms on these sessions to
    bit-for-bit equality (items, halting,
    :class:`~repro.middleware.access.AccessStats`) with the scalar,
    columnar and sharded backends.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from collections.abc import Sequence
from typing import Hashable, Protocol

import numpy as np

from ..middleware.access import AccessSession, ListCapabilities
from ..middleware.cost import UNIT_COSTS, CostModel, QueryBudget
from ..middleware.errors import (
    CapabilityError,
    DatabaseError,
    ListLostError,
    QueryCancelledError,
    ServiceTimeoutError,
    ServiceUnavailableError,
    UnknownObjectError,
    WildGuessError,
)
from .protocol import RemoteGradedSource

__all__ = ["ServiceSession", "AsyncAccessSession", "SharedScanSession"]


class _ListBuffer:
    """One list's prefetched prefix plus the thread/loop handshake."""

    __slots__ = ("objects", "grades", "done", "error", "cond", "space")

    def __init__(self):
        self.objects: list = []
        self.grades: list[float] = []
        self.done = False
        self.error: BaseException | None = None
        self.cond = threading.Condition()
        # created on the event loop by the prefetch task
        self.space: asyncio.Event | None = None


class _ServiceBackedView:
    """:class:`~repro.middleware.database.Database`-shaped facade over
    a service session, so the parent class's scalar access machinery
    (and therefore its charging semantics) runs unmodified.  Never used
    for ground truth -- only ``num_lists`` / ``num_objects`` /
    ``sorted_entry`` / ``grade`` are served."""

    def __init__(self, session: "ServiceSession"):
        self._session = session

    @property
    def num_lists(self) -> int:
        return len(self._session._services)

    @property
    def num_objects(self) -> int:
        return self._session._num_objects

    def sorted_entry(self, list_index: int, position: int):
        return self._session._entry_at(list_index, position)

    def grade(self, obj: Hashable, list_index: int) -> float:
        return self._session._remote_grade(obj, list_index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ServiceBackedView m={self.num_lists} "
            f"N={self.num_objects}>"
        )


class SharedScan(Protocol):
    """What :class:`SharedScanSession` needs from a shared per-list
    scan (the concrete type lives in :mod:`repro.server.scancache`;
    this protocol keeps the dependency arrow pointing server -> here).

    ``objects``/``grades`` are append-only and published grades-first
    under ``cond``, so a reader that observes ``position <
    len(objects)`` may read both without the lock.  ``demand(n)`` is a
    thread-safe monotone watermark asking the producer to materialize
    at least ``n`` entries; ``refill_margin`` is how close to the
    frontier a reader may get before it should demand more.
    """

    objects: list
    grades: list[float]
    done: bool
    error: BaseException | None
    cond: threading.Condition
    refill_margin: int

    def demand(self, n: int) -> None: ...

    def attach(self) -> None: ...

    def detach(self) -> None: ...


class ServiceSession(AccessSession):
    """Shared machinery for sessions whose ``m`` lists live behind
    :class:`~repro.services.protocol.RemoteGradedSource` services.

    Subclasses supply *where sorted entries come from* (``_entry_at``)
    and *which loop bridges random accesses* (``_service_loop``); this
    base owns service validation, the Database-shaped facade, and the
    batched random-access overrides whose charging replay is identical
    for every service-backed plane.
    """

    def __init__(
        self,
        services: Sequence[RemoteGradedSource],
        cost_model: CostModel = UNIT_COSTS,
        capabilities: ListCapabilities | Sequence[ListCapabilities] | None = None,
        forbid_wild_guesses: bool = False,
        record_trace: bool = False,
        *,
        wait_timeout: float = 30.0,
        budget: QueryBudget | None = None,
        survive_list_loss: bool = False,
    ):
        if not services:
            raise DatabaseError("need at least one service")
        self._services = list(services)
        sizes = {int(s.num_entries) for s in self._services}
        if len(sizes) != 1:
            raise DatabaseError(
                "services disagree on the database size N: "
                f"{sorted(sizes)}"
            )
        self._num_objects = sizes.pop()
        if self._num_objects < 1:
            raise DatabaseError("services must grade at least one object")
        self._wait_timeout = wait_timeout
        if capabilities is None:
            capabilities = [s.capabilities() for s in self._services]
        super().__init__(
            _ServiceBackedView(self),
            cost_model,
            capabilities=capabilities,
            forbid_wild_guesses=forbid_wild_guesses,
            record_trace=record_trace,
            budget=budget,
            survive_list_loss=survive_list_loss,
        )

    # -- subclass surface ----------------------------------------------
    @property
    def _service_loop(self) -> asyncio.AbstractEventLoop:
        """The loop that owns the services' I/O (their simulated
        endpoints and transport connections are single-loop objects)."""
        raise NotImplementedError

    def _entry_at(self, i: int, position: int):
        """The facade's ``sorted_entry``: ``(object, grade)``, ``None``
        on exhaustion, or raise."""
        raise NotImplementedError

    def _check_open(self) -> None:
        """Hook called before every access; cancellable sessions raise
        here so a dead query charges nothing further."""

    # -- random-access bridging ----------------------------------------
    def _bridge_random(self, i: int, objects: list) -> list[float]:
        """Bridge one ``random_access_batch`` service round trip onto
        the loop and wait for it (uncharged; charging is the caller's
        job).  Gated on ``_check_open`` so *every* random path -- the
        facade's single probe included -- fails before anything is
        served (hence before anything is charged) on a dead query."""
        self._check_open()
        future = asyncio.run_coroutine_threadsafe(
            self._services[i].random_access_batch(objects),
            self._service_loop,
        )
        try:
            return future.result(timeout=self._wait_timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise ServiceTimeoutError(self._services[i].name) from None

    def _remote_grade(self, obj: Hashable, i: int) -> float:
        """The facade's ``grade``: bridge one random-access batch of
        size one onto the loop and wait for it."""
        return float(self._bridge_random(i, [obj])[0])

    # ------------------------------------------------------------------
    # batched random access: one service round trip per batch
    # ------------------------------------------------------------------
    def random_access_batch(
        self,
        list_index: int,
        objects: Sequence[Hashable] | None,
        rows=None,
    ) -> np.ndarray:
        """Fetch the grades of ``objects``, charging one random access
        per object -- served by **one** bridged
        ``random_access_batch`` service round trip for the whole batch
        instead of the parent's one-call-per-object scalar replay.

        Batched-plane callers therefore pay one round trip of
        wall-clock per (list, batch); the cross-list twin for TA's
        resolution step and CA's phases is
        :meth:`random_access_across`.  The charging semantics are
        exactly the batched plane's: every object charges (repeats
        included) once its
        grade is served; with the no-wild-guess certificate armed, an
        unseen object charges the objects *before* it and then raises
        -- before any service round trip, matching the columnar fast
        path and the scalar loop's counters alike.  ``rows`` (a
        columnar-backend affordance) is ignored: services address
        objects by id.  When a trace is recorded the call falls back
        to the scalar loop so the event stream stays byte-identical.
        """
        self._check_open()
        self._check_list(list_index)
        if not self._capabilities[list_index].random_allowed:
            raise CapabilityError("random", list_index)
        if list_index in self._lost_lists:
            raise ListLostError(
                self._services[list_index].name, list_index
            )
        if objects is None:
            raise ValueError(
                "objects are required on a service-backed session "
                "(row addressing is a columnar-backend affordance)"
            )
        if self.trace is not None:
            # scalar fallback: per-access trace events, identical bytes
            return super().random_access_batch(list_index, objects)
        objects = list(objects)
        if self._forbid_wild_guesses:
            seen = self._seen_sorted
            for prefix, obj in enumerate(objects):
                if obj not in seen:
                    self._random_by_list[list_index] += prefix
                    raise WildGuessError(obj, list_index)
        if not objects:
            return np.empty(0, dtype=np.float64)
        try:
            grades = self._bridge_random(list_index, objects)
        except UnknownObjectError:
            # replay object by object for exact prefix charging: the
            # objects before the unknown one charge (their grades were
            # servable), the unknown raises uncharged -- the scalar
            # loop's accounting
            return super().random_access_batch(list_index, objects)
        except ListLostError:
            raise
        except ServiceUnavailableError as exc:
            if not self._survive_list_loss:
                raise
            # the whole batch failed in one round trip: nothing was
            # served, so nothing is charged -- mark the loss and
            # surface it as the dedicated degraded-mode signal
            self._lost_lists[list_index] = self._positions[list_index]
            raise ListLostError(
                self._services[list_index].name, list_index, exc.attempts
            ) from exc
        self._random_by_list[list_index] += len(objects)
        return np.asarray(grades, dtype=np.float64)

    def random_access_across(
        self, obj: Hashable, lists: Sequence[int]
    ) -> list[float]:
        """Fetch ``obj``'s grade in each of ``lists`` with every
        service round trip *in flight concurrently*, then replay the
        charges in list order -- so TA's resolution step and CA's
        random phase cost one round trip of wall-clock instead of
        ``len(lists)``, with accounting identical to the scalar loop.

        Exactness: any condition under which the scalar loop would
        interleave charging with a raise (trace recording, a list
        refusing random access, a wild guess, an out-of-range index)
        falls back to the parent's per-list loop wholesale.  On the
        concurrent path a failed round trip re-raises after the lists
        *before* it (in list order) were charged; grades fetched from
        later lists are discarded uncharged -- speculation, exactly
        like prefetched-but-unconsumed pages.
        """
        self._check_open()
        lists = list(lists)
        if (
            self.trace is not None
            or (self._forbid_wild_guesses and obj not in self._seen_sorted)
            or any(
                not (0 <= i < len(self._capabilities))
                or not self._capabilities[i].random_allowed
                or i in self._lost_lists
                for i in lists
            )
        ):
            # an already-lost list takes the parent's scalar loop too:
            # lists before it charge in order, then ListLostError
            return super().random_access_across(obj, lists)
        if not lists:
            return []

        async def _gather():
            return await asyncio.gather(
                *(
                    self._services[i].random_access_batch([obj])
                    for i in lists
                ),
                return_exceptions=True,
            )

        future = asyncio.run_coroutine_threadsafe(
            _gather(), self._service_loop
        )
        try:
            results = future.result(timeout=self._wait_timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise ServiceTimeoutError(
                self._services[lists[0]].name
            ) from None
        out: list[float] = []
        for i, served in zip(lists, results):
            if isinstance(served, BaseException):
                if (
                    self._survive_list_loss
                    and isinstance(served, ServiceUnavailableError)
                    and not isinstance(served, ListLostError)
                ):
                    # lists before i charged above (in list order);
                    # grades speculatively fetched from later lists
                    # are discarded uncharged, as on any failure
                    self._lost_lists[i] = self._positions[i]
                    raise ListLostError(
                        self._services[i].name, i, served.attempts
                    ) from served
                raise served
            self._random_by_list[i] += 1
            out.append(float(served[0]))
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def services(self) -> list[RemoteGradedSource]:
        return list(self._services)


class AsyncAccessSession(ServiceSession):
    """Accounted, capability-checked access to ``m`` remote services,
    with a private event loop and per-list prefetch pipelines.

    Parameters
    ----------
    services:
        One :class:`~repro.services.protocol.RemoteGradedSource` per
        list, in list order.  All must agree on ``num_entries``.
    cost_model, capabilities, forbid_wild_guesses, record_trace:
        As for :class:`~repro.middleware.access.AccessSession`;
        ``capabilities`` defaults to each service's declared modes.
    batch_size:
        Page size of the sorted prefetch streams.
    prefetch_pages:
        How many pages each stream may run ahead of its consumer.
        ``0`` fetches strictly on demand (no pipelining, no overlap
        between compute and transfer) -- the sequential baseline.
    wait_timeout:
        Seconds the consumer thread waits on a stalled buffer or
        random-access bridge before raising
        :class:`~repro.middleware.errors.ServiceTimeoutError` (a
        deadlock net, not a latency model).
    eager:
        Arm every sorted-capable list's prefetcher at construction, so
        the very first lockstep round already overlaps all ``m``
        services (the default).  Pass ``False`` -- together with
        ``prefetch_pages=0`` -- for the strict sequential
        fetch-on-demand baseline, where no service is contacted until
        its list is actually read (this is what ``bench_async.py``'s
        sequential arm measures).
    budget, survive_list_loss:
        As for :class:`~repro.middleware.access.AccessSession` -- the
        per-query resource envelope and the degraded-mode switch; both
        are forwarded to the parent unchanged so the scalar charging
        machinery owns them.
    """

    def __init__(
        self,
        services: Sequence[RemoteGradedSource],
        cost_model: CostModel = UNIT_COSTS,
        capabilities: ListCapabilities | Sequence[ListCapabilities] | None = None,
        forbid_wild_guesses: bool = False,
        record_trace: bool = False,
        *,
        batch_size: int = 64,
        prefetch_pages: int = 2,
        wait_timeout: float = 30.0,
        eager: bool = True,
        budget: QueryBudget | None = None,
        survive_list_loss: bool = False,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if prefetch_pages < 0:
            raise ValueError(
                f"prefetch_pages must be >= 0, got {prefetch_pages}"
            )
        self._batch_size = batch_size
        self._prefetch_pages = prefetch_pages
        # wake the producer when fewer than half the prefetch window
        # (at least one page) remains buffered ahead of the consumer
        self._refill_margin = max(
            (prefetch_pages * batch_size) // 2, batch_size, 1
        )
        self._buffers = [_ListBuffer() for _ in services]
        self._prefetching: list[concurrent.futures.Future | None] = [
            None for _ in services
        ]
        self._closing = False
        super().__init__(
            services,
            cost_model,
            capabilities,
            forbid_wild_guesses,
            record_trace,
            wait_timeout=wait_timeout,
            budget=budget,
            survive_list_loss=survive_list_loss,
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-async-session",
            daemon=True,
        )
        self._thread.start()
        if eager:
            # arm every sorted-capable list's prefetcher up front so the
            # very first lockstep round already overlaps all m services
            for i in self.sorted_lists:
                self._ensure_prefetch(i)

    @property
    def _service_loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the prefetchers and the background loop (idempotent)."""
        if self._closing:
            return
        self._closing = True
        loop = self._loop
        try:
            future = asyncio.run_coroutine_threadsafe(self._shutdown(), loop)
            future.result(timeout=5.0)
        except Exception:  # pragma: no cover - defensive teardown
            pass
        try:
            loop.call_soon_threadsafe(loop.stop)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass
        self._thread.join(timeout=5.0)
        if not self._thread.is_alive():
            loop.close()

    async def _shutdown(self) -> None:
        """Cancel and drain the prefetch tasks on their own loop, so
        none is destroyed while pending."""
        for buf in self._buffers:
            if buf.space is not None:
                buf.space.set()
        tasks = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    def __enter__(self) -> "AsyncAccessSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - defensive
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # prefetch plumbing
    # ------------------------------------------------------------------
    def _ensure_prefetch(self, i: int) -> None:
        if self._prefetching[i] is None:
            self._prefetching[i] = asyncio.run_coroutine_threadsafe(
                self._prefetch_list(i), self._loop
            )

    def _buffer_target(self, i: int) -> int:
        """Entries list ``i``'s buffer may hold before its producer
        must wait: the consumed prefix plus the prefetch window (or a
        single on-demand entry when pipelining is off)."""
        ahead = self._prefetch_pages * self._batch_size
        return self._positions[i] + max(ahead, 1)

    async def _prefetch_list(self, i: int) -> None:
        buf = self._buffers[i]
        buf.space = asyncio.Event()
        try:
            stream = self._services[i].sorted_access_stream(self._batch_size)
            async for page in stream:
                with buf.cond:
                    # grades first: the consumer's lock-free fast path
                    # gates on len(objects), which must trail grades
                    buf.grades.extend(page.grades)
                    buf.objects.extend(page.objects)
                    buf.cond.notify_all()
                while (
                    not self._closing
                    and len(buf.objects) >= self._buffer_target(i)
                ):
                    buf.space.clear()
                    await buf.space.wait()
                if self._closing:
                    return
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            with buf.cond:
                buf.error = exc
                buf.cond.notify_all()
            return
        with buf.cond:
            buf.done = True
            buf.cond.notify_all()

    def _signal_space(self, i: int) -> None:
        space = self._buffers[i].space
        if space is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(space.set)

    def _entry_at(self, i: int, position: int):
        """The facade's ``sorted_entry``: block until the prefetched
        prefix covers ``position`` (or the stream ends / fails).

        Fast path: the buffer lists only ever grow (grades before
        objects), so once ``len(objects) > position`` both entries are
        readable without the lock; the producer is woken only when the
        remaining buffered-ahead window runs low, not on every entry.
        """
        buf = self._buffers[i]
        objects = buf.objects
        if position < len(objects):
            if len(objects) - position <= self._refill_margin:
                self._signal_space(i)
            return objects[position], buf.grades[position]
        self._ensure_prefetch(i)
        self._signal_space(i)
        deadline = time.monotonic() + self._wait_timeout
        with buf.cond:
            while (
                len(buf.objects) <= position
                and not buf.done
                and buf.error is None
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceTimeoutError(
                        self._services[i].name
                    ) from None
                buf.cond.wait(timeout=remaining)
        if position < len(buf.objects):
            return buf.objects[position], buf.grades[position]
        if buf.error is not None:
            raise buf.error
        return None  # stream exhausted

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def prefetched(self, list_index: int) -> int:
        """Entries buffered for ``list_index`` so far (consumed or not);
        uncharged observability for tests and benchmarks."""
        self._check_list(list_index)
        return len(self._buffers[list_index].objects)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AsyncAccessSession m={len(self._services)} "
            f"N={self._num_objects} s={self.sorted_accesses} "
            f"r={self.random_accesses}>"
        )


class SharedScanSession(ServiceSession):
    """A query's accounted view over *shared* per-list scans.

    Many concurrent queries hold a ``SharedScanSession`` over the same
    :class:`SharedScan` objects: one underlying sorted cursor per list
    materializes an append-only global prefix, and every query reads
    that prefix at its own pace.  Charging stays per query -- the
    parent's counters advance only for entries *this* session consumed,
    so a page pulled because a deeper query demanded it is uncharged
    speculation for everyone else, and each query's
    :class:`~repro.middleware.access.AccessStats` is bit-identical to a
    solo run of the same query.

    Cancellation (:meth:`cancel`) is cooperative and charge-safe: the
    next access raises
    :class:`~repro.middleware.errors.QueryCancelledError` before
    charging, and any wait blocked on a scan frontier is woken
    immediately.

    Parameters
    ----------
    services:
        The remote sources backing the scans, in list order (used for
        random access, which is always per-query, and for names).
    scans:
        One attached :class:`SharedScan` per service, same order.
    loop:
        The running event loop that owns the services' I/O; random
        accesses are bridged onto it.  Unlike
        :class:`AsyncAccessSession` this session does not own the loop
        and never stops it.
    query_id:
        Identifies this query in cancellation errors and bills.
    """

    def __init__(
        self,
        services: Sequence[RemoteGradedSource],
        scans: Sequence[SharedScan],
        loop: asyncio.AbstractEventLoop,
        cost_model: CostModel = UNIT_COSTS,
        capabilities: ListCapabilities | Sequence[ListCapabilities] | None = None,
        forbid_wild_guesses: bool = False,
        record_trace: bool = False,
        *,
        wait_timeout: float = 30.0,
        budget: QueryBudget | None = None,
        survive_list_loss: bool = False,
        query_id: str = "query",
    ):
        scans = list(scans)
        if len(scans) != len(list(services)):
            raise DatabaseError(
                f"got {len(scans)} scans for {len(list(services))} services"
            )
        self._scans = scans
        self._session_loop = loop
        self._query_id = query_id
        self._cancelled = False
        self._closed = False
        super().__init__(
            services,
            cost_model,
            capabilities,
            forbid_wild_guesses,
            record_trace,
            wait_timeout=wait_timeout,
            budget=budget,
            survive_list_loss=survive_list_loss,
        )
        for scan in self._scans:
            scan.attach()

    @property
    def _service_loop(self) -> asyncio.AbstractEventLoop:
        return self._session_loop

    @property
    def query_id(self) -> str:
        return self._query_id

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Mark the query dead and wake any wait blocked on a scan.

        Thread-safe and idempotent; callable from the event loop while
        the engine blocks in a worker thread.  The engine's next access
        raises :class:`QueryCancelledError` *before* charging, so the
        session's accounting freezes at exactly the consumed prefix.
        """
        if self._cancelled:
            return
        self._cancelled = True
        for scan in self._scans:
            with scan.cond:
                scan.cond.notify_all()

    def close(self) -> None:
        """Detach from every shared scan (idempotent).  The scans keep
        their materialized prefix -- they are a cache -- but stop
        counting this query as a consumer."""
        if self._closed:
            return
        self._closed = True
        for scan in self._scans:
            scan.detach()

    def __enter__(self) -> "SharedScanSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # access plumbing
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._cancelled:
            raise QueryCancelledError(self._query_id)

    def _entry_at(self, i: int, position: int):
        """The facade's ``sorted_entry`` against the shared prefix.

        Fast path mirrors :class:`AsyncAccessSession`: the scan's
        lists only grow (grades published before objects), so once
        ``len(objects) > position`` both are readable without the
        lock; the shared producer is asked for more only when this
        reader nears the frontier.
        """
        self._check_open()
        scan = self._scans[i]
        objects = scan.objects
        if position < len(objects):
            if len(objects) - position <= scan.refill_margin:
                scan.demand(position + 1)
            return objects[position], scan.grades[position]
        scan.demand(position + 1)
        deadline = time.monotonic() + self._wait_timeout
        with scan.cond:
            while (
                len(scan.objects) <= position
                and not scan.done
                and scan.error is None
                and not self._cancelled
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceTimeoutError(
                        self._services[i].name
                    ) from None
                scan.cond.wait(timeout=remaining)
        if self._cancelled:
            raise QueryCancelledError(self._query_id)
        if position < len(scan.objects):
            return scan.objects[position], scan.grades[position]
        if scan.error is not None:
            raise scan.error
        return None  # stream exhausted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SharedScanSession {self._query_id!r} "
            f"m={len(self._services)} N={self._num_objects} "
            f"s={self.sorted_accesses} r={self.random_accesses}>"
        )
