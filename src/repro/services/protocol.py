"""The remote-source protocol: what an autonomous graded subsystem
looks like to the middleware.

Section 1 of the paper is explicit that the ``m`` graded lists live in
*separate autonomous subsystems* -- QBIC answering ``Color='red'``, a
video server scoring ``Format=MPEG``.  Every access therefore crosses a
service boundary with its own latency, and the dominant execution cost
of a real middleware is communication, not local compute.  This module
pins down the asynchronous wire contract the rest of
:mod:`repro.services` builds on:

* :class:`RemoteGradedSource` -- one attribute's service.  It streams
  its graded list best-first in pages (*sorted access*) and answers
  named-object grade probes (*random access*), both asynchronously.
* :class:`SortedPage` -- one page of a sorted stream: parallel
  ``objects`` / ``grades`` sequences in list order.

The protocol deliberately mirrors the two access modes of Section 2 and
nothing else: capabilities (a web search engine that forbids random
access; a source that forbids sorted access, Section 7) are declared
exactly like :class:`~repro.middleware.sources.GradedSource` does, and
``num_entries`` is ``N`` -- the paper's model takes the database size
as known (it appears in the cost bounds).

Charging stays with the session: a service serves bytes, the
:class:`~repro.services.session.AsyncAccessSession` decides what is an
*access* and charges it with the exact semantics of the synchronous
plane.  Prefetched-but-unconsumed pages are therefore uncharged
speculation, the asynchronous sibling of the
:meth:`~repro.middleware.access.AccessSession.columnar_view` contract.
"""

from __future__ import annotations

from collections.abc import AsyncIterator, Sequence
from dataclasses import dataclass
from typing import Hashable, Protocol, runtime_checkable

from ..middleware.access import ListCapabilities

__all__ = ["SortedPage", "RemoteGradedSource", "RunStreamSource"]


@dataclass(frozen=True)
class SortedPage:
    """One page of a sorted-access stream: the next ``len(objects)``
    entries of the list, best grade first, ties in the service's
    authoritative order."""

    objects: list
    grades: list[float]

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self):
        return iter(zip(self.objects, self.grades))


@runtime_checkable
class RemoteGradedSource(Protocol):
    """Structural protocol for one attribute's remote service.

    Implementations include the in-process simulated services of
    :mod:`repro.services.simulated`; a real deployment would satisfy it
    with an HTTP/RPC client.  All methods may raise the
    :class:`~repro.middleware.errors.RemoteServiceError` family (after
    whatever client-side retry policy the implementation applies) and
    :class:`~repro.middleware.errors.UnknownObjectError` for random
    access to an id the service has never graded.
    """

    name: str

    @property
    def num_entries(self) -> int:
        """``N`` -- how many objects this service has graded."""
        ...

    @property
    def supports_sorted(self) -> bool:
        ...

    @property
    def supports_random(self) -> bool:
        ...

    def capabilities(self) -> ListCapabilities:
        """The per-list capability vector entry this service induces."""
        ...

    def sorted_access_stream(
        self, batch_size: int
    ) -> AsyncIterator[SortedPage]:
        """Stream the graded list best-first in pages of up to
        ``batch_size`` entries (the final page may be short)."""
        ...

    async def random_access_batch(
        self, objects: Sequence[Hashable]
    ) -> list[float]:
        """Grades of ``objects``, positionally (one service round trip
        for the whole batch)."""
        ...


@runtime_checkable
class RunStreamSource(Protocol):
    """One shard's sorted run of one list, served remotely.

    Satisfied by the in-process
    :class:`~repro.services.simulated.ShardRunService` and by the
    transport-backed :class:`~repro.transport.client.NetworkRunSource`;
    :func:`~repro.services.assemble.fetch_merged_orders` accepts any
    grid of these.
    """

    name: str

    @property
    def num_entries(self) -> int:
        ...

    def run_stream(self, batch_size: int):
        """Page out the run as ``(rows, grades, ties)`` array triples
        (an async iterator)."""
        ...

    async def fetch_run(self, batch_size: int):
        """Drain the whole stream into one concatenated run triple."""
        ...
