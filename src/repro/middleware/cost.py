"""Middleware cost model.

The paper charges ``cS`` per sorted access and ``cR`` per random access;
an execution with ``s`` sorted and ``r`` random accesses has *middleware
cost* ``s*cS + r*cR``.  Both constants are strictly positive (footnote 10
notes the results would survive ``cR = 0``, which we allow behind an
explicit flag for the "sorted-cost-only" analyses of Section 6).

The derived quantity ``h = floor(cR / cS)`` drives CA's random-access
schedule (Section 8.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CostModel", "UNIT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Positive access costs ``(cS, cR)`` and the derived middleware cost.

    Parameters
    ----------
    sorted_cost:
        ``cS``, the cost of one sorted access.
    random_cost:
        ``cR``, the cost of one random access.
    allow_zero_random:
        Permit ``cR = 0`` for the sorted-cost-only analyses; default off.
    """

    sorted_cost: float = 1.0
    random_cost: float = 1.0
    allow_zero_random: bool = False

    def __post_init__(self):
        if self.sorted_cost <= 0:
            raise ValueError(f"cS must be positive, got {self.sorted_cost}")
        if self.random_cost < 0 or (
            self.random_cost == 0 and not self.allow_zero_random
        ):
            raise ValueError(
                f"cR must be positive (got {self.random_cost}); pass "
                "allow_zero_random=True for the sorted-cost-only analyses"
            )

    @property
    def cs(self) -> float:
        """Alias for ``sorted_cost`` matching the paper's ``cS``."""
        return self.sorted_cost

    @property
    def cr(self) -> float:
        """Alias for ``random_cost`` matching the paper's ``cR``."""
        return self.random_cost

    @property
    def ratio(self) -> float:
        """``cR / cS``, the quantity the optimality ratios depend on."""
        return self.random_cost / self.sorted_cost

    @property
    def h(self) -> int:
        """``h = floor(cR / cS)``, CA's random-access period (>= 1 only
        when ``cR >= cS``, which CA assumes)."""
        return max(1, math.floor(self.ratio))

    def cost(self, sorted_accesses: int, random_accesses: int) -> float:
        """Middleware cost ``s*cS + r*cR``."""
        return (
            sorted_accesses * self.sorted_cost
            + random_accesses * self.random_cost
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostModel(cS={self.sorted_cost}, cR={self.random_cost})"


#: The unit cost model ``cS = cR = 1`` used as the default everywhere.
UNIT_COSTS = CostModel(1.0, 1.0)
