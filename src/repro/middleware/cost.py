"""Middleware cost model.

The paper charges ``cS`` per sorted access and ``cR`` per random access;
an execution with ``s`` sorted and ``r`` random accesses has *middleware
cost* ``s*cS + r*cR``.  Both constants are strictly positive (footnote 10
notes the results would survive ``cR = 0``, which we allow behind an
explicit flag for the "sorted-cost-only" analyses of Section 6).

The derived quantity ``h = floor(cR / cS)`` drives CA's random-access
schedule (Section 8.2).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "CostModel",
    "UNIT_COSTS",
    "QueryBudget",
    "QueryBill",
    "BillingLedger",
    "AdmissionPolicy",
]


@dataclass(frozen=True)
class CostModel:
    """Positive access costs ``(cS, cR)`` and the derived middleware cost.

    Parameters
    ----------
    sorted_cost:
        ``cS``, the cost of one sorted access.
    random_cost:
        ``cR``, the cost of one random access.
    allow_zero_random:
        Permit ``cR = 0`` for the sorted-cost-only analyses; default off.
    """

    sorted_cost: float = 1.0
    random_cost: float = 1.0
    allow_zero_random: bool = False

    def __post_init__(self):
        if self.sorted_cost <= 0:
            raise ValueError(f"cS must be positive, got {self.sorted_cost}")
        if self.random_cost < 0 or (
            self.random_cost == 0 and not self.allow_zero_random
        ):
            raise ValueError(
                f"cR must be positive (got {self.random_cost}); pass "
                "allow_zero_random=True for the sorted-cost-only analyses"
            )

    @property
    def cs(self) -> float:
        """Alias for ``sorted_cost`` matching the paper's ``cS``."""
        return self.sorted_cost

    @property
    def cr(self) -> float:
        """Alias for ``random_cost`` matching the paper's ``cR``."""
        return self.random_cost

    @property
    def ratio(self) -> float:
        """``cR / cS``, the quantity the optimality ratios depend on."""
        return self.random_cost / self.sorted_cost

    @property
    def h(self) -> int:
        """``h = floor(cR / cS)``, CA's random-access period (>= 1 only
        when ``cR >= cS``, which CA assumes)."""
        return max(1, math.floor(self.ratio))

    def cost(self, sorted_accesses: int, random_accesses: int) -> float:
        """Middleware cost ``s*cS + r*cR``."""
        return (
            sorted_accesses * self.sorted_cost
            + random_accesses * self.random_cost
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostModel(cS={self.sorted_cost}, cR={self.random_cost})"


#: The unit cost model ``cS = cR = 1`` used as the default everywhere.
UNIT_COSTS = CostModel(1.0, 1.0)


@dataclass
class QueryBudget:
    """Per-query resource envelope: a wall-clock deadline and/or a
    middleware-cost ceiling.

    Either limit may be ``None`` (unbounded).  The engines poll
    :meth:`expired` at round (scalar loops) or chunk (columnar loops)
    boundaries -- points where the bookkeeping is fully consistent --
    and on expiry halt with ``HaltReason.DEADLINE``, returning the
    current top-``k`` together with the certified approximation factor
    θ the live W/B bounds support, instead of raising.

    The clock is injectable so deadline behaviour is testable without
    real sleeping; it defaults to :func:`time.monotonic`.

    Parameters
    ----------
    deadline_s:
        Wall-clock seconds from :meth:`start` until expiry, or ``None``.
    max_cost:
        Middleware-cost ceiling (``s*cS + r*cR``), or ``None``.  The
        budget expires once the accrued cost *reaches* the ceiling,
        so ``max_cost=0`` expires immediately.
    clock:
        Zero-argument callable returning monotonic seconds.
    """

    deadline_s: float | None = None
    max_cost: float | None = None
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)
    _t0: float | None = field(default=None, init=False, repr=False)

    def __post_init__(self):
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValueError(
                f"deadline_s must be >= 0, got {self.deadline_s}"
            )
        if self.max_cost is not None and self.max_cost < 0:
            raise ValueError(f"max_cost must be >= 0, got {self.max_cost}")

    def start(self) -> QueryBudget:
        """Arm the wall clock (idempotent; first call wins) and return
        ``self`` for chaining."""
        if self._t0 is None:
            self._t0 = self.clock()
        return self

    @property
    def started(self) -> bool:
        return self._t0 is not None

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 if never started)."""
        if self._t0 is None:
            return 0.0
        return self.clock() - self._t0

    def remaining(self) -> float:
        """Wall-clock seconds left (``inf`` when no deadline is set;
        never negative)."""
        if self.deadline_s is None:
            return math.inf
        return max(0.0, self.deadline_s - self.elapsed())

    def expired(self, cost: float = 0.0) -> bool:
        """True once either limit is hit.

        ``cost`` is the middleware cost accrued so far; pass
        ``session.middleware_cost``.
        """
        if self.max_cost is not None and cost >= self.max_cost:
            return True
        if self.deadline_s is not None:
            self.start()
            return self.elapsed() >= self.deadline_s
        return False


@dataclass(frozen=True)
class QueryBill:
    """One query's invoice: the paper's cost model read as a meter.

    ``middleware_cost`` is exactly ``s*cS + r*cR`` over the accesses
    *this* query consumed -- shared scan pages another query pulled are
    uncharged speculation, so concurrent bills sum to what independent
    runs would each have paid, never less per query.

    ``outcome`` is one of ``"ok"``, ``"error"``, or ``"cancelled"``;
    ``halt_reason`` carries the engine's halt certificate for ``"ok"``
    bills (and ``None`` otherwise).
    """

    query_id: str
    algorithm: str
    aggregation: str
    k: int
    lists: tuple[int, ...]
    sorted_accesses: int
    random_accesses: int
    middleware_cost: float
    wall_seconds: float
    outcome: str
    halt_reason: str | None = None

    def as_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "algorithm": self.algorithm,
            "aggregation": self.aggregation,
            "k": self.k,
            "lists": list(self.lists),
            "sorted_accesses": self.sorted_accesses,
            "random_accesses": self.random_accesses,
            "middleware_cost": self.middleware_cost,
            "wall_seconds": self.wall_seconds,
            "outcome": self.outcome,
            "halt_reason": self.halt_reason,
        }


class BillingLedger:
    """Thread-safe append-only record of :class:`QueryBill` entries.

    The query service posts one bill per terminal query -- completed,
    failed, or cancelled -- from whichever worker thread finished it,
    while readers (status endpoints, tests, the CLI) snapshot from
    other threads; hence the lock.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._bills: list[QueryBill] = []

    def post(self, bill: QueryBill) -> None:
        with self._lock:
            self._bills.append(bill)

    def bills(self) -> list[QueryBill]:
        """Snapshot of every posted bill, in posting order."""
        with self._lock:
            return list(self._bills)

    def __len__(self) -> int:
        with self._lock:
            return len(self._bills)

    def totals(self) -> dict:
        """Aggregate ledger: query counts by outcome and summed cost."""
        with self._lock:
            bills = list(self._bills)
        by_outcome: dict[str, int] = {}
        for bill in bills:
            by_outcome[bill.outcome] = by_outcome.get(bill.outcome, 0) + 1
        return {
            "queries": len(bills),
            "by_outcome": by_outcome,
            "sorted_accesses": sum(b.sorted_accesses for b in bills),
            "random_accesses": sum(b.random_accesses for b in bills),
            "middleware_cost": sum(b.middleware_cost for b in bills),
        }


@dataclass(frozen=True)
class AdmissionPolicy:
    """Service-level fairness knobs for the concurrent query front-end.

    ``max_active`` bounds how many queries run simultaneously (each
    active query owns one worker-thread slot); arrivals beyond that
    wait in a FIFO queue of at most ``max_queued`` -- FIFO *is* the
    fairness policy: no query can be overtaken by a later arrival, so
    service order equals arrival order and tail latency is bounded by
    queue position.  A submission past ``max_queued`` is refused with
    :class:`~repro.middleware.errors.AdmissionError` rather than
    buffered without bound.

    ``default_deadline_s`` / ``default_max_cost`` arm a
    :class:`QueryBudget` for queries that do not bring their own, so a
    service can guarantee every admitted query terminates.
    """

    max_active: int = 4
    max_queued: int = 256
    default_deadline_s: float | None = None
    default_max_cost: float | None = None

    def __post_init__(self):
        if self.max_active < 1:
            raise ValueError(
                f"max_active must be >= 1, got {self.max_active}"
            )
        if self.max_queued < 0:
            raise ValueError(
                f"max_queued must be >= 0, got {self.max_queued}"
            )

    def default_budget(self) -> QueryBudget | None:
        """A fresh budget from the defaults, or ``None`` if unbounded."""
        if self.default_deadline_s is None and self.default_max_cost is None:
            return None
        return QueryBudget(
            deadline_s=self.default_deadline_s,
            max_cost=self.default_max_cost,
        )
