"""Middleware cost model.

The paper charges ``cS`` per sorted access and ``cR`` per random access;
an execution with ``s`` sorted and ``r`` random accesses has *middleware
cost* ``s*cS + r*cR``.  Both constants are strictly positive (footnote 10
notes the results would survive ``cR = 0``, which we allow behind an
explicit flag for the "sorted-cost-only" analyses of Section 6).

The derived quantity ``h = floor(cR / cS)`` drives CA's random-access
schedule (Section 8.2).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["CostModel", "UNIT_COSTS", "QueryBudget"]


@dataclass(frozen=True)
class CostModel:
    """Positive access costs ``(cS, cR)`` and the derived middleware cost.

    Parameters
    ----------
    sorted_cost:
        ``cS``, the cost of one sorted access.
    random_cost:
        ``cR``, the cost of one random access.
    allow_zero_random:
        Permit ``cR = 0`` for the sorted-cost-only analyses; default off.
    """

    sorted_cost: float = 1.0
    random_cost: float = 1.0
    allow_zero_random: bool = False

    def __post_init__(self):
        if self.sorted_cost <= 0:
            raise ValueError(f"cS must be positive, got {self.sorted_cost}")
        if self.random_cost < 0 or (
            self.random_cost == 0 and not self.allow_zero_random
        ):
            raise ValueError(
                f"cR must be positive (got {self.random_cost}); pass "
                "allow_zero_random=True for the sorted-cost-only analyses"
            )

    @property
    def cs(self) -> float:
        """Alias for ``sorted_cost`` matching the paper's ``cS``."""
        return self.sorted_cost

    @property
    def cr(self) -> float:
        """Alias for ``random_cost`` matching the paper's ``cR``."""
        return self.random_cost

    @property
    def ratio(self) -> float:
        """``cR / cS``, the quantity the optimality ratios depend on."""
        return self.random_cost / self.sorted_cost

    @property
    def h(self) -> int:
        """``h = floor(cR / cS)``, CA's random-access period (>= 1 only
        when ``cR >= cS``, which CA assumes)."""
        return max(1, math.floor(self.ratio))

    def cost(self, sorted_accesses: int, random_accesses: int) -> float:
        """Middleware cost ``s*cS + r*cR``."""
        return (
            sorted_accesses * self.sorted_cost
            + random_accesses * self.random_cost
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostModel(cS={self.sorted_cost}, cR={self.random_cost})"


#: The unit cost model ``cS = cR = 1`` used as the default everywhere.
UNIT_COSTS = CostModel(1.0, 1.0)


@dataclass
class QueryBudget:
    """Per-query resource envelope: a wall-clock deadline and/or a
    middleware-cost ceiling.

    Either limit may be ``None`` (unbounded).  The engines poll
    :meth:`expired` at round (scalar loops) or chunk (columnar loops)
    boundaries -- points where the bookkeeping is fully consistent --
    and on expiry halt with ``HaltReason.DEADLINE``, returning the
    current top-``k`` together with the certified approximation factor
    θ the live W/B bounds support, instead of raising.

    The clock is injectable so deadline behaviour is testable without
    real sleeping; it defaults to :func:`time.monotonic`.

    Parameters
    ----------
    deadline_s:
        Wall-clock seconds from :meth:`start` until expiry, or ``None``.
    max_cost:
        Middleware-cost ceiling (``s*cS + r*cR``), or ``None``.  The
        budget expires once the accrued cost *reaches* the ceiling,
        so ``max_cost=0`` expires immediately.
    clock:
        Zero-argument callable returning monotonic seconds.
    """

    deadline_s: float | None = None
    max_cost: float | None = None
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)
    _t0: float | None = field(default=None, init=False, repr=False)

    def __post_init__(self):
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValueError(
                f"deadline_s must be >= 0, got {self.deadline_s}"
            )
        if self.max_cost is not None and self.max_cost < 0:
            raise ValueError(f"max_cost must be >= 0, got {self.max_cost}")

    def start(self) -> QueryBudget:
        """Arm the wall clock (idempotent; first call wins) and return
        ``self`` for chaining."""
        if self._t0 is None:
            self._t0 = self.clock()
        return self

    @property
    def started(self) -> bool:
        return self._t0 is not None

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 if never started)."""
        if self._t0 is None:
            return 0.0
        return self.clock() - self._t0

    def remaining(self) -> float:
        """Wall-clock seconds left (``inf`` when no deadline is set;
        never negative)."""
        if self.deadline_s is None:
            return math.inf
        return max(0.0, self.deadline_s - self.elapsed())

    def expired(self, cost: float = 0.0) -> bool:
        """True once either limit is hit.

        ``cost`` is the middleware cost accrued so far; pass
        ``session.middleware_cost``.
        """
        if self.max_cost is not None and cost >= self.max_cost:
            return True
        if self.deadline_s is not None:
            self.start()
            return self.elapsed() >= self.deadline_s
        return False
