"""The middleware's view of a database: ``m`` sorted lists over ``N``
objects.

Following Section 1 of the paper, a database is a finite set of objects,
each with ``m`` grades in ``[0, 1]``; list ``i`` contains one entry
``(R, x_i)`` per object, sorted by grade in descending order.  This module
stores that view directly:

* a grade table (object -> tuple of ``m`` grades) giving O(1) random
  access, and
* ``m`` explicit orderings giving O(1) sorted access by position.

Tie order inside a list is semantically *arbitrary* (the paper breaks ties
arbitrarily) but operationally significant: several counterexamples in the
paper place a specific object below its grade-mates.  Construction via
:meth:`Database.from_columns` therefore preserves the caller's exact order,
while :meth:`Database.from_rows` produces a deterministic order (grade
descending, insertion order among ties).

The database itself performs no accounting; all algorithmic access is
mediated (and charged) by :class:`repro.middleware.access.AccessSession`.

Two interchangeable backends implement the view:

* :class:`Database` -- the scalar reference backend: a dict grade table
  plus per-list orderings as Python lists.  Simple, order-preserving,
  and the semantic baseline everything else is verified against.
* :class:`ColumnarDatabase` -- the array backend: one contiguous
  ``(N, m)`` float64 grade matrix, precomputed stable argsort orderings
  (as row-index arrays with the grades along each list materialised),
  and an object-id <-> row-index interning table.  It exposes the exact
  same API and tie semantics, answers the same queries bit-for-bit, and
  additionally powers the batched access plane of
  :class:`~repro.middleware.access.AccessSession` (array slices per
  sorted batch, fancy-indexed gathers per random batch).

``Database.to_columnar()`` converts any database -- including
tie-order-sensitive adversarial constructions -- without changing any
observable ordering.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Hashable

import numpy as np

from .errors import DatabaseError, UnknownListError, UnknownObjectError

__all__ = ["Database", "ColumnarDatabase"]

ObjectId = Hashable


class Database:
    """Immutable ``m``-list graded database.

    Use one of the classmethod constructors:

    * :meth:`from_rows` -- ``{object_id: (x1, ..., xm)}``;
    * :meth:`from_columns` -- explicit per-list orderings (for adversarial
      constructions where tie order matters);
    * :meth:`from_array` -- an ``(N, m)`` numpy array of grades.
    """

    def __init__(
        self,
        grades: dict[ObjectId, tuple[float, ...]],
        orderings: list[list[ObjectId]],
        validate: bool = True,
    ):
        self._grades = grades
        self._orderings = orderings
        self._m = len(orderings)
        self._position0: dict[ObjectId, int] | None = None
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Mapping[ObjectId, Sequence[float]],
        validate: bool = True,
    ) -> "Database":
        """Build from ``{object_id: grade_vector}``.

        Each list is ordered by grade descending; ties keep the mapping's
        insertion order (stable sort), making construction deterministic.
        """
        if not rows:
            raise DatabaseError("database must contain at least one object")
        arities = {len(v) for v in rows.values()}
        if len(arities) != 1:
            raise DatabaseError(
                f"all objects must have the same number of grades; got {arities}"
            )
        m = arities.pop()
        if m < 1:
            raise DatabaseError("objects must have at least one grade")
        grades = {obj: tuple(float(g) for g in vec) for obj, vec in rows.items()}
        objects = list(grades)
        orderings = [
            sorted(objects, key=lambda obj: -grades[obj][i]) for i in range(m)
        ]
        return cls(grades, orderings, validate=validate)

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[Sequence[tuple[ObjectId, float]]],
        validate: bool = True,
    ) -> "Database":
        """Build from explicit per-list ``[(object_id, grade), ...]`` in the
        exact sorted order to expose, preserving tie placement.

        Raises :class:`DatabaseError` if any column is not non-increasing
        in grade or the columns disagree on the object set.
        """
        if not columns:
            raise DatabaseError("database must contain at least one list")
        grades: dict[ObjectId, list[float | None]] = {}
        m = len(columns)
        orderings: list[list[ObjectId]] = []
        for i, column in enumerate(columns):
            ordering = []
            previous = None
            for obj, grade in column:
                grade = float(grade)
                if previous is not None and grade > previous + 1e-15:
                    raise DatabaseError(
                        f"list {i} is not sorted descending at object {obj!r}"
                    )
                previous = grade
                vec = grades.setdefault(obj, [None] * m)
                if vec[i] is not None:
                    raise DatabaseError(
                        f"object {obj!r} appears twice in list {i}"
                    )
                vec[i] = grade
                ordering.append(obj)
            orderings.append(ordering)
        missing = {
            obj: [i for i, g in enumerate(vec) if g is None]
            for obj, vec in grades.items()
            if any(g is None for g in vec)
        }
        if missing:
            raise DatabaseError(
                f"objects missing from some lists: {dict(list(missing.items())[:5])}"
            )
        final = {obj: tuple(vec) for obj, vec in grades.items()}
        return cls(final, orderings, validate=validate)

    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        object_ids: Sequence[ObjectId] | None = None,
        validate: bool = True,
    ) -> "Database":
        """Build from an ``(N, m)`` array of grades.

        ``object_ids`` defaults to ``0 .. N-1``.  Ordering inside each list
        is grade descending with ties broken by object index (via a stable
        argsort), which is deterministic.
        """
        array = np.asarray(array, dtype=float)
        if array.ndim != 2:
            raise DatabaseError(
                f"expected a 2-D (N, m) array, got shape {array.shape}"
            )
        n, m = array.shape
        if n < 1 or m < 1:
            raise DatabaseError(f"array must be non-empty, got shape {array.shape}")
        if object_ids is None:
            object_ids = range(n)
        ids = list(object_ids)
        if len(ids) != n:
            raise DatabaseError(
                f"got {len(ids)} object ids for {n} rows"
            )
        grades = {obj: tuple(array[row].tolist()) for row, obj in enumerate(ids)}
        orderings = []
        for i in range(m):
            order = np.argsort(-array[:, i], kind="stable")
            orderings.append([ids[row] for row in order.tolist()])
        return cls(grades, orderings, validate=validate)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self._grades:
            raise DatabaseError("database must contain at least one object")
        if self._m < 1:
            raise DatabaseError("database must contain at least one list")
        n = len(self._grades)
        for obj, vec in self._grades.items():
            if len(vec) != self._m:
                raise DatabaseError(
                    f"object {obj!r} has {len(vec)} grades, expected {self._m}"
                )
            for i, g in enumerate(vec):
                if not (0.0 <= g <= 1.0) or g != g:  # NaN check via g != g
                    raise DatabaseError(
                        f"grade of object {obj!r} in list {i} is {g}, "
                        "outside [0, 1]"
                    )
        for i, ordering in enumerate(self._orderings):
            if len(ordering) != n:
                raise DatabaseError(
                    f"list {i} has {len(ordering)} entries for {n} objects"
                )
            if len(set(ordering)) != n:
                raise DatabaseError(f"list {i} contains duplicate objects")
            previous = None
            for obj in ordering:
                g = self._grades[obj][i]
                if previous is not None and g > previous + 1e-15:
                    raise DatabaseError(f"list {i} is not sorted descending")
                previous = g

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        """``N``, the number of objects."""
        return len(self._grades)

    @property
    def num_lists(self) -> int:
        """``m``, the number of sorted lists (= arity of the query)."""
        return self._m

    @property
    def objects(self) -> Iterable[ObjectId]:
        """All object ids (iteration order unspecified)."""
        return self._grades.keys()

    def __contains__(self, obj: ObjectId) -> bool:
        return obj in self._grades

    def __len__(self) -> int:
        return len(self._grades)

    # ------------------------------------------------------------------
    # raw (un-accounted) access; algorithms must go through AccessSession
    # ------------------------------------------------------------------
    def sorted_entry(self, list_index: int, position: int):
        """Entry ``(object, grade)`` at 0-based ``position`` of list
        ``list_index``, or ``None`` past the end."""
        self._check_list(list_index)
        ordering = self._orderings[list_index]
        if position < 0:
            raise IndexError(f"negative position {position}")
        if position >= len(ordering):
            return None
        obj = ordering[position]
        return obj, self._grades[obj][list_index]

    def grade(self, obj: ObjectId, list_index: int) -> float:
        """Grade of ``obj`` in list ``list_index`` (a random-access probe)."""
        self._check_list(list_index)
        vec = self._grades.get(obj)
        if vec is None:
            raise UnknownObjectError(obj)
        return vec[list_index]

    def grade_vector(self, obj: ObjectId) -> tuple[float, ...]:
        """All ``m`` grades of ``obj``."""
        vec = self._grades.get(obj)
        if vec is None:
            raise UnknownObjectError(obj)
        return vec

    def _check_list(self, list_index: int) -> None:
        if not (0 <= list_index < self._m):
            raise UnknownListError(list_index, self._m)

    # ------------------------------------------------------------------
    # ground truth and structural predicates (used by verification,
    # generators and the certificate searcher; never by the algorithms)
    # ------------------------------------------------------------------
    def overall_grades(self, t) -> dict[ObjectId, float]:
        """``{object: t(grades)}`` for every object -- the naive ground
        truth."""
        t.check_arity(self._m)
        return {obj: t.aggregate(vec) for obj, vec in self._grades.items()}

    def top_k(self, t, k: int) -> list[tuple[ObjectId, float]]:
        """The true top-``k`` as ``[(object, overall grade)]``, grade
        descending, ties broken deterministically by list-0 position."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        overall = self.overall_grades(t)
        if self._position0 is None:
            # the database is immutable, so the tie-break positions are
            # computed once and reused by every verification call
            self._position0 = {
                obj: pos for pos, obj in enumerate(self._orderings[0])
            }
        position = self._position0
        ranked = sorted(
            overall.items(), key=lambda item: (-item[1], position[item[0]])
        )
        return ranked[:k]

    def kth_grade(self, t, k: int) -> float:
        """The overall grade of the ``k``-th best object."""
        ranked = self.top_k(t, min(k, self.num_objects))
        return ranked[-1][1]

    def satisfies_distinctness(self) -> bool:
        """True iff no two objects share a grade in any list (the
        *distinctness property* of Section 6)."""
        for i in range(self._m):
            seen = set()
            for obj in self._orderings[i]:
                g = self._grades[obj][i]
                if g in seen:
                    return False
                seen.add(g)
        return True

    def to_array(self, object_ids: Sequence[ObjectId] | None = None):
        """Dense ``(N, m)`` grade matrix (row order = ``object_ids`` or
        arbitrary-but-fixed)."""
        ids = list(object_ids) if object_ids is not None else list(self._grades)
        out = np.empty((len(ids), self._m), dtype=float)
        for row, obj in enumerate(ids):
            out[row] = self.grade_vector(obj)
        return ids, out

    def to_columnar(self) -> "ColumnarDatabase":
        """An equivalent :class:`ColumnarDatabase`, preserving the exact
        per-list tie order of this database."""
        ids, matrix = self.to_array()
        row_of = {obj: row for row, obj in enumerate(ids)}
        order_rows = [
            np.fromiter(
                (row_of[obj] for obj in ordering), dtype=np.intp, count=len(ids)
            )
            for ordering in self._orderings
        ]
        return ColumnarDatabase(matrix, ids, order_rows, validate=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Database N={self.num_objects} m={self.num_lists}>"


class ColumnarDatabase(Database):
    """Array-backed database: same API and semantics as :class:`Database`,
    stored as a contiguous grade matrix with precomputed orderings.

    Internals (all private, consumed by the batched access plane):

    * ``_matrix`` -- C-contiguous ``(N, m)`` float64 grade matrix;
    * ``_ids`` / ``_row_of`` -- row-index <-> object-id interning;
    * ``_order_rows[i]`` -- row indices of list ``i`` in sorted order;
    * ``_order_grades[i]`` -- grades of list ``i`` in sorted order
      (materialised so a sorted batch is a pure slice, no gather).

    When the object ids are exactly ``0 .. N-1`` (the default of
    :meth:`from_array`), id <-> row translation is the identity and is
    skipped entirely.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        ids: Sequence[ObjectId],
        order_rows: Sequence[np.ndarray],
        validate: bool = True,
    ):
        # always copy: the database is immutable by contract, and sharing
        # memory with the caller's array would let later mutations of it
        # silently desynchronise the materialised orderings (the scalar
        # backend copies into its dicts and is immune)
        matrix = np.array(matrix, dtype=np.float64, order="C")
        if matrix.ndim != 2:
            raise DatabaseError(
                f"expected a 2-D (N, m) array, got shape {matrix.shape}"
            )
        self._matrix = matrix
        self._ids = list(ids)
        self._m = matrix.shape[1]
        self._row_of = {obj: row for row, obj in enumerate(self._ids)}
        self._order_rows = [
            np.array(rows, dtype=np.intp) for rows in order_rows
        ]
        self._order_grades = [
            matrix[rows, i] for i, rows in enumerate(self._order_rows)
        ]
        # identity shortcut only for genuine int ids 0..N-1: a value
        # check alone would let float (or bool) ids equal to their row
        # index through, and ids_for_rows would then hand back ints of
        # a different type than the scalar backend's objects
        self._trivial_ids = all(
            type(obj) is int and obj == row
            for row, obj in enumerate(self._ids)
        )
        self._position0_rows: np.ndarray | None = None
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # constructors (mirroring Database's, with identical tie semantics)
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Mapping[ObjectId, Sequence[float]],
        validate: bool = True,
    ) -> "ColumnarDatabase":
        """Build from ``{object_id: grade_vector}``; ties keep insertion
        order (stable argsort), exactly like :meth:`Database.from_rows`."""
        if not rows:
            raise DatabaseError("database must contain at least one object")
        arities = {len(v) for v in rows.values()}
        if len(arities) != 1:
            raise DatabaseError(
                f"all objects must have the same number of grades; got {arities}"
            )
        m = arities.pop()
        if m < 1:
            raise DatabaseError("objects must have at least one grade")
        ids = list(rows)
        matrix = np.array([list(rows[obj]) for obj in ids], dtype=np.float64)
        order_rows = [
            np.argsort(-matrix[:, i], kind="stable") for i in range(m)
        ]
        return cls(matrix, ids, order_rows, validate=validate)

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[Sequence[tuple[ObjectId, float]]],
        validate: bool = True,
    ) -> "ColumnarDatabase":
        """Build from explicit per-list orderings, preserving tie
        placement; same checks and messages as
        :meth:`Database.from_columns`."""
        scalar = Database.from_columns(columns, validate=False)
        columnar = scalar.to_columnar()
        if validate:
            columnar._validate()
        return columnar

    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        object_ids: Sequence[ObjectId] | None = None,
        validate: bool = True,
    ) -> "ColumnarDatabase":
        """Build from an ``(N, m)`` grade array; deterministic stable
        ordering, identical to :meth:`Database.from_array`."""
        array = np.asarray(array, dtype=float)
        if array.ndim != 2:
            raise DatabaseError(
                f"expected a 2-D (N, m) array, got shape {array.shape}"
            )
        n, m = array.shape
        if n < 1 or m < 1:
            raise DatabaseError(f"array must be non-empty, got shape {array.shape}")
        if object_ids is None:
            object_ids = range(n)
        ids = list(object_ids)
        if len(ids) != n:
            raise DatabaseError(
                f"got {len(ids)} object ids for {n} rows"
            )
        if len(set(ids)) != n:
            raise DatabaseError("object ids must be distinct")
        order_rows = [
            np.argsort(-array[:, i], kind="stable") for i in range(m)
        ]
        return cls(array, ids, order_rows, validate=validate)

    @classmethod
    def from_database(cls, db: Database) -> "ColumnarDatabase":
        """Convert any database (scalar or columnar) to columnar form."""
        if isinstance(db, ColumnarDatabase):
            return db
        return db.to_columnar()

    def to_columnar(self) -> "ColumnarDatabase":
        return self

    # ------------------------------------------------------------------
    # scalar-backend compatibility (lazy; only built if legacy internals
    # are reached, e.g. by code written against the dict representation)
    # ------------------------------------------------------------------
    @property
    def _grades(self) -> dict[ObjectId, tuple[float, ...]]:
        grades = self.__dict__.get("_grades_cache")
        if grades is None:
            rows = self._matrix.tolist()
            grades = {obj: tuple(rows[r]) for r, obj in enumerate(self._ids)}
            self.__dict__["_grades_cache"] = grades
        return grades

    @property
    def _orderings(self) -> list[list[ObjectId]]:
        orderings = self.__dict__.get("_orderings_cache")
        if orderings is None:
            ids = self._ids
            orderings = [
                [ids[r] for r in rows.tolist()] for rows in self._order_rows
            ]
            self.__dict__["_orderings_cache"] = orderings
        return orderings

    # ------------------------------------------------------------------
    # vectorized validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        matrix = self._matrix
        n, m = matrix.shape
        if n < 1:
            raise DatabaseError("database must contain at least one object")
        if m < 1:
            raise DatabaseError("database must contain at least one list")
        if len(self._ids) != n:
            raise DatabaseError(f"got {len(self._ids)} object ids for {n} rows")
        if len(self._row_of) != n:
            raise DatabaseError("object ids must be distinct")
        bad = ~((matrix >= 0.0) & (matrix <= 1.0))  # catches NaN too
        if bad.any():
            row, i = map(int, np.argwhere(bad)[0])
            raise DatabaseError(
                f"grade of object {self._ids[row]!r} in list {i} is "
                f"{matrix[row, i]}, outside [0, 1]"
            )
        for i, rows in enumerate(self._order_rows):
            if rows.shape != (n,):
                raise DatabaseError(
                    f"list {i} has {rows.shape[0]} entries for {n} objects"
                )
            if rows.size and (rows.min() < 0 or rows.max() >= n):
                raise DatabaseError(f"list {i} references unknown rows")
            if not (np.bincount(rows, minlength=n) == 1).all():
                raise DatabaseError(f"list {i} contains duplicate objects")
            g = self._order_grades[i]
            if (g[1:] > g[:-1] + 1e-15).any():
                raise DatabaseError(f"list {i} is not sorted descending")

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return len(self._ids)

    @property
    def objects(self) -> Iterable[ObjectId]:
        return iter(self._ids)

    def __contains__(self, obj: ObjectId) -> bool:
        return obj in self._row_of

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    # raw access
    # ------------------------------------------------------------------
    def sorted_entry(self, list_index: int, position: int):
        self._check_list(list_index)
        if position < 0:
            raise IndexError(f"negative position {position}")
        if position >= len(self._ids):
            return None
        row = self._order_rows[list_index][position]
        return self._ids[row], float(self._order_grades[list_index][position])

    def grade(self, obj: ObjectId, list_index: int) -> float:
        self._check_list(list_index)
        row = self._row_of.get(obj)
        if row is None:
            raise UnknownObjectError(obj)
        return float(self._matrix[row, list_index])

    def grade_vector(self, obj: ObjectId) -> tuple[float, ...]:
        row = self._row_of.get(obj)
        if row is None:
            raise UnknownObjectError(obj)
        return tuple(self._matrix[row].tolist())

    # ------------------------------------------------------------------
    # row <-> id translation (used by the batched access plane)
    # ------------------------------------------------------------------
    def rows_for(self, objects: Sequence[ObjectId]) -> np.ndarray:
        """Row indices of ``objects`` (raises
        :class:`~repro.middleware.errors.UnknownObjectError` on the first
        unknown id)."""
        if self._trivial_ids:
            arr = np.asarray(objects)
            # only genuine integer ids may take the identity shortcut; a
            # float or object array must go through the interning table so
            # unknown ids raise instead of truncating to a valid row
            if arr.ndim == 1 and arr.dtype.kind in "iu":
                rows = arr.astype(np.intp, copy=False)
                if rows.size and (
                    rows.min() < 0 or rows.max() >= len(self._ids)
                ):
                    bad = next(
                        o
                        for o in objects
                        if not 0 <= int(o) < len(self._ids)
                    )
                    raise UnknownObjectError(bad)
                return rows
        row_of = self._row_of
        out = np.empty(len(objects), dtype=np.intp)
        for pos, obj in enumerate(objects):
            row = row_of.get(obj)
            if row is None:
                raise UnknownObjectError(obj)
            out[pos] = row
        return out

    def ids_for_rows(self, rows: np.ndarray) -> list:
        """Object ids for an array of row indices."""
        if self._trivial_ids:
            return rows.tolist()
        ids = self._ids
        return [ids[r] for r in rows.tolist()]

    # ------------------------------------------------------------------
    # vectorized ground truth
    # ------------------------------------------------------------------
    def overall_grades(self, t) -> dict[ObjectId, float]:
        t.check_arity(self._m)
        values = t.aggregate_batch(self._matrix)
        return dict(zip(self._ids, values.tolist()))

    def top_k(self, t, k: int) -> list[tuple[ObjectId, float]]:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        t.check_arity(self._m)
        overall = t.aggregate_batch(self._matrix)
        if self._position0_rows is None:
            pos0 = np.empty(len(self._ids), dtype=np.intp)
            pos0[self._order_rows[0]] = np.arange(len(self._ids))
            self._position0_rows = pos0
        # lexsort: last key is primary -> grade descending, then list-0
        # position ascending, matching the scalar tie-break exactly
        order = np.lexsort((self._position0_rows, -overall))
        ids = self._ids
        return [(ids[r], float(overall[r])) for r in order[:k].tolist()]

    def satisfies_distinctness(self) -> bool:
        for g in self._order_grades:
            if (g[1:] == g[:-1]).any():
                return False
        return True

    def to_array(self, object_ids: Sequence[ObjectId] | None = None):
        if object_ids is None:
            return list(self._ids), self._matrix.copy()
        ids = list(object_ids)
        rows = self.rows_for(ids)
        return ids, self._matrix[rows]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ColumnarDatabase N={self.num_objects} m={self.num_lists}>"
