"""The middleware's view of a database: ``m`` sorted lists over ``N``
objects.

Following Section 1 of the paper, a database is a finite set of objects,
each with ``m`` grades in ``[0, 1]``; list ``i`` contains one entry
``(R, x_i)`` per object, sorted by grade in descending order.  This module
stores that view directly:

* a grade table (object -> tuple of ``m`` grades) giving O(1) random
  access, and
* ``m`` explicit orderings giving O(1) sorted access by position.

Tie order inside a list is semantically *arbitrary* (the paper breaks ties
arbitrarily) but operationally significant: several counterexamples in the
paper place a specific object below its grade-mates.  Construction via
:meth:`Database.from_columns` therefore preserves the caller's exact order,
while :meth:`Database.from_rows` produces a deterministic order (grade
descending, insertion order among ties).

The database itself performs no accounting; all algorithmic access is
mediated (and charged) by :class:`repro.middleware.access.AccessSession`.

Two interchangeable backends implement the view:

* :class:`Database` -- the scalar reference backend: a dict grade table
  plus per-list orderings as Python lists.  Simple, order-preserving,
  and the semantic baseline everything else is verified against.
* :class:`ColumnarDatabase` -- the array backend: one contiguous
  ``(N, m)`` float64 grade matrix, precomputed stable argsort orderings
  (as row-index arrays with the grades along each list materialised),
  and an object-id <-> row-index interning table.  It exposes the exact
  same API and tie semantics, answers the same queries bit-for-bit, and
  additionally powers the batched access plane of
  :class:`~repro.middleware.access.AccessSession` (array slices per
  sorted batch, fancy-indexed gathers per random batch).

``Database.to_columnar()`` converts any database -- including
tie-order-sensitive adversarial constructions -- without changing any
observable ordering.
"""

from __future__ import annotations

import heapq
import operator
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Hashable

import numpy as np

from .errors import DatabaseError, UnknownListError, UnknownObjectError

__all__ = [
    "Database",
    "ColumnarDatabase",
    "ShardedDatabase",
    "ListMergeCursor",
    "shard_bounds_for",
]

ObjectId = Hashable


def _coerce_array_and_ids(
    array: np.ndarray, object_ids: Sequence[ObjectId] | None
) -> tuple[np.ndarray, list]:
    """Shared constructor-argument checks of the array backends: a
    non-empty 2-D float grade matrix plus one distinct id per row
    (defaulting to ``0 .. N-1``)."""
    array = np.asarray(array, dtype=float)
    if array.ndim != 2:
        raise DatabaseError(
            f"expected a 2-D (N, m) array, got shape {array.shape}"
        )
    n, m = array.shape
    if n < 1 or m < 1:
        raise DatabaseError(f"array must be non-empty, got shape {array.shape}")
    if object_ids is None:
        object_ids = range(n)
    ids = list(object_ids)
    if len(ids) != n:
        raise DatabaseError(f"got {len(ids)} object ids for {n} rows")
    if len(set(ids)) != n:
        raise DatabaseError("object ids must be distinct")
    return array, ids


class Database:
    """Immutable ``m``-list graded database.

    Use one of the classmethod constructors:

    * :meth:`from_rows` -- ``{object_id: (x1, ..., xm)}``;
    * :meth:`from_columns` -- explicit per-list orderings (for adversarial
      constructions where tie order matters);
    * :meth:`from_array` -- an ``(N, m)`` numpy array of grades.
    """

    def __init__(
        self,
        grades: dict[ObjectId, tuple[float, ...]],
        orderings: list[list[ObjectId]],
        validate: bool = True,
    ):
        self._grades = grades
        self._orderings = orderings
        self._m = len(orderings)
        self._position0: dict[ObjectId, int] | None = None
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Mapping[ObjectId, Sequence[float]],
        validate: bool = True,
    ) -> "Database":
        """Build from ``{object_id: grade_vector}``.

        Each list is ordered by grade descending; ties keep the mapping's
        insertion order (stable sort), making construction deterministic.
        """
        if not rows:
            raise DatabaseError("database must contain at least one object")
        arities = {len(v) for v in rows.values()}
        if len(arities) != 1:
            raise DatabaseError(
                f"all objects must have the same number of grades; got {arities}"
            )
        m = arities.pop()
        if m < 1:
            raise DatabaseError("objects must have at least one grade")
        grades = {obj: tuple(float(g) for g in vec) for obj, vec in rows.items()}
        objects = list(grades)
        orderings = [
            sorted(objects, key=lambda obj: -grades[obj][i]) for i in range(m)
        ]
        return cls(grades, orderings, validate=validate)

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[Sequence[tuple[ObjectId, float]]],
        validate: bool = True,
    ) -> "Database":
        """Build from explicit per-list ``[(object_id, grade), ...]`` in the
        exact sorted order to expose, preserving tie placement.

        Raises :class:`DatabaseError` if any column is not non-increasing
        in grade or the columns disagree on the object set.
        """
        if not columns:
            raise DatabaseError("database must contain at least one list")
        grades: dict[ObjectId, list[float | None]] = {}
        m = len(columns)
        orderings: list[list[ObjectId]] = []
        for i, column in enumerate(columns):
            ordering: list[ObjectId] = []
            previous = None
            for obj, grade in column:
                grade = float(grade)
                if previous is not None and grade > previous + 1e-15:
                    raise DatabaseError(
                        f"list {i} is not sorted descending at object {obj!r}"
                    )
                previous = grade
                vec = grades.setdefault(obj, [None] * m)
                if vec[i] is not None:
                    raise DatabaseError(
                        f"object {obj!r} appears twice in list {i}"
                    )
                vec[i] = grade
                ordering.append(obj)
            orderings.append(ordering)
        missing = {
            obj: [i for i, g in enumerate(vec) if g is None]
            for obj, vec in grades.items()
            if any(g is None for g in vec)
        }
        if missing:
            raise DatabaseError(
                f"objects missing from some lists: {dict(list(missing.items())[:5])}"
            )
        final = {obj: tuple(vec) for obj, vec in grades.items()}
        return cls(final, orderings, validate=validate)

    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        object_ids: Sequence[ObjectId] | None = None,
        validate: bool = True,
    ) -> "Database":
        """Build from an ``(N, m)`` array of grades.

        ``object_ids`` defaults to ``0 .. N-1``.  Ordering inside each list
        is grade descending with ties broken by object index (via a stable
        argsort), which is deterministic.
        """
        array = np.asarray(array, dtype=float)
        if array.ndim != 2:
            raise DatabaseError(
                f"expected a 2-D (N, m) array, got shape {array.shape}"
            )
        n, m = array.shape
        if n < 1 or m < 1:
            raise DatabaseError(f"array must be non-empty, got shape {array.shape}")
        if object_ids is None:
            object_ids = range(n)
        ids = list(object_ids)
        if len(ids) != n:
            raise DatabaseError(
                f"got {len(ids)} object ids for {n} rows"
            )
        grades = {obj: tuple(array[row].tolist()) for row, obj in enumerate(ids)}
        orderings: list[list[ObjectId]] = []
        for i in range(m):
            order = np.argsort(-array[:, i], kind="stable")
            orderings.append([ids[row] for row in order.tolist()])
        return cls(grades, orderings, validate=validate)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self._grades:
            raise DatabaseError("database must contain at least one object")
        if self._m < 1:
            raise DatabaseError("database must contain at least one list")
        n = len(self._grades)
        for obj, vec in self._grades.items():
            if len(vec) != self._m:
                raise DatabaseError(
                    f"object {obj!r} has {len(vec)} grades, expected {self._m}"
                )
            for i, g in enumerate(vec):
                if not (0.0 <= g <= 1.0) or g != g:  # NaN check via g != g
                    raise DatabaseError(
                        f"grade of object {obj!r} in list {i} is {g}, "
                        "outside [0, 1]"
                    )
        for i, ordering in enumerate(self._orderings):
            if len(ordering) != n:
                raise DatabaseError(
                    f"list {i} has {len(ordering)} entries for {n} objects"
                )
            if len(set(ordering)) != n:
                raise DatabaseError(f"list {i} contains duplicate objects")
            previous = None
            for obj in ordering:
                g = self._grades[obj][i]
                if previous is not None and g > previous + 1e-15:
                    raise DatabaseError(f"list {i} is not sorted descending")
                previous = g

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        """``N``, the number of objects."""
        return len(self._grades)

    @property
    def num_lists(self) -> int:
        """``m``, the number of sorted lists (= arity of the query)."""
        return self._m

    @property
    def objects(self) -> Iterable[ObjectId]:
        """All object ids (iteration order unspecified)."""
        return self._grades.keys()

    def __contains__(self, obj: ObjectId) -> bool:
        return obj in self._grades

    def __len__(self) -> int:
        return len(self._grades)

    # ------------------------------------------------------------------
    # raw (un-accounted) access; algorithms must go through AccessSession
    # ------------------------------------------------------------------
    def sorted_entry(self, list_index: int, position: int):
        """Entry ``(object, grade)`` at 0-based ``position`` of list
        ``list_index``, or ``None`` past the end."""
        self._check_list(list_index)
        ordering = self._orderings[list_index]
        if position < 0:
            raise IndexError(f"negative position {position}")
        if position >= len(ordering):
            return None
        obj = ordering[position]
        return obj, self._grades[obj][list_index]

    def grade(self, obj: ObjectId, list_index: int) -> float:
        """Grade of ``obj`` in list ``list_index`` (a random-access probe)."""
        self._check_list(list_index)
        vec = self._grades.get(obj)
        if vec is None:
            raise UnknownObjectError(obj)
        return vec[list_index]

    def grade_vector(self, obj: ObjectId) -> tuple[float, ...]:
        """All ``m`` grades of ``obj``."""
        vec = self._grades.get(obj)
        if vec is None:
            raise UnknownObjectError(obj)
        return vec

    def _check_list(self, list_index: int) -> None:
        if not (0 <= list_index < self._m):
            raise UnknownListError(list_index, self._m)

    # ------------------------------------------------------------------
    # ground truth and structural predicates (used by verification,
    # generators and the certificate searcher; never by the algorithms)
    # ------------------------------------------------------------------
    def overall_grades(self, t) -> dict[ObjectId, float]:
        """``{object: t(grades)}`` for every object -- the naive ground
        truth."""
        t.check_arity(self._m)
        return {obj: t.aggregate(vec) for obj, vec in self._grades.items()}

    def top_k(self, t, k: int) -> list[tuple[ObjectId, float]]:
        """The true top-``k`` as ``[(object, overall grade)]``, grade
        descending, ties broken deterministically by list-0 position."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        overall = self.overall_grades(t)
        if self._position0 is None:
            # the database is immutable, so the tie-break positions are
            # computed once and reused by every verification call
            self._position0 = {
                obj: pos for pos, obj in enumerate(self._orderings[0])
            }
        position = self._position0
        ranked = sorted(
            overall.items(), key=lambda item: (-item[1], position[item[0]])
        )
        return ranked[:k]

    def kth_grade(self, t, k: int) -> float:
        """The overall grade of the ``k``-th best object."""
        ranked = self.top_k(t, min(k, self.num_objects))
        return ranked[-1][1]

    def satisfies_distinctness(self) -> bool:
        """True iff no two objects share a grade in any list (the
        *distinctness property* of Section 6)."""
        for i in range(self._m):
            seen: set[float] = set()
            for obj in self._orderings[i]:
                g = self._grades[obj][i]
                if g in seen:
                    return False
                seen.add(g)
        return True

    def to_array(self, object_ids: Sequence[ObjectId] | None = None):
        """Dense ``(N, m)`` grade matrix (row order = ``object_ids`` or
        arbitrary-but-fixed)."""
        ids = list(object_ids) if object_ids is not None else list(self._grades)
        out = np.empty((len(ids), self._m), dtype=float)
        for row, obj in enumerate(ids):
            out[row] = self.grade_vector(obj)
        return ids, out

    def to_columnar(self) -> "ColumnarDatabase":
        """An equivalent :class:`ColumnarDatabase`, preserving the exact
        per-list tie order of this database."""
        ids, matrix = self.to_array()
        row_of = {obj: row for row, obj in enumerate(ids)}
        order_rows = [
            np.fromiter(
                (row_of[obj] for obj in ordering), dtype=np.intp, count=len(ids)
            )
            for ordering in self._orderings
        ]
        return ColumnarDatabase(matrix, ids, order_rows, validate=False)

    def to_sharded(self, num_shards: int = 1) -> "ShardedDatabase":
        """An equivalent :class:`ShardedDatabase` over ``num_shards``
        contiguous row-range shards, preserving the exact per-list tie
        order of this database."""
        return ShardedDatabase.from_database(self, num_shards=num_shards)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Database N={self.num_objects} m={self.num_lists}>"


class ColumnarDatabase(Database):
    """Array-backed database: same API and semantics as :class:`Database`,
    stored as a contiguous grade matrix with precomputed orderings.

    Internals (all private, consumed by the batched access plane):

    * ``_matrix`` -- C-contiguous ``(N, m)`` float64 grade matrix;
    * ``_ids`` / ``_row_of`` -- row-index <-> object-id interning;
    * ``_order_rows[i]`` -- row indices of list ``i`` in sorted order;
    * ``_order_grades[i]`` -- grades of list ``i`` in sorted order
      (materialised so a sorted batch is a pure slice, no gather).

    When the object ids are exactly ``0 .. N-1`` (the default of
    :meth:`from_array`), id <-> row translation is the identity and is
    skipped entirely.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        ids: Sequence[ObjectId],
        order_rows: Sequence[np.ndarray],
        validate: bool = True,
    ):
        self._init_core(matrix, ids)
        self._order_rows = [
            np.array(rows, dtype=np.intp) for rows in order_rows
        ]
        self._order_grades = [
            self._matrix[rows, i] for i, rows in enumerate(self._order_rows)
        ]
        if validate:
            self._validate()

    def _init_core(
        self, matrix: np.ndarray, ids: Sequence[ObjectId]
    ) -> None:
        """The storage every array backend shares: the copied matrix,
        the id <-> row interning, and the trivial-ids shortcut."""
        # always copy: the database is immutable by contract, and sharing
        # memory with the caller's array would let later mutations of it
        # silently desynchronise the materialised orderings (the scalar
        # backend copies into its dicts and is immune)
        matrix = np.array(matrix, dtype=np.float64, order="C")
        if matrix.ndim != 2:
            raise DatabaseError(
                f"expected a 2-D (N, m) array, got shape {matrix.shape}"
            )
        self._matrix = matrix
        self._ids = list(ids)
        self._m = matrix.shape[1]
        self._row_of = {obj: row for row, obj in enumerate(self._ids)}
        # identity shortcut only for genuine int ids 0..N-1: a value
        # check alone would let float (or bool) ids equal to their row
        # index through, and ids_for_rows would then hand back ints of
        # a different type than the scalar backend's objects
        self._trivial_ids = all(
            type(obj) is int and obj == row
            for row, obj in enumerate(self._ids)
        )
        self._position0_rows: np.ndarray | None = None

    # ------------------------------------------------------------------
    # constructors (mirroring Database's, with identical tie semantics)
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Mapping[ObjectId, Sequence[float]],
        validate: bool = True,
    ) -> "ColumnarDatabase":
        """Build from ``{object_id: grade_vector}``; ties keep insertion
        order (stable argsort), exactly like :meth:`Database.from_rows`."""
        if not rows:
            raise DatabaseError("database must contain at least one object")
        arities = {len(v) for v in rows.values()}
        if len(arities) != 1:
            raise DatabaseError(
                f"all objects must have the same number of grades; got {arities}"
            )
        m = arities.pop()
        if m < 1:
            raise DatabaseError("objects must have at least one grade")
        ids = list(rows)
        matrix = np.array([list(rows[obj]) for obj in ids], dtype=np.float64)
        order_rows = [
            np.argsort(-matrix[:, i], kind="stable") for i in range(m)
        ]
        return cls(matrix, ids, order_rows, validate=validate)

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[Sequence[tuple[ObjectId, float]]],
        validate: bool = True,
    ) -> "ColumnarDatabase":
        """Build from explicit per-list orderings, preserving tie
        placement; same checks and messages as
        :meth:`Database.from_columns`."""
        scalar = Database.from_columns(columns, validate=False)
        columnar = scalar.to_columnar()
        if validate:
            columnar._validate()
        return columnar

    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        object_ids: Sequence[ObjectId] | None = None,
        validate: bool = True,
    ) -> "ColumnarDatabase":
        """Build from an ``(N, m)`` grade array; deterministic stable
        ordering, identical to :meth:`Database.from_array`."""
        array, ids = _coerce_array_and_ids(array, object_ids)
        order_rows = [
            np.argsort(-array[:, i], kind="stable")
            for i in range(array.shape[1])
        ]
        return cls(array, ids, order_rows, validate=validate)

    @classmethod
    def from_database(cls, db: Database) -> "ColumnarDatabase":
        """Convert any database (scalar or columnar) to columnar form."""
        if isinstance(db, ColumnarDatabase):
            return db
        return db.to_columnar()

    def to_columnar(self) -> "ColumnarDatabase":
        return self

    def _speculation_store(self) -> "ColumnarDatabase":
        """The columnar storage the access plane's *speculative* fast
        path reads through.  Read-only backends are their own store;
        mutable backends return a dense compacted snapshot so the
        engines' row-indexed scratch arrays (sized ``num_objects``)
        stay valid and in-flight runs are isolated from concurrent
        mutations."""
        return self

    # ------------------------------------------------------------------
    # scalar-backend compatibility (lazy; only built if legacy internals
    # are reached, e.g. by code written against the dict representation)
    # ------------------------------------------------------------------
    @property
    def _grades(self) -> dict[ObjectId, tuple[float, ...]]:
        grades = self.__dict__.get("_grades_cache")
        if grades is None:
            rows = self._matrix.tolist()
            grades = {obj: tuple(rows[r]) for r, obj in enumerate(self._ids)}
            self.__dict__["_grades_cache"] = grades
        return grades

    @property
    def _orderings(self) -> list[list[ObjectId]]:
        orderings = self.__dict__.get("_orderings_cache")
        if orderings is None:
            ids = self._ids
            orderings = [
                [ids[r] for r in rows.tolist()] for rows in self._order_rows
            ]
            self.__dict__["_orderings_cache"] = orderings
        return orderings

    # ------------------------------------------------------------------
    # vectorized validation
    # ------------------------------------------------------------------
    def _validate_core(self) -> None:
        """Shape, id-distinctness and grade-range checks shared by the
        array backends."""
        matrix = self._matrix
        n, m = matrix.shape
        if n < 1:
            raise DatabaseError("database must contain at least one object")
        if m < 1:
            raise DatabaseError("database must contain at least one list")
        if len(self._ids) != n:
            raise DatabaseError(f"got {len(self._ids)} object ids for {n} rows")
        if len(self._row_of) != n:
            raise DatabaseError("object ids must be distinct")
        bad = ~((matrix >= 0.0) & (matrix <= 1.0))  # catches NaN too
        if bad.any():
            row, i = map(int, np.argwhere(bad)[0])
            raise DatabaseError(
                f"grade of object {self._ids[row]!r} in list {i} is "
                f"{matrix[row, i]}, outside [0, 1]"
            )

    def _validate(self) -> None:
        self._validate_core()
        n = self._matrix.shape[0]
        for i, rows in enumerate(self._order_rows):
            if rows.shape != (n,):
                raise DatabaseError(
                    f"list {i} has {rows.shape[0]} entries for {n} objects"
                )
            if rows.size and (rows.min() < 0 or rows.max() >= n):
                raise DatabaseError(f"list {i} references unknown rows")
            if not (np.bincount(rows, minlength=n) == 1).all():
                raise DatabaseError(f"list {i} contains duplicate objects")
            g = self._order_grades[i]
            if (g[1:] > g[:-1] + 1e-15).any():
                raise DatabaseError(f"list {i} is not sorted descending")

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return len(self._ids)

    @property
    def objects(self) -> Iterable[ObjectId]:
        return iter(self._ids)

    def __contains__(self, obj: ObjectId) -> bool:
        return obj in self._row_of

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    # raw access
    # ------------------------------------------------------------------
    def sorted_entry(self, list_index: int, position: int):
        self._check_list(list_index)
        if position < 0:
            raise IndexError(f"negative position {position}")
        if position >= len(self._ids):
            return None
        row = self._order_rows[list_index][position]
        return self._ids[row], float(self._order_grades[list_index][position])

    def grade(self, obj: ObjectId, list_index: int) -> float:
        self._check_list(list_index)
        row = self._row_of.get(obj)
        if row is None:
            raise UnknownObjectError(obj)
        return float(self._matrix[row, list_index])

    def grade_vector(self, obj: ObjectId) -> tuple[float, ...]:
        row = self._row_of.get(obj)
        if row is None:
            raise UnknownObjectError(obj)
        return tuple(self._matrix[row].tolist())

    # ------------------------------------------------------------------
    # row <-> id translation (used by the batched access plane)
    # ------------------------------------------------------------------
    def rows_for(self, objects: Sequence[ObjectId]) -> np.ndarray:
        """Row indices of ``objects`` (raises
        :class:`~repro.middleware.errors.UnknownObjectError` on the first
        unknown id)."""
        if self._trivial_ids:
            arr = np.asarray(objects)
            # only genuine integer ids may take the identity shortcut; a
            # float or object array must go through the interning table so
            # unknown ids raise instead of truncating to a valid row
            if arr.ndim == 1 and arr.dtype.kind in "iu":
                rows = arr.astype(np.intp, copy=False)
                if rows.size and (
                    rows.min() < 0 or rows.max() >= len(self._ids)
                ):
                    bad = next(
                        o
                        for o in objects
                        if not 0 <= int(o) < len(self._ids)
                    )
                    raise UnknownObjectError(bad)
                return rows
        row_of = self._row_of
        out = np.empty(len(objects), dtype=np.intp)
        for pos, obj in enumerate(objects):
            row = row_of.get(obj)
            if row is None:
                raise UnknownObjectError(obj)
            out[pos] = row
        return out

    def ids_for_rows(self, rows: np.ndarray) -> list:
        """Object ids for an array of row indices."""
        if self._trivial_ids:
            return rows.tolist()
        ids = self._ids
        return [ids[r] for r in rows.tolist()]

    # ------------------------------------------------------------------
    # vectorized ground truth
    # ------------------------------------------------------------------
    def overall_grades(self, t) -> dict[ObjectId, float]:
        t.check_arity(self._m)
        values = t.aggregate_batch(self._matrix)
        return dict(zip(self._ids, values.tolist()))

    def top_k(self, t, k: int) -> list[tuple[ObjectId, float]]:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        t.check_arity(self._m)
        overall = t.aggregate_batch(self._matrix)
        if self._position0_rows is None:
            pos0 = np.empty(len(self._ids), dtype=np.intp)
            pos0[self._order_rows[0]] = np.arange(len(self._ids))
            self._position0_rows = pos0
        # lexsort: last key is primary -> grade descending, then list-0
        # position ascending, matching the scalar tie-break exactly
        order = np.lexsort((self._position0_rows, -overall))
        ids = self._ids
        return [(ids[r], float(overall[r])) for r in order[:k].tolist()]

    def satisfies_distinctness(self) -> bool:
        for g in self._order_grades:
            if (g[1:] == g[:-1]).any():
                return False
        return True

    def to_array(self, object_ids: Sequence[ObjectId] | None = None):
        if object_ids is None:
            return list(self._ids), self._matrix.copy()
        ids = list(object_ids)
        rows = self.rows_for(ids)
        return ids, self._matrix[rows]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ColumnarDatabase N={self.num_objects} m={self.num_lists}>"


# ----------------------------------------------------------------------
# sharded backend: contiguous row-range shards + per-list merge cursors
# ----------------------------------------------------------------------

def shard_bounds_for(num_objects: int, num_shards: int) -> np.ndarray:
    """Balanced contiguous row-range partition: shard ``s`` owns rows
    ``[bounds[s], bounds[s+1])``; shard sizes differ by at most one.
    Shards may be empty when ``num_shards > num_objects``."""
    if num_shards < 1:
        raise DatabaseError(f"need at least one shard, got {num_shards}")
    return np.array(
        [(s * num_objects) // num_shards for s in range(num_shards + 1)],
        dtype=np.intp,
    )


#: one shard's slice of one sorted list: ``(rows, grades, ties)`` arrays
#: sorted by the merge key (grade descending, tie key ascending)
_Run = tuple[np.ndarray, np.ndarray, np.ndarray]


class ListMergeCursor:
    """Streaming k-way merge over one list's shard-local sorted runs.

    Each run is a ``(rows, grades, ties)`` triple sorted by the merge key
    *(grade descending, tie key ascending)*; tie keys are unique integers
    that encode the reference global order (the row index for databases
    built by stable argsort, the global list position for databases that
    carry an explicit -- possibly adversarial -- tie placement).  Merging
    by that key therefore streams the exact global sorted order,
    bit-for-bit, including tie placement: ties between shards are decided
    by the key, never by arrival order.

    Two consumption modes share one cursor position:

    * :meth:`take` / iteration -- heap-based streaming, O(log S) per
      entry, for consumers that want a prefix (the paper's algorithms
      rarely need more than a shallow prefix of each list);
    * :meth:`drain` -- a vectorised merge of everything not yet taken
      (``np.lexsort`` over the concatenated remainders), used to
      materialise whole order arrays.

    Both modes produce identical output (asserted by the test suite).
    """

    __slots__ = ("_runs", "_pos", "_heap")

    def __init__(self, runs: Sequence[_Run]):
        self._runs = list(runs)
        self._pos = [0] * len(self._runs)
        heap: list[tuple[float, int, int]] = []
        for s, (_rows, grades, ties) in enumerate(self._runs):
            if len(grades):
                heap.append((-float(grades[0]), int(ties[0]), s))
        heapq.heapify(heap)
        self._heap = heap

    @property
    def exhausted(self) -> bool:
        return not self._heap

    def __iter__(self) -> Iterator[tuple[int, float]]:
        while self._heap:
            yield self.next_entry()

    def next_entry(self) -> tuple[int, float]:
        """The next ``(row, grade)`` in global sorted order."""
        if not self._heap:
            raise IndexError("merge cursor exhausted")
        _neg, _tie, s = self._heap[0]
        rows, grades, ties = self._runs[s]
        p = self._pos[s]
        entry = (int(rows[p]), float(grades[p]))
        p += 1
        self._pos[s] = p
        if p < len(grades):
            heapq.heapreplace(
                self._heap, (-float(grades[p]), int(ties[p]), s)
            )
        else:
            heapq.heappop(self._heap)
        return entry

    def take(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """The next ``n`` entries (fewer at exhaustion) as
        ``(rows, grades)`` arrays."""
        if n < 0:
            raise ValueError(f"take size must be >= 0, got {n}")
        remaining = sum(
            len(run[1]) - pos for run, pos in zip(self._runs, self._pos)
        )
        n = min(n, remaining)
        out_rows = np.empty(n, dtype=np.intp)
        out_grades = np.empty(n, dtype=np.float64)
        count = 0
        while count < n and self._heap:
            out_rows[count], out_grades[count] = self.next_entry()
            count += 1
        return out_rows[:count], out_grades[:count]

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        """All remaining entries, merged vectorised.

        ``np.lexsort`` with the tie keys as the secondary key is a
        stable merge of the (already sorted) remainders; the heap path
        and this path produce identical arrays.
        """
        rows_parts: list[np.ndarray] = []
        grade_parts: list[np.ndarray] = []
        tie_parts: list[np.ndarray] = []
        for s, (rows, grades, ties) in enumerate(self._runs):
            p = self._pos[s]
            if p < len(grades):
                rows_parts.append(rows[p:])
                grade_parts.append(grades[p:])
                tie_parts.append(ties[p:])
            self._pos[s] = len(grades)
        self._heap = []
        if not rows_parts:
            return (
                np.empty(0, dtype=np.intp),
                np.empty(0, dtype=np.float64),
            )
        rows_all = np.concatenate(rows_parts)
        grades_all = np.concatenate(grade_parts)
        ties_all = np.concatenate(tie_parts)
        order = np.lexsort((ties_all, -grades_all))
        return (
            rows_all[order].astype(np.intp, copy=False),
            grades_all[order],
        )


class _MergedOrders(Sequence):
    """Per-list view over a :class:`ShardedDatabase`'s lazily merged
    order arrays, shaped like the ``_order_rows`` / ``_order_grades``
    lists of :class:`ColumnarDatabase` so the batched access plane and
    the chunked engines run unmodified on the sharded backend."""

    __slots__ = ("_db", "_part")

    def __init__(self, db: "ShardedDatabase", part: int):
        self._db = db
        self._part = part

    def __len__(self) -> int:
        return self._db.num_lists

    def __getitem__(self, i: int) -> np.ndarray:
        m = self._db.num_lists
        i = operator.index(i)
        if i < 0:
            i += m
        if not 0 <= i < m:
            raise IndexError(i)
        return self._db._merged_order(i)[self._part]


class ShardedDatabase(ColumnarDatabase):
    """Sharded array backend: the grade matrix is partitioned into
    ``S`` contiguous row-range shards, each holding its own per-list
    sorted runs; globally sorted access is produced by a per-list
    k-way :class:`ListMergeCursor` and random access is routed to the
    owning shard through the id -> row interning table.

    Same API, tie semantics and bit-for-bit results as
    :class:`ColumnarDatabase` (enforced by the differential suite):
    the merge key *(grade descending, unique tie key ascending)*
    reproduces the reference order exactly, so TA/NRA/CA/Stream-Combine
    -- including their speculative chunked engines -- run unmodified.

    Internals (per list ``i``, shard ``s``):

    * ``_runs[i][s]`` -- ``(rows, grades, ties)`` sorted by the merge
      key; ``rows`` are global row indices, ``ties`` the global
      tie-break keys (see :class:`ListMergeCursor`);
    * ``_shard_bounds`` -- ``S + 1`` row offsets; shard ``s`` owns rows
      ``[bounds[s], bounds[s+1])``, so routing a row to its shard is a
      binary search (and the batched access plane's fancy-indexed
      gathers into the concatenated matrix are the vectorised form of
      per-shard routing);
    * merged global order arrays are materialised lazily, per list, on
      first (uncharged) touch -- an O(N log S) merge instead of the
      O(N log N) global argsort, and only for lists actually accessed.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        ids: Sequence[ObjectId],
        shard_bounds: np.ndarray,
        runs: Sequence[Sequence[_Run]],
        validate: bool = True,
        _merged: Sequence[tuple[np.ndarray, np.ndarray] | None] | None = None,
    ):
        self._init_core(matrix, ids)
        self._shard_bounds = np.asarray(shard_bounds, dtype=np.intp)
        self._shard_matrices = [
            self._matrix[int(lo) : int(hi)]
            for lo, hi in zip(self._shard_bounds[:-1], self._shard_bounds[1:])
        ]
        self._runs = [list(shard_runs) for shard_runs in runs]
        self._merged_cache: list[tuple[np.ndarray, np.ndarray] | None] = (
            list(_merged) if _merged is not None else [None] * self._m
        )
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # shard topology
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """``S``, the number of row-range shards."""
        return len(self._shard_bounds) - 1

    @property
    def shard_bounds(self) -> np.ndarray:
        """The ``S + 1`` row offsets (copy; shard ``s`` owns rows
        ``[bounds[s], bounds[s+1])``)."""
        return self._shard_bounds.copy()

    def shard_of_row(self, row: int) -> int:
        """The shard owning global row index ``row``."""
        if not 0 <= row < len(self._ids):
            raise IndexError(f"row {row} out of range")
        return int(np.searchsorted(self._shard_bounds, row, side="right")) - 1

    def shard_of(self, obj: ObjectId) -> int:
        """The shard owning ``obj`` (via the id -> row interning)."""
        row = self._row_of.get(obj)
        if row is None:
            raise UnknownObjectError(obj)
        return self.shard_of_row(row)

    # ------------------------------------------------------------------
    # merge cursors and the lazily merged global orders
    # ------------------------------------------------------------------
    def list_runs(self, list_index: int) -> list[_Run]:
        """List ``list_index``'s per-shard ``(rows, grades, ties)``
        runs, shard order -- the units a
        :class:`ListMergeCursor` merges (and what a distributed
        deployment would serve per shard; see
        :func:`repro.services.assemble.shard_run_services`)."""
        self._check_list(list_index)
        return list(self._runs[list_index])

    def merge_cursor(self, list_index: int) -> ListMergeCursor:
        """A fresh streaming merge cursor over list ``list_index``'s
        shard runs."""
        self._check_list(list_index)
        return ListMergeCursor(self._runs[list_index])

    def iter_sorted(
        self, list_index: int
    ) -> Iterator[tuple[ObjectId, float]]:
        """Stream ``(object, grade)`` in global sorted order without
        materialising the merged order array."""
        ids = self._ids
        for row, grade in self.merge_cursor(list_index):
            yield ids[row], grade

    def _merged_order(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        cached = self._merged_cache[i]
        if cached is None:
            cached = self.merge_cursor(i).drain()
            self._merged_cache[i] = cached
        return cached

    @property
    def _order_rows(self) -> Sequence[np.ndarray]:  # type: ignore[override]
        return _MergedOrders(self, 0)

    @property
    def _order_grades(self) -> Sequence[np.ndarray]:  # type: ignore[override]
        return _MergedOrders(self, 1)

    # ------------------------------------------------------------------
    # shard-routed random access (the batched plane's fancy-indexed
    # gathers into the concatenated matrix are the vectorised analogue:
    # contiguous range sharding makes the routing a slice offset)
    # ------------------------------------------------------------------
    def grade(self, obj: ObjectId, list_index: int) -> float:
        self._check_list(list_index)
        row = self._row_of.get(obj)
        if row is None:
            raise UnknownObjectError(obj)
        s = self.shard_of_row(row)
        lo = int(self._shard_bounds[s])
        return float(self._shard_matrices[s][row - lo, list_index])

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def _argsort_runs(
        matrix: np.ndarray, bounds: np.ndarray
    ) -> list[list[_Run]]:
        """Per-shard stable argsorts (each shard orders its own rows
        independently -- the distributable part); tie keys are global
        row indices, which reproduces the global stable argsort order
        under the merge."""
        m = matrix.shape[1]
        runs: list[list[_Run]] = [[] for _ in range(m)]
        for s in range(len(bounds) - 1):
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            block = matrix[lo:hi]
            for i in range(m):
                local = np.argsort(-block[:, i], kind="stable")
                rows = (lo + local).astype(np.intp, copy=False)
                runs[i].append(
                    (rows, block[local, i], rows.astype(np.int64))
                )
        return runs

    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        object_ids: Sequence[ObjectId] | None = None,
        validate: bool = True,
        *,
        num_shards: int = 1,
    ) -> "ShardedDatabase":
        """Build from an ``(N, m)`` grade array partitioned into
        ``num_shards`` balanced row ranges; each shard argsorts its own
        slice (stable), and the merged order is identical to
        :meth:`ColumnarDatabase.from_array`'s."""
        array, ids = _coerce_array_and_ids(array, object_ids)
        bounds = shard_bounds_for(array.shape[0], num_shards)
        runs = cls._argsort_runs(array, bounds)
        return cls(array, ids, bounds, runs, validate=validate)

    @classmethod
    def from_shards(
        cls,
        shard_matrices: Sequence[np.ndarray],
        object_ids: Sequence[ObjectId] | None = None,
        validate: bool = True,
    ) -> "ShardedDatabase":
        """Build from per-shard ``(n_s, m)`` grade blocks (e.g. produced
        by independent workers); shard ``s`` owns the contiguous row
        range covering its block, in the order given."""
        if not shard_matrices:
            raise DatabaseError("need at least one shard")
        parts = [np.asarray(p, dtype=float) for p in shard_matrices]
        arities: set[int] = set()
        for s, p in enumerate(parts):
            if p.ndim != 2:
                raise DatabaseError(
                    f"shard {s}: expected a 2-D (n, m) array, got shape "
                    f"{p.shape}"
                )
            arities.add(p.shape[1])
        if len(arities) != 1:
            raise DatabaseError(
                f"shards disagree on the number of lists: {sorted(arities)}"
            )
        matrix = parts[0] if len(parts) == 1 else np.concatenate(parts)
        matrix, ids = _coerce_array_and_ids(matrix, object_ids)
        bounds = np.concatenate(
            [[0], np.cumsum([len(p) for p in parts])]
        ).astype(np.intp)
        runs = cls._argsort_runs(matrix, bounds)
        return cls(matrix, ids, bounds, runs, validate=validate)

    @classmethod
    def from_rows(
        cls,
        rows: Mapping[ObjectId, Sequence[float]],
        validate: bool = True,
        *,
        num_shards: int = 1,
    ) -> "ShardedDatabase":
        """Build from ``{object_id: grade_vector}``; ties keep insertion
        order, exactly like :meth:`Database.from_rows`."""
        if not rows:
            raise DatabaseError("database must contain at least one object")
        arities = {len(v) for v in rows.values()}
        if len(arities) != 1:
            raise DatabaseError(
                "all objects must have the same number of grades; got "
                f"{arities}"
            )
        if arities.pop() < 1:
            raise DatabaseError("objects must have at least one grade")
        ids = list(rows)
        matrix = np.array([list(rows[obj]) for obj in ids], dtype=np.float64)
        return cls.from_array(
            matrix, ids, validate=validate, num_shards=num_shards
        )

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[Sequence[tuple[ObjectId, float]]],
        validate: bool = True,
        *,
        num_shards: int = 1,
    ) -> "ShardedDatabase":
        """Build from explicit per-list orderings, preserving tie
        placement across the shard partition."""
        scalar = Database.from_columns(columns, validate=validate)
        return cls.from_database(scalar, num_shards=num_shards)

    @classmethod
    def from_database(
        cls,
        db: Database,
        num_shards: int = 1,
        *,
        shard_bounds: np.ndarray | None = None,
    ) -> "ShardedDatabase":
        """Re-shard any database (scalar, columnar or sharded) into
        ``num_shards`` contiguous row-range shards, preserving its exact
        per-list tie order: each shard's run is the subsequence of the
        reference global order falling in its row range, with the global
        list positions as tie keys.  ``shard_bounds`` overrides the
        balanced partition with explicit row offsets (used when
        restoring a persisted shard layout)."""
        col = ColumnarDatabase.from_database(db)
        matrix = col._matrix
        n = matrix.shape[0]
        if shard_bounds is not None:
            bounds = np.asarray(shard_bounds, dtype=np.intp)
            num_shards = len(bounds) - 1
        else:
            bounds = shard_bounds_for(n, num_shards)
        runs: list[list[_Run]] = []
        for i in range(col._m):
            g_rows = np.asarray(col._order_rows[i])
            g_grades = np.asarray(col._order_grades[i])
            shard_idx = np.searchsorted(bounds, g_rows, side="right") - 1
            shard_runs: list[_Run] = []
            for s in range(num_shards):
                mask = shard_idx == s
                shard_runs.append(
                    (
                        g_rows[mask].astype(np.intp, copy=False),
                        g_grades[mask],
                        np.nonzero(mask)[0].astype(np.int64),
                    )
                )
            runs.append(shard_runs)
        return cls(matrix, col._ids, bounds, runs, validate=False)

    # ------------------------------------------------------------------
    # validation (per shard; merged orders are validated implicitly by
    # the run invariants + the differential suite)
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        self._validate_core()
        matrix = self._matrix
        n, m = matrix.shape
        bounds = self._shard_bounds
        if (
            bounds[0] != 0
            or bounds[-1] != n
            or (np.diff(bounds) < 0).any()
        ):
            raise DatabaseError(
                f"shard bounds {bounds.tolist()} do not partition "
                f"0..{n}"
            )
        num_shards = self.num_shards
        if len(self._runs) != m:
            raise DatabaseError(
                f"got runs for {len(self._runs)} lists, expected {m}"
            )
        for i, shard_runs in enumerate(self._runs):
            if len(shard_runs) != num_shards:
                raise DatabaseError(
                    f"list {i} has runs for {len(shard_runs)} shards, "
                    f"expected {num_shards}"
                )
            rows_parts: list[np.ndarray] = []
            tie_parts: list[np.ndarray] = []
            for s, (rows, grades, ties) in enumerate(shard_runs):
                lo, hi = int(bounds[s]), int(bounds[s + 1])
                if not (len(rows) == len(grades) == len(ties)):
                    raise DatabaseError(
                        f"list {i} shard {s}: run arrays disagree in length"
                    )
                if rows.size and (rows.min() < lo or rows.max() >= hi):
                    raise DatabaseError(
                        f"list {i} shard {s} references rows outside "
                        f"[{lo}, {hi})"
                    )
                if not np.array_equal(matrix[rows, i], grades):
                    raise DatabaseError(
                        f"list {i} shard {s}: run grades disagree with "
                        "the grade matrix"
                    )
                if (grades[1:] > grades[:-1] + 1e-15).any():
                    raise DatabaseError(
                        f"list {i} shard {s} is not sorted descending"
                    )
                tied = grades[1:] == grades[:-1]
                if (ties[1:][tied] <= ties[:-1][tied]).any():
                    raise DatabaseError(
                        f"list {i} shard {s}: tie keys not ascending "
                        "within equal grades"
                    )
                rows_parts.append(rows)
                tie_parts.append(ties)
            all_rows = np.concatenate(rows_parts)
            if all_rows.size != n or not (
                np.bincount(all_rows, minlength=n) == 1
            ).all():
                raise DatabaseError(
                    f"list {i}: shard runs do not partition the rows"
                )
            all_ties = np.concatenate(tie_parts)
            if np.unique(all_ties).size != n:
                raise DatabaseError(
                    f"list {i}: tie keys are not unique across shards"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardedDatabase N={self.num_objects} m={self.num_lists} "
            f"S={self.num_shards}>"
        )
