"""The middleware's view of a database: ``m`` sorted lists over ``N``
objects.

Following Section 1 of the paper, a database is a finite set of objects,
each with ``m`` grades in ``[0, 1]``; list ``i`` contains one entry
``(R, x_i)`` per object, sorted by grade in descending order.  This module
stores that view directly:

* a grade table (object -> tuple of ``m`` grades) giving O(1) random
  access, and
* ``m`` explicit orderings giving O(1) sorted access by position.

Tie order inside a list is semantically *arbitrary* (the paper breaks ties
arbitrarily) but operationally significant: several counterexamples in the
paper place a specific object below its grade-mates.  Construction via
:meth:`Database.from_columns` therefore preserves the caller's exact order,
while :meth:`Database.from_rows` produces a deterministic order (grade
descending, insertion order among ties).

The database itself performs no accounting; all algorithmic access is
mediated (and charged) by :class:`repro.middleware.access.AccessSession`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Hashable

import numpy as np

from .errors import DatabaseError, UnknownListError, UnknownObjectError

__all__ = ["Database"]

ObjectId = Hashable


class Database:
    """Immutable ``m``-list graded database.

    Use one of the classmethod constructors:

    * :meth:`from_rows` -- ``{object_id: (x1, ..., xm)}``;
    * :meth:`from_columns` -- explicit per-list orderings (for adversarial
      constructions where tie order matters);
    * :meth:`from_array` -- an ``(N, m)`` numpy array of grades.
    """

    def __init__(
        self,
        grades: dict[ObjectId, tuple[float, ...]],
        orderings: list[list[ObjectId]],
        validate: bool = True,
    ):
        self._grades = grades
        self._orderings = orderings
        self._m = len(orderings)
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Mapping[ObjectId, Sequence[float]],
        validate: bool = True,
    ) -> "Database":
        """Build from ``{object_id: grade_vector}``.

        Each list is ordered by grade descending; ties keep the mapping's
        insertion order (stable sort), making construction deterministic.
        """
        if not rows:
            raise DatabaseError("database must contain at least one object")
        arities = {len(v) for v in rows.values()}
        if len(arities) != 1:
            raise DatabaseError(
                f"all objects must have the same number of grades; got {arities}"
            )
        m = arities.pop()
        if m < 1:
            raise DatabaseError("objects must have at least one grade")
        grades = {obj: tuple(float(g) for g in vec) for obj, vec in rows.items()}
        objects = list(grades)
        orderings = [
            sorted(objects, key=lambda obj: -grades[obj][i]) for i in range(m)
        ]
        return cls(grades, orderings, validate=validate)

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[Sequence[tuple[ObjectId, float]]],
        validate: bool = True,
    ) -> "Database":
        """Build from explicit per-list ``[(object_id, grade), ...]`` in the
        exact sorted order to expose, preserving tie placement.

        Raises :class:`DatabaseError` if any column is not non-increasing
        in grade or the columns disagree on the object set.
        """
        if not columns:
            raise DatabaseError("database must contain at least one list")
        grades: dict[ObjectId, list[float | None]] = {}
        m = len(columns)
        orderings: list[list[ObjectId]] = []
        for i, column in enumerate(columns):
            ordering = []
            previous = None
            for obj, grade in column:
                grade = float(grade)
                if previous is not None and grade > previous + 1e-15:
                    raise DatabaseError(
                        f"list {i} is not sorted descending at object {obj!r}"
                    )
                previous = grade
                vec = grades.setdefault(obj, [None] * m)
                if vec[i] is not None:
                    raise DatabaseError(
                        f"object {obj!r} appears twice in list {i}"
                    )
                vec[i] = grade
                ordering.append(obj)
            orderings.append(ordering)
        missing = {
            obj: [i for i, g in enumerate(vec) if g is None]
            for obj, vec in grades.items()
            if any(g is None for g in vec)
        }
        if missing:
            raise DatabaseError(
                f"objects missing from some lists: {dict(list(missing.items())[:5])}"
            )
        final = {obj: tuple(vec) for obj, vec in grades.items()}
        return cls(final, orderings, validate=validate)

    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        object_ids: Sequence[ObjectId] | None = None,
        validate: bool = True,
    ) -> "Database":
        """Build from an ``(N, m)`` array of grades.

        ``object_ids`` defaults to ``0 .. N-1``.  Ordering inside each list
        is grade descending with ties broken by object index (via a stable
        argsort), which is deterministic.
        """
        array = np.asarray(array, dtype=float)
        if array.ndim != 2:
            raise DatabaseError(
                f"expected a 2-D (N, m) array, got shape {array.shape}"
            )
        n, m = array.shape
        if n < 1 or m < 1:
            raise DatabaseError(f"array must be non-empty, got shape {array.shape}")
        if object_ids is None:
            object_ids = range(n)
        ids = list(object_ids)
        if len(ids) != n:
            raise DatabaseError(
                f"got {len(ids)} object ids for {n} rows"
            )
        grades = {obj: tuple(array[row].tolist()) for row, obj in enumerate(ids)}
        orderings = []
        for i in range(m):
            order = np.argsort(-array[:, i], kind="stable")
            orderings.append([ids[row] for row in order.tolist()])
        return cls(grades, orderings, validate=validate)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self._grades:
            raise DatabaseError("database must contain at least one object")
        if self._m < 1:
            raise DatabaseError("database must contain at least one list")
        n = len(self._grades)
        for obj, vec in self._grades.items():
            if len(vec) != self._m:
                raise DatabaseError(
                    f"object {obj!r} has {len(vec)} grades, expected {self._m}"
                )
            for i, g in enumerate(vec):
                if not (0.0 <= g <= 1.0) or g != g:  # NaN check via g != g
                    raise DatabaseError(
                        f"grade of object {obj!r} in list {i} is {g}, "
                        "outside [0, 1]"
                    )
        for i, ordering in enumerate(self._orderings):
            if len(ordering) != n:
                raise DatabaseError(
                    f"list {i} has {len(ordering)} entries for {n} objects"
                )
            if len(set(ordering)) != n:
                raise DatabaseError(f"list {i} contains duplicate objects")
            previous = None
            for obj in ordering:
                g = self._grades[obj][i]
                if previous is not None and g > previous + 1e-15:
                    raise DatabaseError(f"list {i} is not sorted descending")
                previous = g

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        """``N``, the number of objects."""
        return len(self._grades)

    @property
    def num_lists(self) -> int:
        """``m``, the number of sorted lists (= arity of the query)."""
        return self._m

    @property
    def objects(self) -> Iterable[ObjectId]:
        """All object ids (iteration order unspecified)."""
        return self._grades.keys()

    def __contains__(self, obj: ObjectId) -> bool:
        return obj in self._grades

    def __len__(self) -> int:
        return len(self._grades)

    # ------------------------------------------------------------------
    # raw (un-accounted) access; algorithms must go through AccessSession
    # ------------------------------------------------------------------
    def sorted_entry(self, list_index: int, position: int):
        """Entry ``(object, grade)`` at 0-based ``position`` of list
        ``list_index``, or ``None`` past the end."""
        self._check_list(list_index)
        ordering = self._orderings[list_index]
        if position < 0:
            raise IndexError(f"negative position {position}")
        if position >= len(ordering):
            return None
        obj = ordering[position]
        return obj, self._grades[obj][list_index]

    def grade(self, obj: ObjectId, list_index: int) -> float:
        """Grade of ``obj`` in list ``list_index`` (a random-access probe)."""
        self._check_list(list_index)
        vec = self._grades.get(obj)
        if vec is None:
            raise UnknownObjectError(obj)
        return vec[list_index]

    def grade_vector(self, obj: ObjectId) -> tuple[float, ...]:
        """All ``m`` grades of ``obj``."""
        vec = self._grades.get(obj)
        if vec is None:
            raise UnknownObjectError(obj)
        return vec

    def _check_list(self, list_index: int) -> None:
        if not (0 <= list_index < self._m):
            raise UnknownListError(list_index, self._m)

    # ------------------------------------------------------------------
    # ground truth and structural predicates (used by verification,
    # generators and the certificate searcher; never by the algorithms)
    # ------------------------------------------------------------------
    def overall_grades(self, t) -> dict[ObjectId, float]:
        """``{object: t(grades)}`` for every object -- the naive ground
        truth."""
        t.check_arity(self._m)
        return {obj: t.aggregate(vec) for obj, vec in self._grades.items()}

    def top_k(self, t, k: int) -> list[tuple[ObjectId, float]]:
        """The true top-``k`` as ``[(object, overall grade)]``, grade
        descending, ties broken deterministically by list-0 position."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        overall = self.overall_grades(t)
        position = {obj: pos for pos, obj in enumerate(self._orderings[0])}
        ranked = sorted(
            overall.items(), key=lambda item: (-item[1], position[item[0]])
        )
        return ranked[:k]

    def kth_grade(self, t, k: int) -> float:
        """The overall grade of the ``k``-th best object."""
        ranked = self.top_k(t, min(k, self.num_objects))
        return ranked[-1][1]

    def satisfies_distinctness(self) -> bool:
        """True iff no two objects share a grade in any list (the
        *distinctness property* of Section 6)."""
        for i in range(self._m):
            seen = set()
            for obj in self._orderings[i]:
                g = self._grades[obj][i]
                if g in seen:
                    return False
                seen.add(g)
        return True

    def to_array(self, object_ids: Sequence[ObjectId] | None = None):
        """Dense ``(N, m)`` grade matrix (row order = ``object_ids`` or
        arbitrary-but-fixed)."""
        ids = list(object_ids) if object_ids is not None else list(self._grades)
        out = np.empty((len(ids), self._m), dtype=float)
        for row, obj in enumerate(ids):
            out[row] = self.grade_vector(obj)
        return ids, out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Database N={self.num_objects} m={self.num_lists}>"
