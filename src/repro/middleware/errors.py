"""Exception hierarchy for the middleware substrate.

Access-mode violations are first-class errors because the paper's results
are theorems *about* access restrictions: NRA must never random-access,
TAZ must never sorted-access outside ``Z``, and "no wild guesses" (random
access to an object never seen under sorted access) defines the algorithm
class of Theorem 6.1.  The :class:`~repro.middleware.access.AccessSession`
enforces these at runtime so a buggy algorithm fails loudly instead of
silently leaving its complexity class.
"""

from __future__ import annotations

__all__ = [
    "MiddlewareError",
    "DatabaseError",
    "AccessError",
    "CapabilityError",
    "WildGuessError",
    "UnknownObjectError",
    "UnknownListError",
    "RemoteServiceError",
    "ServiceTimeoutError",
    "ServiceTransientError",
    "ServiceUnavailableError",
    "ReplicaGroupExhaustedError",
    "ListLostError",
    "WireFormatError",
    "StoreFormatError",
    "QueryCancelledError",
    "AdmissionError",
    "UnknownQueryError",
    "UnknownViewError",
    "connection_error_to_service_error",
]


class MiddlewareError(Exception):
    """Base class for all errors raised by :mod:`repro.middleware`."""


class DatabaseError(MiddlewareError):
    """The database is malformed (wrong shapes, grades out of range,
    inconsistent object sets between lists, ...)."""


class AccessError(MiddlewareError):
    """Base class for illegal access attempts."""


class CapabilityError(AccessError):
    """An access mode was used on a list that does not support it."""

    def __init__(self, mode: str, list_index: int):
        super().__init__(
            f"{mode} access is not permitted on list {list_index}"
        )
        self.mode = mode
        self.list_index = list_index


class WildGuessError(AccessError):
    """Random access to an object never seen under sorted access.

    The class of algorithms in Theorem 6.1 excludes exactly these
    accesses; sessions created with ``forbid_wild_guesses=True`` raise
    this error to certify membership in that class.
    """

    def __init__(self, obj, list_index: int):
        super().__init__(
            f"wild guess: random access to object {obj!r} in list "
            f"{list_index} before it was seen under sorted access"
        )
        self.obj = obj
        self.list_index = list_index


class UnknownObjectError(AccessError):
    """Random access to an object id that does not exist in the database."""

    def __init__(self, obj):
        super().__init__(f"object {obj!r} does not exist in the database")
        self.obj = obj


class UnknownListError(AccessError):
    """A list index outside ``0 .. m-1`` was used."""

    def __init__(self, list_index: int, m: int):
        super().__init__(
            f"list index {list_index} out of range for database with m={m}"
        )
        self.list_index = list_index


class RemoteServiceError(AccessError):
    """An access against a remote graded source failed.

    The paper's middleware is a client of autonomous subsystems, so a
    service failing is an *access-plane* event, not a database-shape
    one: it subclasses :class:`AccessError` and carries the service
    name and how many attempts were spent.  Crucially, a raised access
    is an access that never happened -- the session charges an access
    only after its grade has been served, so a failure can never
    corrupt the accounting (see :mod:`repro.services`).
    """

    def __init__(self, service: str, message: str, attempts: int = 1):
        super().__init__(f"service {service!r}: {message}")
        self.service = service
        self.attempts = attempts


class ServiceTimeoutError(RemoteServiceError):
    """A service call exceeded its deadline (after any retries)."""

    def __init__(self, service: str, attempts: int = 1):
        super().__init__(
            service,
            f"call timed out after {attempts} attempt(s)",
            attempts,
        )


class ServiceTransientError(RemoteServiceError):
    """A retryable transient failure exhausted its retry budget."""

    def __init__(self, service: str, attempts: int = 1):
        super().__init__(
            service,
            f"transient failure persisted across {attempts} attempt(s)",
            attempts,
        )


class ServiceUnavailableError(RemoteServiceError):
    """The service failed permanently; retrying cannot help."""

    def __init__(self, service: str, attempts: int = 1):
        super().__init__(service, "permanently unavailable", attempts)


class ReplicaGroupExhaustedError(ServiceUnavailableError):
    """Every replica of a replicated source failed for one request.

    Subclasses :class:`ServiceUnavailableError` because that is what a
    replica group *is* to its consumers: a single logical service that
    has become unavailable.  Sessions in ``survive_list_loss`` mode
    absorb it exactly like a permanent single-service failure.
    """

    def __init__(self, service: str, attempts: int = 1):
        RemoteServiceError.__init__(
            self,
            service,
            f"all replicas failed ({attempts} attempt(s) spent)",
            attempts,
        )


class ListLostError(ServiceUnavailableError):
    """An access was attempted on a list the session already declared
    lost (degraded mode).

    Raised only by sessions with ``survive_list_loss=True``: sorted
    access to a lost list silently reports exhaustion (the sorted
    stream simply ends), but *random* access cannot be absorbed that
    way -- the algorithm asked for a grade that no longer exists -- so
    it surfaces as this dedicated type, letting the engines switch to
    their degraded completion path (see :mod:`repro.resilience`).
    """

    def __init__(self, service: str, list_index: int, attempts: int = 1):
        RemoteServiceError.__init__(
            self,
            service,
            f"list {list_index} was lost; random access is impossible",
            attempts,
        )
        self.list_index = list_index


class QueryCancelledError(AccessError):
    """The query owning this session was cancelled.

    Raised *from inside the access plane*: a cancelled query's next
    sorted or random access fails before anything is charged, so the
    session's accounting stops exactly at the prefix the query had
    already consumed.  Cancellation can therefore never refund or
    over-charge -- charged == consumed holds for aborted queries by
    construction, which is what the scan-sharing contract requires
    (see :mod:`repro.server`).
    """

    def __init__(self, query_id: str):
        super().__init__(f"query {query_id!r} was cancelled")
        self.query_id = query_id


class AdmissionError(MiddlewareError):
    """The query service refused to enqueue a query.

    Raised at submission time when the admission policy's queue bound
    is already full (or the service is draining).  Deliberately not an
    :class:`AccessError`: the query never reached the access plane, so
    no accounting exists to protect -- and transports must map it to a
    distinct, retry-later error code rather than a service failure.
    """

    def __init__(self, message: str):
        super().__init__(message)


class UnknownQueryError(MiddlewareError):
    """A query id that the service is not (or no longer) tracking.

    Results are single-shot: once a result has been collected the
    service may forget the query, and cancel/result calls for ids it
    never issued are client bugs, not access-plane events.
    """

    def __init__(self, query_id: str):
        super().__init__(f"unknown query id {query_id!r}")
        self.query_id = query_id


class UnknownViewError(MiddlewareError):
    """A view id that the service is not (or no longer) tracking.

    Standing views die with their subscriber: the service drops a view
    when its connection closes or it is explicitly unsubscribed, and
    polls for ids it never issued are client bugs, not access-plane
    events (same taxonomy position as :class:`UnknownQueryError`).
    """

    def __init__(self, view_id: str):
        super().__init__(f"unknown view id {view_id!r}")
        self.view_id = view_id


class WireFormatError(MiddlewareError):
    """A wire frame or message is malformed: truncated, oversized,
    carrying an unknown type tag, or followed by trailing garbage.

    Raised by the codecs in :mod:`repro.middleware.serialization` and
    by the transport endpoints in :mod:`repro.transport`.  Deliberately
    *not* an :class:`AccessError`: a corrupt frame is a protocol bug or
    an attack, never a legitimate access-plane event, so it must not be
    absorbed by retry policies built for service failures.
    """


class StoreFormatError(WireFormatError):
    """An on-disk store file is malformed: bad magic, truncated or
    corrupt header, segments pointing outside the file, or a format
    version newer than this code understands.

    A :class:`WireFormatError` subclass on purpose: a store file is a
    persisted frame of the same no-trust codec discipline -- every
    structural check runs *before* any ``np.memmap`` is created, so a
    corrupt file is refused outright rather than mapped and read as
    garbage.
    """


def connection_error_to_service_error(
    service: str, exc: BaseException, attempts: int = 1
) -> RemoteServiceError:
    """Map a socket-level failure onto the remote-service taxonomy.

    The mapping keeps :class:`~repro.services.simulated.RetryPolicy`
    meaningful over real connections exactly as over the simulated
    failure models:

    * a deadline (``TimeoutError``, which ``asyncio.TimeoutError``
      aliases since 3.11) -> :class:`ServiceTimeoutError` (retryable);
    * connection refused -> :class:`ServiceUnavailableError`
      (nobody is listening; retrying the same endpoint cannot help,
      the permanent verdict of the failure models);
    * reset / aborted / broken pipe / EOF mid-frame
      (``asyncio.IncompleteReadError`` subclasses ``EOFError``) ->
      :class:`ServiceTransientError` (a fresh connection may succeed,
      and the frame protocol's stateless requests make the retry safe);
    * any other ``OSError`` (unreachable network, name failure, ...)
      -> :class:`ServiceTransientError`.

    Already-mapped :class:`RemoteServiceError` instances pass through
    unchanged so callers can funnel mixed failure paths through one
    mapping point.
    """
    if isinstance(exc, RemoteServiceError):
        return exc
    if isinstance(exc, TimeoutError):
        return ServiceTimeoutError(service, attempts)
    if isinstance(exc, ConnectionRefusedError):
        return ServiceUnavailableError(service, attempts)
    if isinstance(
        exc,
        (
            ConnectionResetError,
            ConnectionAbortedError,
            BrokenPipeError,
            EOFError,
            OSError,
        ),
    ):
        return ServiceTransientError(service, attempts)
    raise TypeError(
        f"not a connection-level failure: {type(exc).__name__}: {exc}"
    ) from exc
