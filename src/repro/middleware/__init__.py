"""Middleware substrate: databases, access modes, costs, and sources.

The substrate realises the paper's model (Sections 1-2): a database is
``m`` sorted lists over ``N`` objects; algorithms may only *sorted-access*
(pop the next entry of a list, cost ``cS``) or *random-access* (fetch a
named object's grade, cost ``cR``) through an accounted
:class:`~repro.middleware.access.AccessSession`.
"""

from .access import (
    AccessSession,
    AccessStats,
    ListCapabilities,
    RoundBatch,
    SortedBatch,
)
from .cost import (
    UNIT_COSTS,
    AdmissionPolicy,
    BillingLedger,
    CostModel,
    QueryBill,
    QueryBudget,
)
from .database import (
    ColumnarDatabase,
    Database,
    ListMergeCursor,
    ShardedDatabase,
    shard_bounds_for,
)
from .errors import (
    AccessError,
    AdmissionError,
    CapabilityError,
    DatabaseError,
    ListLostError,
    MiddlewareError,
    QueryCancelledError,
    RemoteServiceError,
    ReplicaGroupExhaustedError,
    ServiceTimeoutError,
    ServiceTransientError,
    ServiceUnavailableError,
    UnknownListError,
    UnknownObjectError,
    UnknownQueryError,
    UnknownViewError,
    WildGuessError,
    WireFormatError,
    connection_error_to_service_error,
)
from .mutable import (
    MutableColumnarDatabase,
    MutableDatabase,
    MutableShardedDatabase,
    MutationEvent,
)
from .serialization import (
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    load_json,
    load_npz,
    save_json,
    save_npz,
)
from .sources import GradedSource, ScoredCollection, assemble_database
from .trace import RANDOM, SORTED, AccessEvent, AccessTrace

__all__ = [
    "AccessSession",
    "AccessStats",
    "ListCapabilities",
    "CostModel",
    "QueryBudget",
    "QueryBill",
    "BillingLedger",
    "AdmissionPolicy",
    "UNIT_COSTS",
    "Database",
    "ColumnarDatabase",
    "ShardedDatabase",
    "MutableDatabase",
    "MutableColumnarDatabase",
    "MutableShardedDatabase",
    "MutationEvent",
    "ListMergeCursor",
    "shard_bounds_for",
    "SortedBatch",
    "RoundBatch",
    "MiddlewareError",
    "DatabaseError",
    "AccessError",
    "CapabilityError",
    "WildGuessError",
    "UnknownObjectError",
    "UnknownListError",
    "RemoteServiceError",
    "ServiceTimeoutError",
    "ServiceTransientError",
    "ServiceUnavailableError",
    "ReplicaGroupExhaustedError",
    "ListLostError",
    "WireFormatError",
    "QueryCancelledError",
    "AdmissionError",
    "UnknownQueryError",
    "UnknownViewError",
    "connection_error_to_service_error",
    "GradedSource",
    "ScoredCollection",
    "assemble_database",
    "save_json",
    "load_json",
    "save_npz",
    "load_npz",
    "encode_message",
    "decode_message",
    "encode_frame",
    "decode_frame",
    "AccessEvent",
    "AccessTrace",
    "SORTED",
    "RANDOM",
]
