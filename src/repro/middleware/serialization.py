"""Persistence for databases: JSON (portable, explicit tie order) and
NumPy ``.npz`` (compact, for large synthetic workloads).

The JSON form stores the per-list orderings explicitly, so adversarial
constructions round-trip with their tie placement intact -- the property
several of the paper's counterexamples depend on.

The ``.npz`` form stores the grade matrix *plus the per-list order
arrays* (and, for a :class:`~repro.middleware.database.ShardedDatabase`,
the shard layout), so a reload rebuilds the columnar backend directly:
no argsort is re-run, and the exact tie order -- adversarial placements
included -- survives the round trip.  :func:`load_npz` therefore returns
a ready-to-query :class:`~repro.middleware.database.ColumnarDatabase`
(or :class:`~repro.middleware.database.ShardedDatabase` when a shard
layout was persisted or ``num_shards`` is requested).  Files written by
the pre-order-array format (grades only) still load, rebuilding
orderings with the deterministic stable sort of
:meth:`Database.from_array` exactly as before.

Object ids are stored as strings in the ``.npz`` form; integer ids are
restored on load (other id types come back as their ``str()``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .database import ColumnarDatabase, Database, ShardedDatabase
from .errors import DatabaseError

__all__ = ["save_json", "load_json", "save_npz", "load_npz"]

_FORMAT = "repro-database-v1"
_NPZ_FORMAT = "repro-database-npz-v2"


def save_json(db: Database, path: str | Path) -> None:
    """Write ``db`` to ``path`` as JSON, preserving exact tie order."""
    columns: list[list] = []
    for i in range(db.num_lists):
        column: list[list] = []
        for position in range(db.num_objects):
            obj, grade = db.sorted_entry(i, position)
            column.append([obj, grade])
        columns.append(column)
    payload = {"format": _FORMAT, "m": db.num_lists, "columns": columns}
    Path(path).write_text(json.dumps(payload))


def load_json(path: str | Path) -> Database:
    """Read a database written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != _FORMAT:
        raise DatabaseError(
            f"{path}: not a {_FORMAT} file "
            f"(format={payload.get('format')!r})"
        )
    columns = [
        [(obj, float(grade)) for obj, grade in column]
        for column in payload["columns"]
    ]
    return Database.from_columns(columns)


def save_npz(db: Database, path: str | Path) -> None:
    """Write ``db`` to a compressed ``.npz``: grade matrix, object ids,
    per-list order arrays, and -- for a sharded database -- the shard
    layout, so :func:`load_npz` skips the argsort and preserves the
    exact tie order."""
    col = db.to_columnar()
    m = col.num_lists
    order_rows = np.stack(
        [np.asarray(col._order_rows[i], dtype=np.int64) for i in range(m)]
    )
    ids = col._ids
    payload = {
        "format": np.array(_NPZ_FORMAT),
        "grades": col._matrix,
        "object_ids": np.array([str(obj) for obj in ids]),
        "int_ids": np.array([isinstance(obj, int) for obj in ids]),
        "order_rows": order_rows,
    }
    if isinstance(db, ShardedDatabase):
        payload["shard_bounds"] = db.shard_bounds.astype(np.int64)
    np.savez_compressed(Path(path), **payload)


def _restore_ids(raw_ids: np.ndarray, int_ids: np.ndarray) -> list:
    return [
        int(obj) if is_int else str(obj)
        for obj, is_int in zip(raw_ids.tolist(), int_ids.tolist())
    ]


def load_npz(
    path: str | Path, num_shards: int | None = None
) -> Database:
    """Read a database written by :func:`save_npz`.

    Files carrying order arrays come back as a
    :class:`~repro.middleware.database.ColumnarDatabase` built directly
    from the persisted orderings (no re-sort, tie order intact), or as a
    :class:`~repro.middleware.database.ShardedDatabase` when the file
    stores a shard layout.  ``num_shards`` re-shards into that many
    balanced contiguous shards regardless of the persisted layout.
    Legacy files (grades only) rebuild orderings with the deterministic
    stable sort of :meth:`Database.from_array`, as before.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        files = set(data.files)
        grades = data["grades"]
        ids = _restore_ids(data["object_ids"], data["int_ids"])
        if "order_rows" not in files:
            # legacy format: orderings were not persisted
            db: Database = Database.from_array(grades, object_ids=ids)
            if num_shards is not None:
                return db.to_sharded(num_shards)
            return db
        order_rows = [
            np.asarray(rows, dtype=np.intp) for rows in data["order_rows"]
        ]
        shard_bounds = (
            np.asarray(data["shard_bounds"], dtype=np.intp)
            if "shard_bounds" in files
            else None
        )
    col = ColumnarDatabase(grades, ids, order_rows, validate=True)
    if num_shards is not None:
        sharded = ShardedDatabase.from_database(col, num_shards=num_shards)
    elif shard_bounds is not None:
        sharded = ShardedDatabase.from_database(
            col, shard_bounds=shard_bounds
        )
    else:
        return col
    # the merged global orders were just loaded (and the shard runs are
    # split from them, so the merge reproduces them bit-for-bit); hand
    # them to the shard backend so sorted access skips the merge too
    sharded._merged_cache = [
        (col._order_rows[i], col._order_grades[i])
        for i in range(col.num_lists)
    ]
    return sharded
