"""Persistence for databases: JSON (portable, explicit tie order) and
NumPy ``.npz`` (compact, for large synthetic workloads).

The JSON form stores the per-list orderings explicitly, so adversarial
constructions round-trip with their tie placement intact -- the property
several of the paper's counterexamples depend on.  The ``.npz`` form
stores the grade matrix plus object ids and rebuilds orderings with the
deterministic stable sort of :meth:`Database.from_array` (tie order is
*not* preserved; refuse it for tie-sensitive data by checking
:meth:`Database.satisfies_distinctness` yourself if it matters).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .database import Database
from .errors import DatabaseError

__all__ = ["save_json", "load_json", "save_npz", "load_npz"]

_FORMAT = "repro-database-v1"


def save_json(db: Database, path: str | Path) -> None:
    """Write ``db`` to ``path`` as JSON, preserving exact tie order."""
    columns = []
    for i in range(db.num_lists):
        column = []
        for position in range(db.num_objects):
            obj, grade = db.sorted_entry(i, position)
            column.append([obj, grade])
        columns.append(column)
    payload = {"format": _FORMAT, "m": db.num_lists, "columns": columns}
    Path(path).write_text(json.dumps(payload))


def load_json(path: str | Path) -> Database:
    """Read a database written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != _FORMAT:
        raise DatabaseError(
            f"{path}: not a {_FORMAT} file "
            f"(format={payload.get('format')!r})"
        )
    columns = [
        [(obj, float(grade)) for obj, grade in column]
        for column in payload["columns"]
    ]
    return Database.from_columns(columns)


def save_npz(db: Database, path: str | Path) -> None:
    """Write ``db``'s grade matrix to a compressed ``.npz``.

    Object ids are stored as strings; integer ids are restored on load.
    """
    ids, grades = db.to_array(object_ids=sorted(db.objects, key=str))
    np.savez_compressed(
        Path(path),
        grades=grades,
        object_ids=np.array([str(obj) for obj in ids]),
        int_ids=np.array([isinstance(obj, int) for obj in ids]),
    )


def load_npz(path: str | Path) -> Database:
    """Read a database written by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        grades = data["grades"]
        raw_ids = data["object_ids"]
        int_ids = data["int_ids"]
    ids = [
        int(obj) if is_int else str(obj)
        for obj, is_int in zip(raw_ids.tolist(), int_ids.tolist())
    ]
    return Database.from_array(grades, object_ids=ids)
