"""Persistence for databases: JSON (portable, explicit tie order) and
NumPy ``.npz`` (compact, for large synthetic workloads).

The JSON form stores the per-list orderings explicitly, so adversarial
constructions round-trip with their tie placement intact -- the property
several of the paper's counterexamples depend on.

The ``.npz`` form stores the grade matrix *plus the per-list order
arrays* (and, for a :class:`~repro.middleware.database.ShardedDatabase`,
the shard layout), so a reload rebuilds the columnar backend directly:
no argsort is re-run, and the exact tie order -- adversarial placements
included -- survives the round trip.  :func:`load_npz` therefore returns
a ready-to-query :class:`~repro.middleware.database.ColumnarDatabase`
(or :class:`~repro.middleware.database.ShardedDatabase` when a shard
layout was persisted or ``num_shards`` is requested).  Files written by
the pre-order-array format (grades only) still load, rebuilding
orderings with the deterministic stable sort of
:meth:`Database.from_array` exactly as before.

Object ids are stored as strings in the ``.npz`` form; integer ids are
restored on load (other id types come back as their ``str()``).

Wire codecs
-----------

The second half of this module is the binary codec the real transport
subsystem (:mod:`repro.transport`) ships between processes: a
length-prefixed *frame* carrying one tagged binary *message*.  Design
constraints, in order:

exactness
    grades must round-trip bit-for-bit -- ``-0.0``, subnormals and NaN
    payloads included -- because the differential suite compares floats
    with ``==``, never a tolerance.  Floats travel as their 8 IEEE-754
    bytes (``struct '<d'``), and float64/int64 arrays travel as raw
    little-endian buffers.
no trust
    every decoder bound-checks before it reads; truncated frames,
    oversized frames, unknown type tags and trailing bytes all raise
    :class:`~repro.middleware.errors.WireFormatError` instead of
    yielding garbage.
no dependencies
    the codec is ``struct`` + ``numpy`` (both already required) + the
    standard library's ``zlib``, so a server process needs nothing
    beyond this package.

Large frames may optionally travel zlib-compressed: bit 31 of the
length prefix flags a compressed payload (see
:data:`FRAME_FLAG_COMPRESSED`), applied only above a size threshold
and only when it actually shrinks the bytes.  Decoding is transparent
and bit-exact -- the inflated payload is byte-identical to the raw
encoding, so exactness is untouched -- and bounded: a frame that
inflates past the frame limit is a protocol violation, not an
allocation.

Supported values: ``None``, ``bool``, ``int`` (arbitrary precision),
``float``, ``str``, ``bytes``, lists/tuples (decoded as lists), dicts
with ``str`` keys, and one-dimensional ``float64``/``int64`` numpy
arrays (``intp`` is sent as ``int64``).  Object ids in this repository
are ints or strings, both covered exactly.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import numpy as np

from .database import ColumnarDatabase, Database, ShardedDatabase
from .errors import DatabaseError, WireFormatError

__all__ = [
    "save_json",
    "load_json",
    "save_npz",
    "load_npz",
    "MAX_FRAME_BYTES",
    "FRAME_HEADER_BYTES",
    "encode_message",
    "decode_message",
    "encode_frame",
    "decode_frame",
    "frame_payload_size",
    "frame_header_info",
    "decompress_frame_payload",
    "FRAME_FLAG_COMPRESSED",
    "COMPRESS_THRESHOLD_BYTES",
]

_FORMAT = "repro-database-v1"
_NPZ_FORMAT = "repro-database-npz-v2"


def save_json(db: Database, path: str | Path) -> None:
    """Write ``db`` to ``path`` as JSON, preserving exact tie order."""
    columns: list[list] = []
    for i in range(db.num_lists):
        column: list[list] = []
        for position in range(db.num_objects):
            obj, grade = db.sorted_entry(i, position)
            column.append([obj, grade])
        columns.append(column)
    payload = {"format": _FORMAT, "m": db.num_lists, "columns": columns}
    Path(path).write_text(json.dumps(payload))


def load_json(path: str | Path) -> Database:
    """Read a database written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != _FORMAT:
        raise DatabaseError(
            f"{path}: not a {_FORMAT} file "
            f"(format={payload.get('format')!r})"
        )
    columns = [
        [(obj, float(grade)) for obj, grade in column]
        for column in payload["columns"]
    ]
    return Database.from_columns(columns)


def save_npz(db: Database, path: str | Path) -> None:
    """Write ``db`` to a compressed ``.npz``: grade matrix, object ids,
    per-list order arrays, and -- for a sharded database -- the shard
    layout, so :func:`load_npz` skips the argsort and preserves the
    exact tie order."""
    col = db.to_columnar()
    m = col.num_lists
    order_rows = np.stack(
        [np.asarray(col._order_rows[i], dtype=np.int64) for i in range(m)]
    )
    ids = col._ids
    payload = {
        "format": np.array(_NPZ_FORMAT),
        "grades": col._matrix,
        "object_ids": np.array([str(obj) for obj in ids]),
        "int_ids": np.array([isinstance(obj, int) for obj in ids]),
        "order_rows": order_rows,
    }
    if isinstance(db, ShardedDatabase):
        payload["shard_bounds"] = db.shard_bounds.astype(np.int64)
    np.savez_compressed(Path(path), **payload)


def _restore_ids(raw_ids: np.ndarray, int_ids: np.ndarray) -> list:
    return [
        int(obj) if is_int else str(obj)
        for obj, is_int in zip(raw_ids.tolist(), int_ids.tolist())
    ]


def load_npz(
    path: str | Path, num_shards: int | None = None
) -> Database:
    """Read a database written by :func:`save_npz`.

    Files carrying order arrays come back as a
    :class:`~repro.middleware.database.ColumnarDatabase` built directly
    from the persisted orderings (no re-sort, tie order intact), or as a
    :class:`~repro.middleware.database.ShardedDatabase` when the file
    stores a shard layout.  ``num_shards`` re-shards into that many
    balanced contiguous shards regardless of the persisted layout.
    Legacy files (grades only) rebuild orderings with the deterministic
    stable sort of :meth:`Database.from_array`, as before.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        files = set(data.files)
        grades = data["grades"]
        ids = _restore_ids(data["object_ids"], data["int_ids"])
        if "order_rows" not in files:
            # legacy format: orderings were not persisted
            db: Database = Database.from_array(grades, object_ids=ids)
            if num_shards is not None:
                return db.to_sharded(num_shards)
            return db
        order_rows = [
            np.asarray(rows, dtype=np.intp) for rows in data["order_rows"]
        ]
        shard_bounds = (
            np.asarray(data["shard_bounds"], dtype=np.intp)
            if "shard_bounds" in files
            else None
        )
    col = ColumnarDatabase(grades, ids, order_rows, validate=True)
    if num_shards is not None:
        sharded = ShardedDatabase.from_database(col, num_shards=num_shards)
    elif shard_bounds is not None:
        sharded = ShardedDatabase.from_database(
            col, shard_bounds=shard_bounds
        )
    else:
        return col
    # the merged global orders were just loaded (and the shard runs are
    # split from them, so the merge reproduces them bit-for-bit); hand
    # them to the shard backend so sorted access skips the merge too
    sharded._merged_cache = [
        (col._order_rows[i], col._order_grades[i])
        for i in range(col.num_lists)
    ]
    return sharded


# ----------------------------------------------------------------------
# wire codecs (see the module docstring, "Wire codecs")
# ----------------------------------------------------------------------

#: hard ceiling on one frame's payload; a peer announcing more is
#: broken or hostile and the connection is torn down before allocating
MAX_FRAME_BYTES = 64 * 1024 * 1024
#: the length prefix: one unsigned 32-bit little-endian payload size
FRAME_HEADER_BYTES = 4
#: maximum container nesting either codec direction will follow; the
#: protocol's messages are at most ~3 deep, and the cap turns a
#: hostile deeply-nested frame into WireFormatError, not RecursionError
MAX_NESTING_DEPTH = 32
#: bit 31 of the length prefix marks a zlib-compressed payload.  Free
#: for the taking: payload sizes are capped far below 2**31, so the
#: bit is always zero in uncompressed frames and old decoders reject a
#: compressed frame cleanly as an oversized announcement rather than
#: misreading it.  The announced size is the *wire* (compressed) byte
#: count -- the reader still knows exactly how much to read before
#: touching zlib -- and the decompressed size is re-checked against
#: the same frame limit, so compression can never smuggle an oversized
#: message past the cap.
FRAME_FLAG_COMPRESSED = 0x8000_0000
#: default minimum payload size before compression is attempted;
#: protocol chatter (submits, statuses, pings) stays raw, bulk result
#: and trace frames shrink.  Compression is also skipped whenever it
#: does not actually help: the wire carries whichever form is smaller.
COMPRESS_THRESHOLD_BYTES = 4096

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: wire dtypes for array values: tag byte -> numpy little-endian dtype
_ARRAY_DTYPES = {b"d": "<f8", b"q": "<i8"}


def _encode_into(value, out: list[bytes], depth: int = 0) -> None:
    if depth > MAX_NESTING_DEPTH:
        raise WireFormatError(
            f"message nests deeper than {MAX_NESTING_DEPTH} levels"
        )
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(b"i")
            out.append(_I64.pack(value))
        else:
            # arbitrary-precision escape hatch: decimal digits
            digits = str(value).encode("ascii")
            out.append(b"n")
            out.append(_U32.pack(len(digits)))
            out.append(digits)
    elif isinstance(value, float):
        out.append(b"f")
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(b"s")
        out.append(_U32.pack(len(data)))
        out.append(data)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(b"b")
        out.append(_U32.pack(len(data)))
        out.append(data)
    elif isinstance(value, np.ndarray):
        if value.ndim != 1:
            raise WireFormatError(
                f"only one-dimensional arrays travel on the wire, "
                f"got shape {value.shape}"
            )
        if value.dtype.kind == "f":
            tag, dtype = b"d", "<f8"
        elif value.dtype.kind == "i":
            tag, dtype = b"q", "<i8"
        else:
            raise WireFormatError(
                f"unsupported array dtype {value.dtype} on the wire"
            )
        raw = np.ascontiguousarray(value, dtype=dtype).tobytes()
        out.append(b"a")
        out.append(tag)
        out.append(_U32.pack(len(value)))
        out.append(raw)
    elif isinstance(value, np.integer):
        out.append(b"i")
        out.append(_I64.pack(int(value)))
    elif isinstance(value, np.floating):
        out.append(b"f")
        out.append(_F64.pack(float(value)))
    elif isinstance(value, (list, tuple)):
        out.append(b"l")
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_into(item, out, depth + 1)
    elif isinstance(value, dict):
        out.append(b"m")
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireFormatError(
                    f"message keys must be str, got {type(key).__name__}"
                )
            data = key.encode("utf-8")
            out.append(_U32.pack(len(data)))
            out.append(data)
            _encode_into(item, out, depth + 1)
    else:
        raise WireFormatError(
            f"value of type {type(value).__name__} cannot travel on the "
            "wire (object ids must be int, str, float, bool, bytes or None)"
        )


def encode_message(value) -> bytes:
    """Encode one message value to its tagged binary form (no frame
    header; see :func:`encode_frame`)."""
    out: list[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


class _Reader:
    """Bounds-checked cursor over one message's bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise WireFormatError(
                f"truncated message: wanted {n} bytes at offset "
                f"{self.pos}, only {len(self.data) - self.pos} remain"
            )
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def take_u32(self) -> int:
        return _U32.unpack(self.take(4))[0]


def _decode_from(reader: _Reader, depth: int = 0):
    if depth > MAX_NESTING_DEPTH:
        raise WireFormatError(
            f"message nests deeper than {MAX_NESTING_DEPTH} levels"
        )
    tag = reader.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return _I64.unpack(reader.take(8))[0]
    if tag == b"n":
        digits = reader.take(reader.take_u32())
        try:
            return int(digits.decode("ascii"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise WireFormatError(f"corrupt bigint payload: {exc}") from None
    if tag == b"f":
        return _F64.unpack(reader.take(8))[0]
    if tag == b"s":
        data = reader.take(reader.take_u32())
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"corrupt utf-8 string: {exc}") from None
    if tag == b"b":
        return reader.take(reader.take_u32())
    if tag == b"a":
        dtype = _ARRAY_DTYPES.get(reader.take(1))
        if dtype is None:
            raise WireFormatError("unknown array dtype tag")
        count = reader.take_u32()
        raw = reader.take(count * 8)
        return np.frombuffer(raw, dtype=dtype).copy()
    if tag == b"l":
        count = reader.take_u32()
        return [_decode_from(reader, depth + 1) for _ in range(count)]
    if tag == b"m":
        count = reader.take_u32()
        message = {}
        for _ in range(count):
            key_data = reader.take(reader.take_u32())
            try:
                key = key_data.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise WireFormatError(
                    f"corrupt utf-8 key: {exc}"
                ) from None
            message[key] = _decode_from(reader, depth + 1)
        return message
    raise WireFormatError(f"unknown wire tag {tag!r}")


def decode_message(data: bytes):
    """Decode one message; trailing bytes are an error, not padding."""
    reader = _Reader(data)
    value = _decode_from(reader)
    if reader.pos != len(data):
        raise WireFormatError(
            f"{len(data) - reader.pos} trailing byte(s) after message"
        )
    return value


def encode_frame(
    value,
    max_frame: int = MAX_FRAME_BYTES,
    *,
    compress_threshold: int | None = None,
) -> bytes:
    """Encode ``value`` as one wire frame: a 4-byte little-endian
    payload length followed by the tagged message bytes.

    With ``compress_threshold`` set, payloads at least that many bytes
    long are zlib-compressed and flagged via
    :data:`FRAME_FLAG_COMPRESSED` in the length prefix -- but only
    when compression actually shrinks the payload; otherwise the raw
    form goes on the wire unflagged.  The size cap applies to the
    *message*: a payload over ``max_frame`` is rejected even if its
    compressed form would fit, keeping "what fits in a frame"
    independent of entropy.
    """
    payload = encode_message(value)
    if len(payload) > max_frame:
        raise WireFormatError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame}-byte limit"
        )
    if (
        compress_threshold is not None
        and len(payload) >= compress_threshold
    ):
        compressed = zlib.compress(payload)
        if len(compressed) < len(payload):
            return (
                _U32.pack(len(compressed) | FRAME_FLAG_COMPRESSED)
                + compressed
            )
    return _U32.pack(len(payload)) + payload


def frame_header_info(
    header: bytes, max_frame: int = MAX_FRAME_BYTES
) -> tuple[int, bool]:
    """Parse a frame header into ``(payload_size, compressed)``.

    ``payload_size`` is the number of *wire* bytes that follow the
    header (the compressed size for flagged frames).  Rejects short
    headers and oversized announcements before any payload is
    allocated.
    """
    if len(header) != FRAME_HEADER_BYTES:
        raise WireFormatError(
            f"truncated frame header: got {len(header)} of "
            f"{FRAME_HEADER_BYTES} bytes"
        )
    word = _U32.unpack(header)[0]
    compressed = bool(word & FRAME_FLAG_COMPRESSED)
    size = word & ~FRAME_FLAG_COMPRESSED
    if size > max_frame:
        raise WireFormatError(
            f"frame announces {size} bytes, over the {max_frame}-byte limit"
        )
    return size, compressed


def frame_payload_size(header: bytes, max_frame: int = MAX_FRAME_BYTES) -> int:
    """Parse a frame header; rejects short headers and oversized
    announcements before any payload is allocated.  Callers that must
    handle compressed frames use :func:`frame_header_info` instead."""
    return frame_header_info(header, max_frame)[0]


def decompress_frame_payload(
    payload: bytes, max_frame: int = MAX_FRAME_BYTES
) -> bytes:
    """Inflate a compressed frame payload, bounded by ``max_frame``.

    The no-trust rules hold through zlib: corrupt streams, truncated
    streams, trailing bytes after the stream, and decompression bombs
    (anything inflating past ``max_frame``) all raise
    :class:`~repro.middleware.errors.WireFormatError` -- the bomb
    check caps the inflater itself, so the oversized plaintext is
    never materialised.
    """
    inflater = zlib.decompressobj()
    try:
        message = inflater.decompress(payload, max_frame + 1)
    except zlib.error as exc:
        raise WireFormatError(
            f"corrupt compressed frame payload: {exc}"
        ) from None
    if len(message) > max_frame:
        raise WireFormatError(
            f"compressed frame inflates past the {max_frame}-byte limit"
        )
    if not inflater.eof:
        raise WireFormatError("truncated compressed frame payload")
    if inflater.unused_data:
        raise WireFormatError(
            f"{len(inflater.unused_data)} trailing byte(s) after "
            "compressed frame payload"
        )
    return message


def decode_frame(data: bytes, max_frame: int = MAX_FRAME_BYTES):
    """Decode one complete frame (header + payload) from ``data``,
    transparently inflating compressed frames.

    Returns ``(message, remainder)`` so stream parsers can consume a
    buffer frame by frame; raises
    :class:`~repro.middleware.errors.WireFormatError` when the buffer
    holds less than one whole frame.
    """
    size, compressed = frame_header_info(data[:FRAME_HEADER_BYTES], max_frame)
    end = FRAME_HEADER_BYTES + size
    if len(data) < end:
        raise WireFormatError(
            f"truncated frame: header announces {size} payload bytes, "
            f"{len(data) - FRAME_HEADER_BYTES} present"
        )
    payload = data[FRAME_HEADER_BYTES:end]
    if compressed:
        payload = decompress_frame_payload(payload, max_frame)
    return decode_message(payload), data[end:]
