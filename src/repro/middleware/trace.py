"""Access traces: an optional, detailed record of every access a session
performed.

Traces are the raw material for access-pattern analysis: verifying that an
algorithm's sorted accesses are (near-)lockstep, counting duplicate random
accesses (the price TA pays for bounded buffers), and rendering the
step-by-step tables that the examples print.

Two event granularities coexist:

* :class:`AccessEvent` -- one scalar access, recorded by the scalar
  methods (and by the batch methods' scalar fallback on non-columnar
  backends), and
* :class:`BatchAccessEvent` -- one *batched* access (a contiguous slice
  of ``count`` accesses against one list), recorded by the columnar
  batch fast path so tracing composes with the speculative chunked
  engines instead of forcing them scalar.

Summaries treat a batch event exactly as the ``count`` scalar events it
stands for: access counts weight by ``count``, duplicate detection
iterates the batched objects, and lockstep skew advances the list's
depth by the whole slice.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable

__all__ = [
    "AccessEvent",
    "BatchAccessEvent",
    "AccessTrace",
    "SORTED",
    "RANDOM",
]

SORTED = "S"
RANDOM = "R"


@dataclass(frozen=True)
class AccessEvent:
    """One access performed by a session.

    ``position`` is the 0-based depth of a sorted access (``-1`` for random
    accesses); ``cumulative_cost`` is the middleware cost *after* the event.
    """

    kind: str  # SORTED or RANDOM
    list_index: int
    obj: Hashable
    grade: float
    position: int
    cumulative_cost: float

    @property
    def count(self) -> int:
        return 1


@dataclass(frozen=True)
class BatchAccessEvent:
    """One batched access: ``count`` contiguous accesses on one list.

    ``first_position`` is the 0-based depth of the first entry for a
    sorted batch (``-1`` for random batches); ``cumulative_cost`` is the
    middleware cost *after* the whole batch.  ``objects`` and ``grades``
    are aligned tuples in access order.
    """

    kind: str  # SORTED or RANDOM
    list_index: int
    objects: tuple
    grades: tuple
    first_position: int
    cumulative_cost: float

    @property
    def count(self) -> int:
        return len(self.objects)


class AccessTrace:
    """An append-only sequence of :class:`AccessEvent` /
    :class:`BatchAccessEvent` with summaries."""

    def __init__(self):
        self._events: list[AccessEvent | BatchAccessEvent] = []

    def record(self, event: AccessEvent | BatchAccessEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> list[AccessEvent | BatchAccessEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def counts(self) -> Counter:
        """``Counter({SORTED: s, RANDOM: r})`` -- *access* counts, so a
        batch event contributes its whole ``count``."""
        counter: Counter = Counter()
        for e in self._events:
            counter[e.kind] += e.count
        return counter

    def duplicate_random_accesses(self) -> int:
        """Random accesses that re-fetched an already-fetched (obj, list)
        pair -- the bounded-buffer overhead of faithful TA (Section 4)."""
        seen: set[tuple[Hashable, int]] = set()
        duplicates = 0
        for e in self._events:
            if e.kind != RANDOM:
                continue
            objects = (
                e.objects if isinstance(e, BatchAccessEvent) else (e.obj,)
            )
            for obj in objects:
                key = (obj, e.list_index)
                if key in seen:
                    duplicates += 1
                else:
                    seen.add(key)
        return duplicates

    def max_lockstep_skew(self) -> int:
        """Maximum difference, over the whole run, between the deepest and
        shallowest sorted-access positions across lists.

        0 or 1 for a strictly lockstep schedule; larger values indicate a
        heuristic (Quick-Combine-style) schedule.  Footnote 6 of the paper
        guarantees instance optimality survives bounded skew.
        """
        depth: dict[int, int] = {}
        skew = 0
        for e in self._events:
            if e.kind != SORTED:
                continue
            if isinstance(e, BatchAccessEvent):
                depth[e.list_index] = e.first_position + e.count
            else:
                depth[e.list_index] = e.position + 1
            if depth:
                skew = max(skew, max(depth.values()) - min(depth.values()))
        return skew

    def format_table(self, limit: int | None = 40) -> str:
        """Human-readable table of the first ``limit`` events.  A batch
        event renders as one row spanning its ``count`` accesses."""
        rows = ["step  kind  list  object                grade     cost"]
        events = self._events if limit is None else self._events[:limit]
        step = 0
        for e in events:
            if isinstance(e, BatchAccessEvent):
                first = str(e.objects[0])[:14] if e.objects else ""
                label = f"{first} (+{max(e.count - 1, 0)})"
                grade = e.grades[0] if e.grades else float("nan")
                rows.append(
                    f"{step:>4}  {e.kind + '*':>4}  {e.list_index:>4}  "
                    f"{label:<20}  {grade:8.4f}  {e.cumulative_cost:8.2f}"
                )
                step += e.count
            else:
                rows.append(
                    f"{step:>4}  {e.kind:>4}  {e.list_index:>4}  "
                    f"{str(e.obj)[:20]:<20}  {e.grade:8.4f}  "
                    f"{e.cumulative_cost:8.2f}"
                )
                step += 1
        if limit is not None and len(self._events) > limit:
            rows.append(f"... ({len(self._events) - limit} more events)")
        return "\n".join(rows)
