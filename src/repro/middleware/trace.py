"""Access traces: an optional, detailed record of every access a session
performed.

Traces are the raw material for access-pattern analysis: verifying that an
algorithm's sorted accesses are (near-)lockstep, counting duplicate random
accesses (the price TA pays for bounded buffers), and rendering the
step-by-step tables that the examples print.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable

__all__ = ["AccessEvent", "AccessTrace", "SORTED", "RANDOM"]

SORTED = "S"
RANDOM = "R"


@dataclass(frozen=True)
class AccessEvent:
    """One access performed by a session.

    ``position`` is the 0-based depth of a sorted access (``-1`` for random
    accesses); ``cumulative_cost`` is the middleware cost *after* the event.
    """

    kind: str  # SORTED or RANDOM
    list_index: int
    obj: Hashable
    grade: float
    position: int
    cumulative_cost: float


class AccessTrace:
    """An append-only sequence of :class:`AccessEvent` with summaries."""

    def __init__(self):
        self._events: list[AccessEvent] = []

    def record(self, event: AccessEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> list[AccessEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def counts(self) -> Counter:
        """``Counter({SORTED: s, RANDOM: r})``."""
        return Counter(e.kind for e in self._events)

    def duplicate_random_accesses(self) -> int:
        """Random accesses that re-fetched an already-fetched (obj, list)
        pair -- the bounded-buffer overhead of faithful TA (Section 4)."""
        seen: set[tuple[Hashable, int]] = set()
        duplicates = 0
        for e in self._events:
            if e.kind != RANDOM:
                continue
            key = (e.obj, e.list_index)
            if key in seen:
                duplicates += 1
            else:
                seen.add(key)
        return duplicates

    def max_lockstep_skew(self) -> int:
        """Maximum difference, over the whole run, between the deepest and
        shallowest sorted-access positions across lists.

        0 or 1 for a strictly lockstep schedule; larger values indicate a
        heuristic (Quick-Combine-style) schedule.  Footnote 6 of the paper
        guarantees instance optimality survives bounded skew.
        """
        depth: dict[int, int] = {}
        skew = 0
        for e in self._events:
            if e.kind != SORTED:
                continue
            depth[e.list_index] = e.position + 1
            if depth:
                skew = max(skew, max(depth.values()) - min(depth.values()))
        return skew

    def format_table(self, limit: int | None = 40) -> str:
        """Human-readable table of the first ``limit`` events."""
        rows = ["step  kind  list  object                grade     cost"]
        events = self._events if limit is None else self._events[:limit]
        for step, e in enumerate(events):
            rows.append(
                f"{step:>4}  {e.kind:>4}  {e.list_index:>4}  "
                f"{str(e.obj)[:20]:<20}  {e.grade:8.4f}  {e.cumulative_cost:8.2f}"
            )
        if limit is not None and len(self._events) > limit:
            rows.append(f"... ({len(self._events) - limit} more events)")
        return "\n".join(rows)
