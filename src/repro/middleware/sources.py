"""Source adapters: simulated remote subsystems feeding the middleware.

Section 2 of the paper motivates the access model with concrete
subsystems -- QBIC answering ``Color='red'`` by streaming a graded set,
web search engines that allow no random access, and the Zagat / NYT /
MapQuest triple of the restaurant example (Section 7), where only one
source supports sorted access.

A :class:`GradedSource` produces a graded set for one attribute and
declares which access modes it supports.  :func:`assemble_database` checks
the sources agree on the object universe and compiles them into a
:class:`~repro.middleware.database.Database` plus the matching per-list
:class:`~repro.middleware.access.ListCapabilities`, ready to hand to an
:class:`~repro.middleware.access.AccessSession`.

These adapters exist for realism in the examples and tests; the algorithms
themselves only ever see sessions.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Hashable

from .access import ListCapabilities
from .database import Database
from .errors import DatabaseError

__all__ = ["GradedSource", "ScoredCollection", "assemble_database"]


class GradedSource:
    """A single attribute's graded set with declared capabilities.

    Parameters
    ----------
    name:
        Subsystem name (e.g. ``"qbic:color=red"``), used in messages.
    entries:
        ``[(object_id, grade), ...]``; will be ordered grade-descending
        with stable tie order as given.
    supports_sorted / supports_random:
        Capability flags as exposed by the subsystem's interface.
    """

    def __init__(
        self,
        name: str,
        entries: Iterable[tuple[Hashable, float]],
        supports_sorted: bool = True,
        supports_random: bool = True,
    ):
        self.name = name
        items = list(entries)
        if not items:
            raise DatabaseError(f"source {name!r} produced no entries")
        # stable sort: ties keep caller order, mirroring Database.from_rows
        self._entries = sorted(items, key=lambda e: -float(e[1]))
        self._grades: dict[Hashable, float] = {}
        for obj, grade in items:
            if obj in self._grades:
                raise DatabaseError(
                    f"source {name!r} graded object {obj!r} twice"
                )
            self._grades[obj] = float(grade)
        self.supports_sorted = supports_sorted
        self.supports_random = supports_random

    @property
    def objects(self) -> set[Hashable]:
        return set(self._grades)

    @property
    def entries(self) -> list[tuple[Hashable, float]]:
        """The graded set, best grade first."""
        return list(self._entries)

    def capabilities(self) -> ListCapabilities:
        return ListCapabilities(
            sorted_allowed=self.supports_sorted,
            random_allowed=self.supports_random,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        modes = "".join(
            flag for flag, on in (("S", self.supports_sorted), ("R", self.supports_random)) if on
        )
        return f"<GradedSource {self.name!r} n={len(self._grades)} modes={modes or '-'}>"


class ScoredCollection:
    """Convenience builder: score a collection of objects with callables.

    ``ScoredCollection(items).attribute("redness", fn)`` produces a
    :class:`GradedSource` per attribute, simulating subsystems that compute
    grades from raw features (the paper's "it might be expensive to compute
    the field values, but we take them as given").
    """

    def __init__(self, items: Mapping[Hashable, object]):
        if not items:
            raise DatabaseError("collection must not be empty")
        self._items = dict(items)

    def attribute(
        self,
        name: str,
        score: Callable[[object], float],
        supports_sorted: bool = True,
        supports_random: bool = True,
    ) -> GradedSource:
        entries = [(obj, float(score(item))) for obj, item in self._items.items()]
        return GradedSource(
            name,
            entries,
            supports_sorted=supports_sorted,
            supports_random=supports_random,
        )


def assemble_database(
    sources: Sequence[GradedSource],
    num_shards: int | None = None,
) -> tuple[Database, list[ListCapabilities]]:
    """Compile sources into a database and matching capability vector.

    ``num_shards`` compiles into a
    :class:`~repro.middleware.database.ShardedDatabase` over that many
    contiguous row-range shards instead of the scalar backend -- each
    source's exact tie order is preserved across the shard partition, so
    algorithm behaviour (and the tie-placement-sensitive examples) is
    unchanged.

    Raises :class:`DatabaseError` if the sources disagree on the object
    universe or none of them supports sorted access (then no middleware
    algorithm could even enumerate objects without wild guesses).
    """
    if not sources:
        raise DatabaseError("need at least one source")
    universe = sources[0].objects
    for src in sources[1:]:
        if src.objects != universe:
            only_first = list(universe - src.objects)[:3]
            only_other = list(src.objects - universe)[:3]
            raise DatabaseError(
                f"sources {sources[0].name!r} and {src.name!r} disagree on "
                f"the object universe (e.g. {only_first} vs {only_other})"
            )
    if not any(src.supports_sorted for src in sources):
        raise DatabaseError(
            "at least one source must support sorted access (|Z| >= 1)"
        )
    database: Database = Database.from_columns(
        [src.entries for src in sources]
    )
    if num_shards is not None:
        database = database.to_sharded(num_shards)
    return database, [src.capabilities() for src in sources]
