"""The access session: the only gateway through which algorithms touch a
database.

A session wraps a :class:`~repro.middleware.database.Database` and

* implements the two access modes of Section 2 (sorted access pops the
  next entry of a list; random access fetches a named object's grade),
* charges every access against a :class:`~repro.middleware.cost.CostModel`,
* enforces per-list capabilities (a list may forbid sorted and/or random
  access, modelling search engines without random access or the
  restricted-sorted-access scenario of Section 7), and
* optionally certifies the *no-wild-guess* property of Theorem 6.1 by
  raising :class:`~repro.middleware.errors.WildGuessError` when an object
  is random-accessed before ever being seen under sorted access.

Algorithms receive a session, never a database, so the access counts and
middleware cost reported by a run are trustworthy by construction.

Batched access plane
--------------------

The scalar methods (:meth:`AccessSession.sorted_access`,
:meth:`AccessSession.random_access`) charge one access per call.  Three
batched methods amortise the Python-level cost of the paper's inner
loops **without changing the cost accounting in any way**:

* :meth:`AccessSession.sorted_access_batch` pops the next ``n`` entries
  of one list and charges exactly the number of entries returned (a
  batch overrunning the end of the list returns, and charges, only what
  exists -- exhaustion stays free);
* :meth:`AccessSession.sorted_access_round` performs one sorted access
  on every sorted-capable, non-exhausted list in list order (the
  lockstep round of NRA/CA), charging one access per entry returned;
* :meth:`AccessSession.random_access_batch` fetches the grades of many
  objects from one list and charges ``len(objects)`` accesses --
  including repeats, exactly like the scalar method.

Semantics are identical to issuing the equivalent scalar calls in
order: per-list counters, depth, wild-guess certification (a batch that
hits a wild guess charges the accesses *before* the offending object,
then raises, just as a scalar loop would have), capability checks and
trace recording are all preserved.  On the scalar backend the batch
methods fall back to the scalar loop (so the scalar plane's event
stream is byte-identical regardless); when the database is a
:class:`~repro.middleware.database.ColumnarDatabase` they instead serve
array slices and fancy-indexed gathers in O(1) Python operations per
batch, recording one *batch-granularity*
:class:`~repro.middleware.trace.BatchAccessEvent` per call when a trace
is requested -- tracing and the fast path compose, and the trace
summaries weight batch events by their access counts.  A
:class:`~repro.middleware.database.ShardedDatabase` takes the same fast
path: its per-list order arrays are materialised lazily by k-way merge
cursors over the shard runs (bit-identical to the columnar orderings),
and its fancy-indexed gathers into the concatenated matrix are the
vectorised form of per-shard random-access routing.  :attr:`AccessSession.supports_batches`
tells algorithms whether that fast path is active; every bound-based
algorithm in :mod:`repro.core` (TA and its TA-theta/TA-Z hooks, NRA,
CA, Stream-Combine) uses it to pick between its scalar reference loop
and its speculative chunked engine (see :meth:`AccessSession.columnar_view`
for the speculation contract, and ``docs/ARCHITECTURE.md`` for the
engine scheme).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from .cost import CostModel, QueryBudget, UNIT_COSTS
from .database import ColumnarDatabase, Database
from .errors import (
    CapabilityError,
    ListLostError,
    ServiceUnavailableError,
    UnknownListError,
    UnknownObjectError,
    WildGuessError,
)
from .trace import RANDOM, SORTED, AccessEvent, AccessTrace, BatchAccessEvent

__all__ = [
    "ListCapabilities",
    "AccessStats",
    "AccessSession",
    "SortedBatch",
    "RoundBatch",
]


@dataclass(frozen=True)
class ListCapabilities:
    """Which access modes a list supports.

    The paper's scenarios map to:

    * default middleware (QBIC-like): both modes allowed;
    * web search engine: ``random_allowed=False`` (Section 2);
    * NYT-Review / MapQuest in the restaurant example:
      ``sorted_allowed=False`` (Section 7).
    """

    sorted_allowed: bool = True
    random_allowed: bool = True


@dataclass
class AccessStats:
    """Snapshot of a session's accounting."""

    sorted_accesses: int = 0
    random_accesses: int = 0
    sorted_by_list: dict[int, int] = field(default_factory=dict)
    random_by_list: dict[int, int] = field(default_factory=dict)
    middleware_cost: float = 0.0
    depth: int = 0
    distinct_objects_seen: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"s={self.sorted_accesses} r={self.random_accesses} "
            f"cost={self.middleware_cost:g} depth={self.depth}"
        )


@dataclass(frozen=True)
class SortedBatch:
    """Result of one :meth:`AccessSession.sorted_access_batch` call.

    ``objects[p]`` / ``grades[p]`` is the ``p``-th entry popped;
    ``rows`` holds the backing row indices when the database is columnar
    (``None`` on the scalar backend), letting callers hand them back to
    :meth:`AccessSession.random_access_batch` to skip id interning.
    """

    list_index: int
    objects: list
    grades: np.ndarray
    rows: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.objects)

    def __bool__(self) -> bool:
        return bool(self.objects)


@dataclass(frozen=True)
class RoundBatch:
    """Result of one :meth:`AccessSession.sorted_access_round` call: one
    entry per sorted-capable, non-exhausted list, in list order."""

    lists: list
    objects: list
    grades: list
    rows: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.objects)

    def __bool__(self) -> bool:
        return bool(self.objects)


class AccessSession:
    """Accounted, capability-checked access to one database.

    Parameters
    ----------
    database:
        The database to expose.
    cost_model:
        Access costs; defaults to ``cS = cR = 1``.
    capabilities:
        Either a single :class:`ListCapabilities` applied to every list or
        a sequence of per-list capabilities.
    forbid_wild_guesses:
        When true, random access to an object not previously returned by
        *any* sorted access raises :class:`WildGuessError`.
    record_trace:
        When true, every access is appended to :attr:`trace`.
    budget:
        Optional :class:`~repro.middleware.cost.QueryBudget`.  The
        session never enforces it itself -- engines poll
        :attr:`budget_exceeded` at consistent points and halt with
        ``HaltReason.DEADLINE`` -- but it lives here so one object
        travels with the session through ``run_on`` and the async
        facade.
    survive_list_loss:
        When true, a :class:`ServiceUnavailableError` raised by the
        backing store during *sorted* access marks the list as lost and
        reports exhaustion (``None``) instead of propagating; *random*
        access to a lost list raises :class:`ListLostError` so the
        engines can switch to their degraded completion path.  Off by
        default: a plain session fails loudly, exactly as before.
    """

    def __init__(
        self,
        database: Database,
        cost_model: CostModel = UNIT_COSTS,
        capabilities: ListCapabilities | Sequence[ListCapabilities] | None = None,
        forbid_wild_guesses: bool = False,
        record_trace: bool = False,
        *,
        budget: QueryBudget | None = None,
        survive_list_loss: bool = False,
    ):
        self._db = database
        self._cost_model = cost_model
        m = database.num_lists
        if capabilities is None:
            self._capabilities = [ListCapabilities()] * m
        elif isinstance(capabilities, ListCapabilities):
            self._capabilities = [capabilities] * m
        else:
            caps = list(capabilities)
            if len(caps) != m:
                raise ValueError(
                    f"got {len(caps)} capability entries for m={m} lists"
                )
            self._capabilities = caps
        self._forbid_wild_guesses = forbid_wild_guesses
        self._budget = budget
        self._survive_list_loss = survive_list_loss
        # list index -> depth consumed when the loss was detected
        self._lost_lists: dict[int, int] = {}
        self._positions = [0] * m
        self._sorted_by_list = [0] * m
        self._random_by_list = [0] * m
        self._seen_sorted: set[Hashable] = set()
        self.trace: AccessTrace | None = AccessTrace() if record_trace else None
        # the observability plane's bound-trajectory probe; engines feed
        # it at round/chunk boundaries when one is attached (it only
        # *reads* the session, so attaching one perturbs nothing)
        self.probe = None
        self._columnar: ColumnarDatabase | None = (
            database._speculation_store()
            if isinstance(database, ColumnarDatabase)
            else None
        )

    # ------------------------------------------------------------------
    # convenience constructors for the paper's scenarios
    # ------------------------------------------------------------------
    @classmethod
    def no_random(
        cls, database: Database, cost_model: CostModel = UNIT_COSTS, **kwargs
    ) -> "AccessSession":
        """A session where random access is impossible (NRA's setting)."""
        return cls(
            database,
            cost_model,
            capabilities=ListCapabilities(random_allowed=False),
            **kwargs,
        )

    @classmethod
    def sorted_only_on(
        cls,
        database: Database,
        z: Iterable[int],
        cost_model: CostModel = UNIT_COSTS,
        **kwargs,
    ) -> "AccessSession":
        """A session where only lists in ``z`` allow sorted access
        (Section 7's setting; every list still allows random access)."""
        z = set(z)
        caps = [
            ListCapabilities(sorted_allowed=(i in z), random_allowed=True)
            for i in range(database.num_lists)
        ]
        if not any(c.sorted_allowed for c in caps):
            raise ValueError("Z must contain at least one list (|Z| >= 1)")
        return cls(database, cost_model, capabilities=caps, **kwargs)

    # ------------------------------------------------------------------
    # shape and capability introspection (free of charge)
    # ------------------------------------------------------------------
    @property
    def num_lists(self) -> int:
        return self._db.num_lists

    @property
    def num_objects(self) -> int:
        """``N``.  The paper's model takes the database size as known to
        the algorithm (it appears in the cost bounds); NRA uses it to
        decide whether unseen objects remain."""
        return self._db.num_objects

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    def capabilities(self, list_index: int) -> ListCapabilities:
        self._check_list(list_index)
        return self._capabilities[list_index]

    @property
    def sorted_lists(self) -> list[int]:
        """Indices of lists that allow sorted access (the set ``Z``)."""
        return [
            i for i, c in enumerate(self._capabilities) if c.sorted_allowed
        ]

    # ------------------------------------------------------------------
    # the two access modes
    # ------------------------------------------------------------------
    def sorted_access(self, list_index: int):
        """Pop the next entry of list ``list_index``.

        Returns ``(object, grade)`` or ``None`` once the list is exhausted
        (exhaustion is free; only returned entries are charged).
        """
        self._check_list(list_index)
        if not self._capabilities[list_index].sorted_allowed:
            raise CapabilityError("sorted", list_index)
        if list_index in self._lost_lists:
            return None
        position = self._positions[list_index]
        try:
            entry = self._db.sorted_entry(list_index, position)
        except ServiceUnavailableError:
            if not self._survive_list_loss:
                raise
            self._lost_lists[list_index] = position
            return None
        if entry is None:
            return None
        self._positions[list_index] = position + 1
        self._sorted_by_list[list_index] += 1
        obj, grade = entry
        self._seen_sorted.add(obj)
        if self.trace is not None:
            self.trace.record(
                AccessEvent(
                    SORTED, list_index, obj, grade, position, self.middleware_cost
                )
            )
        return entry

    def random_access(self, list_index: int, obj: Hashable) -> float:
        """Fetch the grade of ``obj`` in list ``list_index``.

        Every call is charged, including repeats for the same pair -- the
        bounded-buffer TA of Section 4 relies on exactly that behaviour.
        """
        self._check_list(list_index)
        if not self._capabilities[list_index].random_allowed:
            raise CapabilityError("random", list_index)
        if list_index in self._lost_lists:
            raise ListLostError(f"list-{list_index}", list_index)
        if self._forbid_wild_guesses and obj not in self._seen_sorted:
            raise WildGuessError(obj, list_index)
        try:
            grade = self._db.grade(obj, list_index)  # raises UnknownObjectError
        except ListLostError:
            raise
        except ServiceUnavailableError as exc:
            if not self._survive_list_loss:
                raise
            self._lost_lists[list_index] = self._positions[list_index]
            raise ListLostError(
                f"list-{list_index}", list_index, exc.attempts
            ) from exc
        self._random_by_list[list_index] += 1
        if self.trace is not None:
            self.trace.record(
                AccessEvent(
                    RANDOM, list_index, obj, grade, -1, self.middleware_cost
                )
            )
        return grade

    # ------------------------------------------------------------------
    # the batched access plane (same accounting, amortised overhead; see
    # the module docstring)
    # ------------------------------------------------------------------
    @property
    def supports_batches(self) -> bool:
        """True when batched accesses are served by array slices
        (columnar database).  The batch methods work either way; this
        flag lets algorithms pick their faster inner loop.  Trace
        recording composes with the fast path: batch calls then record
        batch-granularity events instead of per-access ones."""
        return self._columnar is not None

    def columnar_view(self) -> ColumnarDatabase | None:
        """The raw columnar storage, for *speculative* engine execution
        (``None`` unless :attr:`supports_batches`).

        Contract: reads through the view are uncharged and carry no
        model-level meaning.  An engine may scan ahead through the view
        to locate the exact round at which the paper's sequential
        algorithm halts, but every entry that influences its *output*
        must afterwards be realised -- and thereby charged -- through
        the session's (batched) access methods, consuming exactly the
        prefix the scalar reference loop would have consumed.  The
        reported :class:`AccessStats` therefore still describe the
        paper's algorithm faithfully; speculation is an engine-level
        device (in the spirit of hardware speculative execution), and
        the differential test suite holds the engines to bit-for-bit
        equality with the scalar reference loops -- results, halting
        reasons, and access accounting alike.
        """
        return self._columnar

    def sorted_access_batch(self, list_index: int, n: int) -> SortedBatch:
        """Pop up to ``n`` entries of list ``list_index``.

        Charges exactly the number of entries returned; a batch that
        overruns the end of the list returns only the remaining entries
        (possibly zero), and exhaustion itself stays free of charge.
        """
        if n < 0:
            raise ValueError(f"batch size must be >= 0, got {n}")
        self._check_list(list_index)
        if not self._capabilities[list_index].sorted_allowed:
            raise CapabilityError("sorted", list_index)
        db = self._columnar
        if db is None:
            objects: list = []
            grades: list[float] = []
            for _ in range(n):
                entry = self.sorted_access(list_index)
                if entry is None:
                    break
                objects.append(entry[0])
                grades.append(entry[1])
            return SortedBatch(
                list_index, objects, np.asarray(grades, dtype=np.float64)
            )
        position = self._positions[list_index]
        count = min(n, db.num_objects - position)
        if count <= 0:
            return SortedBatch(
                list_index, [], np.empty(0, dtype=np.float64), None
            )
        rows = db._order_rows[list_index][position : position + count]
        grades = db._order_grades[list_index][position : position + count]
        # the slice views the database's own arrays; freeze it so a
        # mutating caller cannot corrupt the shared orderings
        rows.flags.writeable = False
        grades.flags.writeable = False
        objects = db.ids_for_rows(rows)
        self._positions[list_index] = position + count
        self._sorted_by_list[list_index] += count
        self._seen_sorted.update(objects)
        if self.trace is not None:
            self.trace.record(
                BatchAccessEvent(
                    SORTED,
                    list_index,
                    tuple(objects),
                    tuple(grades.tolist()),
                    position,
                    self.middleware_cost,
                )
            )
        return SortedBatch(list_index, objects, grades, rows)

    def sorted_access_round(self) -> RoundBatch:
        """One sorted access on every sorted-capable, non-exhausted list,
        in list order -- the lockstep round of NRA and CA.  Charges one
        access per entry returned.

        Kept as public batched-plane API for algorithm authors writing
        lockstep loops: the in-tree engines now speculate whole chunks
        instead (see :meth:`columnar_view`), but a round-at-a-time
        batched loop remains the simplest correct way to amortise the
        scalar methods without taking on the speculation contract.
        """
        db = self._columnar
        if db is None:
            lists: list[int] = []
            objects: list = []
            grades: list[float] = []
            for i, caps in enumerate(self._capabilities):
                if not caps.sorted_allowed:
                    continue
                entry = self.sorted_access(i)
                if entry is None:
                    continue
                lists.append(i)
                objects.append(entry[0])
                grades.append(entry[1])
            return RoundBatch(lists, objects, grades)
        n = db.num_objects
        lists: list[int] = []
        row_list: list[int] = []
        grades: list[float] = []
        positions = self._positions
        sorted_by_list = self._sorted_by_list
        for i, caps in enumerate(self._capabilities):
            if not caps.sorted_allowed:
                continue
            position = positions[i]
            if position >= n:
                continue
            lists.append(i)
            row_list.append(int(db._order_rows[i][position]))
            grades.append(float(db._order_grades[i][position]))
            positions[i] = position + 1
            sorted_by_list[i] += 1
        rows = np.asarray(row_list, dtype=np.intp)
        objects = db.ids_for_rows(rows)
        self._seen_sorted.update(objects)
        if self.trace is not None:
            # one batch event per list touched: each list advanced by
            # exactly one entry this round (position is post-increment)
            for pos_in_round, i in enumerate(lists):
                self.trace.record(
                    BatchAccessEvent(
                        SORTED,
                        i,
                        (objects[pos_in_round],),
                        (grades[pos_in_round],),
                        positions[i] - 1,
                        self.middleware_cost,
                    )
                )
        return RoundBatch(lists, objects, grades, rows)

    def random_access_across(
        self, obj: Hashable, lists: Sequence[int]
    ) -> list[float]:
        """Fetch ``obj``'s grade in each of ``lists``, charging one
        random access per list, in list order -- semantically identical
        to calling :meth:`random_access` in a loop (which is exactly
        what this base implementation does).

        This is the access shape of TA's resolution step and CA's
        random phase: one object, its ``m - 1`` (or missing) fields.
        Sessions over remote services override it to issue the per-list
        round trips *concurrently* while replaying the charges in list
        order (see
        :meth:`~repro.services.session.AsyncAccessSession.random_access_across`),
        so the paper's scalar loops gain the overlap win without
        touching their accounting.
        """
        return [self.random_access(i, obj) for i in lists]

    def random_access_batch(
        self,
        list_index: int,
        objects: Sequence[Hashable] | None,
        rows: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fetch the grades of ``objects`` in list ``list_index``,
        charging one random access per object (repeats included).

        ``rows`` may carry the columnar row indices (e.g. from a
        :class:`SortedBatch`) to skip the id interning table; at least
        one of ``objects``/``rows`` must be given.  If the no-wild-guess
        certificate is armed and some object was never seen under sorted
        access, the objects *before* it are charged (their grades were
        already served), then :class:`WildGuessError` is raised --
        exactly the accounting of the equivalent scalar loop.
        """
        self._check_list(list_index)
        if not self._capabilities[list_index].random_allowed:
            raise CapabilityError("random", list_index)
        def replay_scalar() -> np.ndarray:
            # per-object scalar accesses: identical charging, including
            # the partially-charged prefix when a call raises mid-batch
            return np.array(
                [self.random_access(list_index, obj) for obj in objects],
                dtype=np.float64,
            )

        db = self._columnar
        if db is None:
            if objects is None:
                raise ValueError(
                    "objects may be omitted only on the columnar fast path"
                )
            return replay_scalar()
        if rows is None:
            if objects is None:
                raise ValueError("need objects or rows")
            try:
                rows = db.rows_for(objects)
            except (UnknownObjectError, TypeError):
                # unknown object somewhere in the batch
                return replay_scalar()
        if self._forbid_wild_guesses:
            if objects is None:
                objects = db.ids_for_rows(rows)
            seen = self._seen_sorted
            for prefix, obj in enumerate(objects):
                if obj not in seen:
                    self._random_by_list[list_index] += prefix
                    if self.trace is not None and prefix:
                        # the scalar loop would have recorded the
                        # charged prefix before raising; mirror it as
                        # one batch event
                        prefix_rows = rows[:prefix]
                        self.trace.record(
                            BatchAccessEvent(
                                RANDOM,
                                list_index,
                                tuple(objects[:prefix]),
                                tuple(
                                    db._matrix[
                                        prefix_rows, list_index
                                    ].tolist()
                                ),
                                -1,
                                self.middleware_cost,
                            )
                        )
                    raise WildGuessError(obj, list_index)
        grades = db._matrix[rows, list_index]
        self._random_by_list[list_index] += len(rows)
        if self.trace is not None:
            if objects is None:
                objects = db.ids_for_rows(rows)
            self.trace.record(
                BatchAccessEvent(
                    RANDOM,
                    list_index,
                    tuple(objects),
                    tuple(grades.tolist()),
                    -1,
                    self.middleware_cost,
                )
            )
        return grades

    # ------------------------------------------------------------------
    # cursor state
    # ------------------------------------------------------------------
    def position(self, list_index: int) -> int:
        """Number of entries consumed from list ``list_index``."""
        self._check_list(list_index)
        return self._positions[list_index]

    @property
    def depth(self) -> int:
        """``d = max_i d_i``, the paper's notion of the depth reached."""
        return max(self._positions)

    def exhausted(self, list_index: int) -> bool:
        self._check_list(list_index)
        if list_index in self._lost_lists:
            return True
        return self._positions[list_index] >= self._db.num_objects

    @property
    def all_sorted_exhausted(self) -> bool:
        """True when every sorted-capable list has been fully consumed."""
        lists = self.sorted_lists
        return bool(lists) and all(self.exhausted(i) for i in lists)

    @property
    def objects_seen_sorted(self) -> int:
        """Number of distinct objects seen under sorted access so far."""
        return len(self._seen_sorted)

    def seen_under_sorted(self, obj: Hashable) -> bool:
        return obj in self._seen_sorted

    # ------------------------------------------------------------------
    # resilience state
    # ------------------------------------------------------------------
    @property
    def budget(self) -> QueryBudget | None:
        return self._budget

    @property
    def budget_exceeded(self) -> bool:
        """True once the attached :class:`QueryBudget` has expired (always
        false without one).  Engines poll this at round/chunk boundaries."""
        return self._budget is not None and self._budget.expired(
            self.middleware_cost
        )

    @property
    def survive_list_loss(self) -> bool:
        return self._survive_list_loss

    @property
    def lost_lists(self) -> dict[int, int]:
        """Lists declared lost, mapped to the depth consumed at loss time
        (a copy; mutations don't write through)."""
        return dict(self._lost_lists)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def sorted_accesses(self) -> int:
        return sum(self._sorted_by_list)

    @property
    def random_accesses(self) -> int:
        return sum(self._random_by_list)

    @property
    def middleware_cost(self) -> float:
        return self._cost_model.cost(self.sorted_accesses, self.random_accesses)

    def stats(self) -> AccessStats:
        return AccessStats(
            sorted_accesses=self.sorted_accesses,
            random_accesses=self.random_accesses,
            sorted_by_list={
                i: n for i, n in enumerate(self._sorted_by_list) if n
            },
            random_by_list={
                i: n for i, n in enumerate(self._random_by_list) if n
            },
            middleware_cost=self.middleware_cost,
            depth=self.depth,
            distinct_objects_seen=len(self._seen_sorted),
        )

    def _check_list(self, list_index: int) -> None:
        if not (0 <= list_index < self._db.num_lists):
            raise UnknownListError(list_index, self._db.num_lists)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AccessSession {self._db!r} s={self.sorted_accesses} "
            f"r={self.random_accesses} cost={self.middleware_cost:g}>"
        )
