"""The access session: the only gateway through which algorithms touch a
database.

A session wraps a :class:`~repro.middleware.database.Database` and

* implements the two access modes of Section 2 (sorted access pops the
  next entry of a list; random access fetches a named object's grade),
* charges every access against a :class:`~repro.middleware.cost.CostModel`,
* enforces per-list capabilities (a list may forbid sorted and/or random
  access, modelling search engines without random access or the
  restricted-sorted-access scenario of Section 7), and
* optionally certifies the *no-wild-guess* property of Theorem 6.1 by
  raising :class:`~repro.middleware.errors.WildGuessError` when an object
  is random-accessed before ever being seen under sorted access.

Algorithms receive a session, never a database, so the access counts and
middleware cost reported by a run are trustworthy by construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Hashable

from .cost import CostModel, UNIT_COSTS
from .database import Database
from .errors import CapabilityError, UnknownListError, WildGuessError
from .trace import RANDOM, SORTED, AccessEvent, AccessTrace

__all__ = ["ListCapabilities", "AccessStats", "AccessSession"]


@dataclass(frozen=True)
class ListCapabilities:
    """Which access modes a list supports.

    The paper's scenarios map to:

    * default middleware (QBIC-like): both modes allowed;
    * web search engine: ``random_allowed=False`` (Section 2);
    * NYT-Review / MapQuest in the restaurant example:
      ``sorted_allowed=False`` (Section 7).
    """

    sorted_allowed: bool = True
    random_allowed: bool = True


@dataclass
class AccessStats:
    """Snapshot of a session's accounting."""

    sorted_accesses: int = 0
    random_accesses: int = 0
    sorted_by_list: dict[int, int] = field(default_factory=dict)
    random_by_list: dict[int, int] = field(default_factory=dict)
    middleware_cost: float = 0.0
    depth: int = 0
    distinct_objects_seen: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"s={self.sorted_accesses} r={self.random_accesses} "
            f"cost={self.middleware_cost:g} depth={self.depth}"
        )


class AccessSession:
    """Accounted, capability-checked access to one database.

    Parameters
    ----------
    database:
        The database to expose.
    cost_model:
        Access costs; defaults to ``cS = cR = 1``.
    capabilities:
        Either a single :class:`ListCapabilities` applied to every list or
        a sequence of per-list capabilities.
    forbid_wild_guesses:
        When true, random access to an object not previously returned by
        *any* sorted access raises :class:`WildGuessError`.
    record_trace:
        When true, every access is appended to :attr:`trace`.
    """

    def __init__(
        self,
        database: Database,
        cost_model: CostModel = UNIT_COSTS,
        capabilities: ListCapabilities | Sequence[ListCapabilities] | None = None,
        forbid_wild_guesses: bool = False,
        record_trace: bool = False,
    ):
        self._db = database
        self._cost_model = cost_model
        m = database.num_lists
        if capabilities is None:
            self._capabilities = [ListCapabilities()] * m
        elif isinstance(capabilities, ListCapabilities):
            self._capabilities = [capabilities] * m
        else:
            caps = list(capabilities)
            if len(caps) != m:
                raise ValueError(
                    f"got {len(caps)} capability entries for m={m} lists"
                )
            self._capabilities = caps
        self._forbid_wild_guesses = forbid_wild_guesses
        self._positions = [0] * m
        self._sorted_by_list = [0] * m
        self._random_by_list = [0] * m
        self._seen_sorted: set[Hashable] = set()
        self.trace: AccessTrace | None = AccessTrace() if record_trace else None

    # ------------------------------------------------------------------
    # convenience constructors for the paper's scenarios
    # ------------------------------------------------------------------
    @classmethod
    def no_random(
        cls, database: Database, cost_model: CostModel = UNIT_COSTS, **kwargs
    ) -> "AccessSession":
        """A session where random access is impossible (NRA's setting)."""
        return cls(
            database,
            cost_model,
            capabilities=ListCapabilities(random_allowed=False),
            **kwargs,
        )

    @classmethod
    def sorted_only_on(
        cls,
        database: Database,
        z: Iterable[int],
        cost_model: CostModel = UNIT_COSTS,
        **kwargs,
    ) -> "AccessSession":
        """A session where only lists in ``z`` allow sorted access
        (Section 7's setting; every list still allows random access)."""
        z = set(z)
        caps = [
            ListCapabilities(sorted_allowed=(i in z), random_allowed=True)
            for i in range(database.num_lists)
        ]
        if not any(c.sorted_allowed for c in caps):
            raise ValueError("Z must contain at least one list (|Z| >= 1)")
        return cls(database, cost_model, capabilities=caps, **kwargs)

    # ------------------------------------------------------------------
    # shape and capability introspection (free of charge)
    # ------------------------------------------------------------------
    @property
    def num_lists(self) -> int:
        return self._db.num_lists

    @property
    def num_objects(self) -> int:
        """``N``.  The paper's model takes the database size as known to
        the algorithm (it appears in the cost bounds); NRA uses it to
        decide whether unseen objects remain."""
        return self._db.num_objects

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    def capabilities(self, list_index: int) -> ListCapabilities:
        self._check_list(list_index)
        return self._capabilities[list_index]

    @property
    def sorted_lists(self) -> list[int]:
        """Indices of lists that allow sorted access (the set ``Z``)."""
        return [
            i for i, c in enumerate(self._capabilities) if c.sorted_allowed
        ]

    # ------------------------------------------------------------------
    # the two access modes
    # ------------------------------------------------------------------
    def sorted_access(self, list_index: int):
        """Pop the next entry of list ``list_index``.

        Returns ``(object, grade)`` or ``None`` once the list is exhausted
        (exhaustion is free; only returned entries are charged).
        """
        self._check_list(list_index)
        if not self._capabilities[list_index].sorted_allowed:
            raise CapabilityError("sorted", list_index)
        position = self._positions[list_index]
        entry = self._db.sorted_entry(list_index, position)
        if entry is None:
            return None
        self._positions[list_index] = position + 1
        self._sorted_by_list[list_index] += 1
        obj, grade = entry
        self._seen_sorted.add(obj)
        if self.trace is not None:
            self.trace.record(
                AccessEvent(
                    SORTED, list_index, obj, grade, position, self.middleware_cost
                )
            )
        return entry

    def random_access(self, list_index: int, obj: Hashable) -> float:
        """Fetch the grade of ``obj`` in list ``list_index``.

        Every call is charged, including repeats for the same pair -- the
        bounded-buffer TA of Section 4 relies on exactly that behaviour.
        """
        self._check_list(list_index)
        if not self._capabilities[list_index].random_allowed:
            raise CapabilityError("random", list_index)
        if self._forbid_wild_guesses and obj not in self._seen_sorted:
            raise WildGuessError(obj, list_index)
        grade = self._db.grade(obj, list_index)  # raises UnknownObjectError
        self._random_by_list[list_index] += 1
        if self.trace is not None:
            self.trace.record(
                AccessEvent(
                    RANDOM, list_index, obj, grade, -1, self.middleware_cost
                )
            )
        return grade

    # ------------------------------------------------------------------
    # cursor state
    # ------------------------------------------------------------------
    def position(self, list_index: int) -> int:
        """Number of entries consumed from list ``list_index``."""
        self._check_list(list_index)
        return self._positions[list_index]

    @property
    def depth(self) -> int:
        """``d = max_i d_i``, the paper's notion of the depth reached."""
        return max(self._positions)

    def exhausted(self, list_index: int) -> bool:
        self._check_list(list_index)
        return self._positions[list_index] >= self._db.num_objects

    @property
    def all_sorted_exhausted(self) -> bool:
        """True when every sorted-capable list has been fully consumed."""
        lists = self.sorted_lists
        return bool(lists) and all(self.exhausted(i) for i in lists)

    @property
    def objects_seen_sorted(self) -> int:
        """Number of distinct objects seen under sorted access so far."""
        return len(self._seen_sorted)

    def seen_under_sorted(self, obj: Hashable) -> bool:
        return obj in self._seen_sorted

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def sorted_accesses(self) -> int:
        return sum(self._sorted_by_list)

    @property
    def random_accesses(self) -> int:
        return sum(self._random_by_list)

    @property
    def middleware_cost(self) -> float:
        return self._cost_model.cost(self.sorted_accesses, self.random_accesses)

    def stats(self) -> AccessStats:
        return AccessStats(
            sorted_accesses=self.sorted_accesses,
            random_accesses=self.random_accesses,
            sorted_by_list={
                i: n for i, n in enumerate(self._sorted_by_list) if n
            },
            random_by_list={
                i: n for i, n in enumerate(self._random_by_list) if n
            },
            middleware_cost=self.middleware_cost,
            depth=self.depth,
            distinct_objects_seen=len(self._seen_sorted),
        )

    def _check_list(self, list_index: int) -> None:
        if not (0 <= list_index < self._db.num_lists):
            raise UnknownListError(list_index, self._db.num_lists)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AccessSession {self._db!r} s={self.sorted_accesses} "
            f"r={self.random_accesses} cost={self.middleware_cost:g}>"
        )
