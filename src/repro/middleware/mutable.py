"""Mutable array backends: amendable sorted segments + live deltas.

Every other backend in the repro is build-once/read-only; this module
adds the mutation plane the paper's *standing* middleware setting needs
(grades change as sources re-rank, objects come and go).  The write API
is the :class:`MutableDatabase` contract -- ``insert`` /
``update_grade`` / ``delete`` / ``version`` -- and the storage design
is LSM-flavoured but exact:

* **Base segments.**  The sorted runs built at construction (one global
  stable-argsort run per list for the columnar backend, one run per
  shard per list for the sharded backend) become *amendable*: each
  keeps its arrays immutable but carries a per-list tombstone mask
  (``_stale``) marking entries that a later mutation superseded.
* **Delta segments.**  Each list additionally owns a small mutable
  segment (``_delta``: slot -> grade) holding inserted objects and the
  *current* grade of updated objects.  Sorting the delta by
  *(grade descending, slot ascending)* makes it one more run.
* **Exact merge.**  Sorted order is produced by handing the tombstone-
  filtered base runs plus the delta run to the existing
  :class:`~repro.middleware.database.ListMergeCursor` -- the same
  tie-key machinery the sharded backend uses -- so the global order
  stays *exact*, never approximate.  The tie key is the storage slot
  index, which is precisely the stable-argsort tie convention; hence
  the parity theorem below.
* **Compaction.**  When a list's overhead (tombstones + delta entries)
  crosses the configured threshold, :meth:`~MutableColumnarDatabase.
  compact` folds everything back into fresh base runs over a dense
  slot space (inserted slots join the last shard's range on the
  sharded backend).

**Parity.**  Filtering a slot-ordered-tie run preserves the relative
slot order of the surviving entries, and the slot -> compact-row remap
is monotone; therefore the merged *(grade desc, slot asc)* order over
the live entries is bit-identical to the stable argsort of the
compacted live matrix.  After *any* mutation sequence, every read --
``sorted_entry``, ``top_k``, the batched access plane, a full engine
run -- matches a from-scratch rebuild of the current contents exactly
(items, grades, tie order); the stateful hypothesis suite in
``tests/test_mutable_views.py`` enforces this.

Tie semantics: the mutable backends support the deterministic
stable-argsort tie convention only (ties ordered by storage slot, i.e.
insertion order).  Adversarial explicit tie placements (the
``from_columns`` constructions used by the paper's counterexamples)
are rejected at construction -- re-base them through a read-only
backend first.

Mutations invalidate any in-flight
:class:`~repro.middleware.access.AccessSession` over the database (the
grade matrix is updated in place); serialise mutations against running
queries, as :class:`~repro.server.service.QueryService` does.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .database import (
    ColumnarDatabase,
    Database,
    ListMergeCursor,
    ObjectId,
    ShardedDatabase,
    _MergedOrders,
    _Run,
    _coerce_array_and_ids,
    shard_bounds_for,
)
from .errors import DatabaseError, UnknownObjectError

__all__ = [
    "MutationEvent",
    "MutableDatabase",
    "MutableColumnarDatabase",
    "MutableShardedDatabase",
]


@dataclass(frozen=True)
class MutationEvent:
    """One applied mutation, as delivered to listeners.

    ``grades`` is the object's full grade vector *after* the mutation
    (for a delete: the vector it had just before removal).
    ``list_index`` is set for ``update`` events only.  ``version`` is
    the database version the mutation produced.
    """

    kind: str  # "insert" | "update" | "delete"
    obj: ObjectId
    grades: tuple[float, ...]
    list_index: int | None
    version: int


class MutableDatabase(ABC):
    """The write plane of the database contract.

    The read plane is :class:`~repro.middleware.database.Database`
    (unchanged); a mutable backend implements both.  Every mutation
    increments :attr:`version` and notifies registered listeners with a
    :class:`MutationEvent` -- the hook :class:`~repro.views.LiveView`
    builds continuous top-k maintenance on.
    """

    _listeners: list[Callable[[MutationEvent], None]]

    @abstractmethod
    def insert(self, obj: ObjectId, grades: Sequence[float]) -> None:
        """Add a new object with the given ``m`` grades."""

    @abstractmethod
    def update_grade(
        self, obj: ObjectId, list_index: int, grade: float
    ) -> None:
        """Change one grade of an existing object."""

    @abstractmethod
    def delete(self, obj: ObjectId) -> None:
        """Remove an existing object from every list."""

    @property
    @abstractmethod
    def version(self) -> int:
        """Monotone mutation counter (0 at construction)."""

    def add_listener(
        self, listener: Callable[[MutationEvent], None]
    ) -> None:
        """Register a callback invoked (synchronously) after every
        applied mutation."""
        self._listeners.append(listener)

    def remove_listener(
        self, listener: Callable[[MutationEvent], None]
    ) -> None:
        """Unregister a callback (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _emit(self, event: MutationEvent) -> None:
        for listener in list(self._listeners):
            listener(event)


def _check_grade(value: float, what: str) -> float:
    grade = float(value)
    if not (0.0 <= grade <= 1.0):  # catches NaN too
        raise DatabaseError(f"{what} is {grade}, outside [0, 1]")
    return grade


class MutableColumnarDatabase(MutableDatabase, ColumnarDatabase):
    """The columnar backend with the mutation plane attached.

    Same read API, tie semantics and bit-for-bit results as
    :class:`~repro.middleware.database.ColumnarDatabase` over the
    current contents (see the module docstring for the storage design
    and the parity argument).

    Parameters
    ----------
    compact_min, compact_fraction:
        Auto-compaction threshold: a mutation triggers
        :meth:`compact` once some list's overhead (tombstoned base
        entries + delta entries) exceeds both ``compact_min`` and
        ``compact_fraction * num_objects``.  Pass
        ``auto_compact=False`` to compact manually only.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        ids: Sequence[ObjectId],
        order_rows: Sequence[np.ndarray] | None = None,
        validate: bool = True,
        *,
        compact_min: int = 64,
        compact_fraction: float = 0.5,
        auto_compact: bool = True,
    ):
        self._init_core(matrix, ids)
        # the identity id shortcut is unsound under mutation: a deleted
        # integer id would still pass the bounds check
        self._trivial_ids = False
        if validate:
            self._validate_core()
        self._compact_min = int(compact_min)
        self._compact_fraction = float(compact_fraction)
        self._auto_compact = bool(auto_compact)
        n = self._matrix.shape[0]
        # slot space: rows 0.. _n_slots-1 of _store; deleted slots stay
        # allocated (and tombstoned) until the next compaction
        self._store = self._matrix
        self._n_slots = n
        self._n_live = n
        self._live = np.ones(n, dtype=bool)
        self._stale = [np.zeros(n, dtype=bool) for _ in range(self._m)]
        self._stale_count = [0] * self._m
        self._delta: list[dict[int, float]] = [{} for _ in range(self._m)]
        self._merged: list[tuple[np.ndarray, np.ndarray] | None] = (
            [None] * self._m
        )
        self._version = 0
        self._listeners = []
        self._set_base(order_rows)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_database(
        cls, db: Database, **knobs
    ) -> "MutableColumnarDatabase":
        """A mutable copy of any database's current contents.

        Tie placement is re-based to the stable-argsort convention
        (mandatory for the mutation plane; adversarial explicit orders
        are rejected by the direct constructor)."""
        col = db.to_columnar()
        ids, matrix = col.to_array()
        return cls.from_array(matrix, ids, **knobs)

    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        object_ids: Sequence[ObjectId] | None = None,
        validate: bool = True,
        **knobs,
    ) -> "MutableColumnarDatabase":
        """Build from an ``(N, m)`` grade array; deterministic stable
        ordering.  ``knobs`` are the compaction-policy keywords of the
        constructor (``compact_min`` etc.)."""
        array, ids = _coerce_array_and_ids(array, object_ids)
        return cls(array, ids, None, validate, **knobs)

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[Sequence[tuple[ObjectId, float]]],
        validate: bool = True,
        **knobs,
    ) -> "MutableColumnarDatabase":
        """Build from explicit per-list orderings.  The explicit tie
        placement must already follow the stable-argsort convention
        (ties in storage-row order): the mutation plane cannot
        represent any other placement, so adversarial orders raise
        :class:`~repro.middleware.errors.DatabaseError` here instead of
        silently drifting after the first mutation."""
        col = ColumnarDatabase.from_columns(columns, validate=validate)
        order_rows = [
            np.asarray(rows, dtype=np.intp).copy()
            for rows in col._order_rows
        ]
        return cls(
            col._matrix.copy(), list(col._ids), order_rows, validate, **knobs
        )

    # from_rows is inherited: it builds stable-argsort order arrays and
    # calls cls(matrix, ids, order_rows) directly

    # ------------------------------------------------------------------
    # base segments
    # ------------------------------------------------------------------
    def _set_base(
        self, order_rows: Sequence[np.ndarray] | None
    ) -> None:
        if order_rows is None:
            self._rebuild_base()
            return
        if len(order_rows) != self._m:
            raise DatabaseError(
                f"got {len(order_rows)} order arrays for m={self._m}"
            )
        base: list[list[_Run]] = []
        for i, rows in enumerate(order_rows):
            rows = np.asarray(rows, dtype=np.intp)
            grades = self._matrix[rows, i]
            if (grades[1:] > grades[:-1] + 1e-15).any():
                raise DatabaseError(f"list {i} is not sorted descending")
            tied = grades[1:] == grades[:-1]
            if (rows[1:][tied] <= rows[:-1][tied]).any():
                raise DatabaseError(
                    f"list {i}: the mutable backends require the "
                    "stable-argsort tie convention (ties in row order); "
                    "re-base adversarial orders through a read-only "
                    "backend"
                )
            base.append([(rows, grades, rows.astype(np.int64))])
        self._base = base

    def _rebuild_base(self) -> None:
        """Fresh base runs over the (dense, fully live) slot space."""
        matrix = self._matrix
        base: list[list[_Run]] = []
        for i in range(self._m):
            rows = np.argsort(-matrix[:, i], kind="stable").astype(np.intp)
            base.append([(rows, matrix[rows, i], rows.astype(np.int64))])
        self._base = base

    # ------------------------------------------------------------------
    # the segment merge (base runs, tombstone-filtered, + delta run)
    # ------------------------------------------------------------------
    def _segments(self, list_index: int) -> list[_Run]:
        """List ``list_index``'s live runs: tombstone-filtered base
        segments plus the sorted delta segment -- the inputs of one
        :class:`~repro.middleware.database.ListMergeCursor` merge."""
        self._check_list(list_index)
        stale = self._stale[list_index]
        runs: list[_Run] = []
        for rows, grades, ties in self._base[list_index]:
            keep = ~stale[rows]
            if keep.all():
                runs.append((rows, grades, ties))
            else:
                runs.append((rows[keep], grades[keep], ties[keep]))
        delta = self._delta[list_index]
        if delta:
            drows = np.fromiter(
                delta.keys(), dtype=np.intp, count=len(delta)
            )
            dgrades = np.fromiter(
                delta.values(), dtype=np.float64, count=len(delta)
            )
            order = np.lexsort((drows, -dgrades))
            drows = drows[order]
            runs.append((drows, dgrades[order], drows.astype(np.int64)))
        return runs

    def merge_cursor(self, list_index: int) -> ListMergeCursor:
        """A fresh streaming merge cursor over list ``list_index``'s
        live segments."""
        return ListMergeCursor(self._segments(list_index))

    def list_runs(self, list_index: int) -> list[_Run]:
        """The live segments themselves (filtered base + delta)."""
        return self._segments(list_index)

    def _merged_order(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        cached = self._merged[i]
        if cached is None:
            cached = ListMergeCursor(self._segments(i)).drain()
            self._merged[i] = cached
        return cached

    @property
    def _order_rows(self) -> Sequence[np.ndarray]:  # type: ignore[override]
        return _MergedOrders(self, 0)

    @property
    def _order_grades(self) -> Sequence[np.ndarray]:  # type: ignore[override]
        return _MergedOrders(self, 1)

    # ------------------------------------------------------------------
    # the write plane
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return self._version

    def insert(self, obj: ObjectId, grades: Sequence[float]) -> None:
        vec = tuple(float(g) for g in grades)
        if len(vec) != self._m:
            raise DatabaseError(
                f"expected {self._m} grades for the insert, got {len(vec)}"
            )
        for i, g in enumerate(vec):
            _check_grade(g, f"grade of inserted object in list {i}")
        if obj in self._row_of:
            raise DatabaseError(
                f"object {obj!r} already exists; use update_grade"
            )
        slot = self._n_slots
        self._ensure_capacity(slot + 1)
        self._n_slots = slot + 1
        self._matrix = self._store[: self._n_slots]
        self._matrix[slot] = vec
        self._ids.append(obj)
        self._row_of[obj] = slot
        self._live[slot] = True
        self._n_live += 1
        for i in range(self._m):
            self._delta[i][slot] = vec[i]
        self._note_insert_slot(slot)
        self._invalidate()
        self._emit(MutationEvent("insert", obj, vec, None, self._version))
        self._maybe_compact()

    def update_grade(
        self, obj: ObjectId, list_index: int, grade: float
    ) -> None:
        self._check_list(list_index)
        g = _check_grade(
            grade, f"updated grade of {obj!r} in list {list_index}"
        )
        slot = self._row_of.get(obj)
        if slot is None:
            raise UnknownObjectError(obj)
        self._matrix[slot, list_index] = g
        delta = self._delta[list_index]
        if slot not in delta:
            # the base segment's entry for this slot is now superseded
            self._stale[list_index][slot] = True
            self._stale_count[list_index] += 1
        delta[slot] = g
        self._invalidate(lists=(list_index,))
        self._emit(
            MutationEvent(
                "update",
                obj,
                tuple(self._matrix[slot].tolist()),
                list_index,
                self._version,
            )
        )
        self._maybe_compact()

    def delete(self, obj: ObjectId) -> None:
        slot = self._row_of.pop(obj, None)
        if slot is None:
            raise UnknownObjectError(obj)
        vec = tuple(self._matrix[slot].tolist())
        self._live[slot] = False
        self._n_live -= 1
        for i in range(self._m):
            if slot in self._delta[i]:
                del self._delta[i][slot]
            else:
                self._stale[i][slot] = True
                self._stale_count[i] += 1
        self._invalidate()
        self._emit(MutationEvent("delete", obj, vec, None, self._version))
        self._maybe_compact()

    def _note_insert_slot(self, slot: int) -> None:
        """Hook for the sharded subclass (extends the last shard)."""

    def _ensure_capacity(self, n: int) -> None:
        cap = self._store.shape[0]
        if n <= cap:
            return
        new_cap = max(2 * cap, n, 16)
        store = np.empty((new_cap, self._m), dtype=np.float64)
        store[: self._n_slots] = self._store[: self._n_slots]
        self._store = store
        self._matrix = store[: self._n_slots]
        live = np.zeros(new_cap, dtype=bool)
        live[: self._n_slots] = self._live[: self._n_slots]
        self._live = live
        for i in range(self._m):
            stale = np.zeros(new_cap, dtype=bool)
            stale[: self._n_slots] = self._stale[i][: self._n_slots]
            self._stale[i] = stale

    def _invalidate(
        self, lists: Iterable[int] | None = None
    ) -> None:
        """Bump the version and drop every cache a mutation can have
        desynchronised."""
        self._version += 1
        if lists is None:
            self._merged = [None] * self._m
        else:
            for i in lists:
                self._merged[i] = None
        self._position0_rows = None
        self.__dict__.pop("_grades_cache", None)
        self.__dict__.pop("_orderings_cache", None)

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def _overhead(self) -> int:
        return max(
            len(self._delta[i]) + self._stale_count[i]
            for i in range(self._m)
        )

    def _maybe_compact(self) -> None:
        if not self._auto_compact:
            return
        overhead = self._overhead()
        if overhead > self._compact_min and (
            overhead > self._compact_fraction * max(self._n_live, 1)
        ):
            self.compact()

    def _live_slots(self) -> np.ndarray:
        return np.nonzero(self._live[: self._n_slots])[0]

    def compact(self) -> None:
        """Fold deltas and tombstones back into dense base segments.

        Observationally a no-op: every read answers identically before
        and after (the slot -> row remap is monotone, so the argsort
        order of the compacted matrix *is* the pre-compaction merged
        order).  Does not change :attr:`version`.
        """
        slots = self._live_slots()
        n = len(slots)
        matrix = self._matrix[slots]
        ids = [self._ids[s] for s in slots.tolist()]
        self._pre_compact_remap(slots)
        self._store = matrix
        self._matrix = matrix
        self._ids = ids
        self._row_of = {o: r for r, o in enumerate(ids)}
        self._n_slots = n
        self._n_live = n
        self._live = np.ones(n, dtype=bool)
        self._stale = [np.zeros(n, dtype=bool) for _ in range(self._m)]
        self._stale_count = [0] * self._m
        self._delta = [{} for _ in range(self._m)]
        self._merged = [None] * self._m
        self._position0_rows = None
        self.__dict__.pop("_grades_cache", None)
        self.__dict__.pop("_orderings_cache", None)
        if n:
            self._rebuild_base()
        else:
            self._base = [[] for _ in range(self._m)]

    def _pre_compact_remap(self, slots: np.ndarray) -> None:
        """Hook for the sharded subclass (remaps the shard bounds)."""

    # ------------------------------------------------------------------
    # the read plane over live entries
    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return self._n_live

    @property
    def objects(self) -> Iterable[ObjectId]:
        # _row_of iterates in slot (= compaction) order; snapshot the
        # keys so callers may mutate while iterating
        return iter(list(self._row_of))

    def __len__(self) -> int:
        return self._n_live

    def sorted_entry(self, list_index: int, position: int):
        self._check_list(list_index)
        if position < 0:
            raise IndexError(f"negative position {position}")
        rows, grades = self._merged_order(list_index)
        if position >= len(rows):
            return None
        return self._ids[rows[position]], float(grades[position])

    # random access reads the in-place-updated matrix through the live
    # id interning; the columnar implementations are already correct
    # (and must win over ShardedDatabase's stale shard-view variant in
    # the sharded subclass's MRO)
    grade = ColumnarDatabase.grade
    grade_vector = ColumnarDatabase.grade_vector

    def overall_grades(self, t) -> dict[ObjectId, float]:
        t.check_arity(self._m)
        slots = self._live_slots()
        values = t.aggregate_batch(self._matrix[slots])
        ids = self._ids
        return {
            ids[s]: v for s, v in zip(slots.tolist(), values.tolist())
        }

    def top_k(self, t, k: int) -> list[tuple[ObjectId, float]]:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        t.check_arity(self._m)
        # rows of the list-0 merged order are all live slots, already
        # in the scalar tie-break order (list-0 position); a stable
        # sort by overall grade therefore reproduces Database.top_k
        rows0, _ = self._merged_order(0)
        overall = t.aggregate_batch(self._matrix[rows0])
        order = np.argsort(-overall, kind="stable")[:k]
        ids = self._ids
        return [
            (ids[rows0[j]], float(overall[j])) for j in order.tolist()
        ]

    def satisfies_distinctness(self) -> bool:
        for i in range(self._m):
            g = self._merged_order(i)[1]
            if (g[1:] == g[:-1]).any():
                return False
        return True

    def to_array(self, object_ids: Sequence[ObjectId] | None = None):
        if object_ids is None:
            slots = self._live_slots()
            return (
                [self._ids[s] for s in slots.tolist()],
                self._matrix[slots],
            )
        ids = list(object_ids)
        rows = self.rows_for(ids)
        return ids, self._matrix[rows]

    def to_columnar(self) -> ColumnarDatabase:
        """A read-only compacted snapshot of the current contents
        (dense rows in slot order, merged order arrays carried over --
        bit-identical to a from-scratch build, no re-sort)."""
        slots = self._live_slots()
        remap = np.empty(self._n_slots, dtype=np.intp)
        remap[slots] = np.arange(len(slots), dtype=np.intp)
        matrix = self._matrix[slots]
        ids = [self._ids[s] for s in slots.tolist()]
        order_rows = [
            remap[self._merged_order(i)[0]] for i in range(self._m)
        ]
        return ColumnarDatabase(matrix, ids, order_rows, validate=False)

    def snapshot(self) -> ColumnarDatabase:
        """Alias of :meth:`to_columnar` (the read-only snapshot the
        differential suite rebuilds from scratch)."""
        return self.to_columnar()

    def _speculation_store(self) -> ColumnarDatabase:
        # engines size row-indexed scratch arrays by ``num_objects``;
        # hand them a dense compacted snapshot (cached per version) so
        # slot indices never leak into the speculative fast path and
        # in-flight runs are isolated from later mutations
        cached = self.__dict__.get("_snapshot_cache")
        if cached is not None and cached[0] == self._version:
            return cached[1]
        snap = self.to_columnar()
        self.__dict__["_snapshot_cache"] = (self._version, snap)
        return snap

    def to_sharded(self, num_shards: int = 1) -> ShardedDatabase:
        return ShardedDatabase.from_database(
            self.to_columnar(), num_shards=num_shards
        )

    # scalar-compat lazy views must exclude tombstoned slots
    @property
    def _grades(self) -> dict[ObjectId, tuple[float, ...]]:
        cached = self.__dict__.get("_grades_cache")
        if cached is None:
            ids = self._ids
            cached = {
                ids[s]: tuple(self._matrix[s].tolist())
                for s in self._live_slots().tolist()
            }
            self.__dict__["_grades_cache"] = cached
        return cached

    @property
    def _orderings(self) -> list[list[ObjectId]]:
        cached = self.__dict__.get("_orderings_cache")
        if cached is None:
            ids = self._ids
            cached = [
                [ids[r] for r in self._merged_order(i)[0].tolist()]
                for i in range(self._m)
            ]
            self.__dict__["_orderings_cache"] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MutableColumnarDatabase N={self.num_objects} "
            f"m={self.num_lists} v={self._version}>"
        )


class MutableShardedDatabase(MutableColumnarDatabase, ShardedDatabase):
    """The sharded backend with the mutation plane attached.

    Base segments are the per-shard stable-argsort runs; deltas and
    tombstones work exactly as in :class:`MutableColumnarDatabase`
    (one delta segment per list serves all shards -- the merge cursor
    does not care how many runs it merges).  Inserted slots belong to
    the *last* shard's row range; compaction re-derives dense shard
    bounds with the same monotone remap that keeps order exact.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        ids: Sequence[ObjectId],
        *,
        num_shards: int = 1,
        shard_bounds: np.ndarray | None = None,
        validate: bool = True,
        **knobs,
    ):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise DatabaseError(
                f"expected a 2-D (N, m) array, got shape {matrix.shape}"
            )
        if shard_bounds is not None:
            self._shard_bounds = np.asarray(shard_bounds, dtype=np.intp)
        else:
            self._shard_bounds = shard_bounds_for(
                matrix.shape[0], num_shards
            )
        n = matrix.shape[0]
        bounds = self._shard_bounds
        if (
            bounds[0] != 0
            or bounds[-1] != n
            or (np.diff(bounds) < 0).any()
        ):
            raise DatabaseError(
                f"shard bounds {bounds.tolist()} do not partition 0..{n}"
            )
        super().__init__(matrix, ids, None, validate, **knobs)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_array(
        cls,
        array: np.ndarray,
        object_ids: Sequence[ObjectId] | None = None,
        validate: bool = True,
        *,
        num_shards: int = 1,
        **knobs,
    ) -> "MutableShardedDatabase":
        return cls(
            array,
            object_ids
            if object_ids is not None
            else range(np.asarray(array).shape[0]),
            num_shards=num_shards,
            validate=validate,
            **knobs,
        )

    @classmethod
    def from_rows(
        cls,
        rows: Mapping[ObjectId, Sequence[float]],
        validate: bool = True,
        *,
        num_shards: int = 1,
        **knobs,
    ) -> "MutableShardedDatabase":
        if not rows:
            raise DatabaseError("database must contain at least one object")
        arities = {len(v) for v in rows.values()}
        if len(arities) != 1:
            raise DatabaseError(
                "all objects must have the same number of grades; got "
                f"{arities}"
            )
        if arities.pop() < 1:
            raise DatabaseError("objects must have at least one grade")
        ids = list(rows)
        matrix = np.array(
            [list(rows[obj]) for obj in ids], dtype=np.float64
        )
        return cls.from_array(
            matrix, ids, validate, num_shards=num_shards, **knobs
        )

    @classmethod
    def from_columns(
        cls,
        columns,
        validate: bool = True,
        *,
        num_shards: int = 1,
        **knobs,
    ) -> "MutableShardedDatabase":
        scalar = Database.from_columns(columns, validate=validate)
        return cls.from_database(
            scalar, num_shards=num_shards, **knobs
        )

    @classmethod
    def from_shards(
        cls,
        shard_matrices: Sequence[np.ndarray],
        object_ids: Sequence[ObjectId] | None = None,
        validate: bool = True,
        **knobs,
    ) -> "MutableShardedDatabase":
        if not shard_matrices:
            raise DatabaseError("need at least one shard")
        parts = [np.asarray(p, dtype=float) for p in shard_matrices]
        matrix = parts[0] if len(parts) == 1 else np.concatenate(parts)
        bounds = np.concatenate(
            [[0], np.cumsum([len(p) for p in parts])]
        ).astype(np.intp)
        if object_ids is None:
            object_ids = range(matrix.shape[0])
        return cls(
            matrix,
            object_ids,
            shard_bounds=bounds,
            validate=validate,
            **knobs,
        )

    @classmethod
    def from_database(
        cls,
        db: Database,
        num_shards: int = 1,
        *,
        shard_bounds: np.ndarray | None = None,
        **knobs,
    ) -> "MutableShardedDatabase":
        """A mutable sharded copy of any database's current contents
        (tie placement re-based to stable argsort, as for
        :meth:`MutableColumnarDatabase.from_database`)."""
        col = db.to_columnar()
        ids, matrix = col.to_array()
        if shard_bounds is not None:
            return cls(
                matrix, ids, shard_bounds=shard_bounds, **knobs
            )
        return cls(matrix, ids, num_shards=num_shards, **knobs)

    # ------------------------------------------------------------------
    # base segments: per-shard argsort runs over the current slot space
    # ------------------------------------------------------------------
    def _rebuild_base(self) -> None:
        runs = ShardedDatabase._argsort_runs(
            self._matrix, self._shard_bounds
        )
        self._base = runs

    def _note_insert_slot(self, slot: int) -> None:
        # the insert tail belongs to the last shard's row range
        self._shard_bounds[-1] = self._n_slots

    def _pre_compact_remap(self, slots: np.ndarray) -> None:
        bounds = np.searchsorted(
            slots, self._shard_bounds, side="left"
        ).astype(np.intp)
        bounds[-1] = len(slots)
        self._shard_bounds = bounds

    @property
    def shard_bounds(self) -> np.ndarray:
        """The shard layout over the *compacted* (live, dense) row
        space -- what :meth:`snapshot` and npz persistence use."""
        slots = self._live_slots()
        bounds = np.searchsorted(
            slots, self._shard_bounds, side="left"
        ).astype(np.intp)
        bounds[-1] = len(slots)
        return bounds

    def snapshot(self) -> ShardedDatabase:
        """A read-only compacted sharded snapshot (same shard count,
        dense remapped bounds, exact order)."""
        return ShardedDatabase.from_database(
            self.to_columnar(), shard_bounds=self.shard_bounds
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MutableShardedDatabase N={self.num_objects} "
            f"m={self.num_lists} S={self.num_shards} v={self._version}>"
        )
