"""The concurrent top-k query service.

:class:`QueryService` turns the library into a server: many top-k
queries in flight at once over one set of backing services, scheduled
cooperatively on a single asyncio loop.  The moving parts:

* **Admission** (:class:`~repro.middleware.cost.AdmissionPolicy`): at
  most ``max_active`` queries run concurrently, arrivals beyond that
  wait FIFO in a bounded queue, and a full queue refuses with
  :class:`~repro.middleware.errors.AdmissionError`.  Dispatch runs as
  *urgent* work on the :class:`~repro.server.scheduler.Scheduler`;
  housekeeping (forgetting collected queries) runs on its idle band,
  so bookkeeping can never delay a query start.
* **Scan sharing** (:class:`~repro.server.scancache.ScanCache`):
  concurrent queries over the same lists read one underlying sorted
  cursor per list.  Charging is untouched -- each query's
  :class:`~repro.services.session.SharedScanSession` charges exactly
  the prefix *it* consumed.
* **Engine execution**: the paper's synchronous engines run unmodified
  via :meth:`~repro.core.base.TopKAlgorithm.run_on_loop` on a worker
  pool of ``max_active`` threads; the loop stays free to admit, feed
  scans, serve random accesses, and cancel.
* **Billing** (:class:`~repro.middleware.cost.BillingLedger`): every
  terminal query -- completed, failed, or cancelled -- posts a
  :class:`~repro.middleware.cost.QueryBill`; the paper's middleware
  cost *is* the meter.

Use it embedded (``service.start()`` on a private loop thread,
``submit``/``result``/``cancel`` from any thread) or attached to an
existing loop (``await service.astart()``), which is how
:class:`~repro.server.wire.QueryServer` hosts it.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Callable

from ..aggregation import (
    AVERAGE,
    MAX,
    MEDIAN,
    MIN,
    PRODUCT,
    SUM,
    AggregationFunction,
)
from ..core import (
    CombinedAlgorithm,
    NoRandomAccessAlgorithm,
    StreamCombine,
    ThresholdAlgorithm,
    TopKAlgorithm,
    TopKResult,
)
from ..core.base import QueryError
from ..middleware.cost import (
    AdmissionPolicy,
    BillingLedger,
    CostModel,
    QueryBill,
    QueryBudget,
)
from ..middleware.database import Database
from ..middleware.errors import (
    AdmissionError,
    DatabaseError,
    QueryCancelledError,
    UnknownQueryError,
    UnknownViewError,
)
from ..middleware.mutable import MutableDatabase
from ..obs import NULL_INSTRUMENT, Observability
from ..views import LiveView, ViewEvent
from ..services.assemble import services_for_database
from ..services.protocol import RemoteGradedSource
from ..services.session import SharedScanSession
from ..services.simulated import FailureModel, LatencyModel, RetryPolicy
from .scancache import ScanCache
from .scheduler import Scheduler

__all__ = [
    "ALGORITHMS",
    "AGGREGATIONS",
    "QuerySpec",
    "QueryHandle",
    "QueryService",
    "QueryStatus",
]


#: name -> zero-argument engine factory (fresh instance per query; the
#: engines are stateless across runs but cheap to construct, and a
#: fresh instance keeps any future per-run state private)
ALGORITHMS: dict[str, Callable[[], TopKAlgorithm]] = {
    "ta": ThresholdAlgorithm,
    "ta-seen": lambda: ThresholdAlgorithm(remember_seen=True),
    "nra": NoRandomAccessAlgorithm,
    "ca": CombinedAlgorithm,
    "stream-combine": StreamCombine,
}

#: name -> aggregation function (all variadic)
AGGREGATIONS: dict[str, AggregationFunction] = {
    "min": MIN,
    "max": MAX,
    "sum": SUM,
    "average": AVERAGE,
    "product": PRODUCT,
    "median": MEDIAN,
}


class QueryStatus:
    """Lifecycle states of a submitted query (string constants)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    ERROR = "error"

    TERMINAL = frozenset({DONE, CANCELLED, ERROR})


@dataclass(frozen=True)
class QuerySpec:
    """One top-k query, by value (constructible from a wire dict).

    ``lists`` selects which of the service's lists the query runs over
    (``None`` = all, in order); the aggregation's arity is checked
    against it.  ``sorted_cost``/``random_cost`` are the paper's
    ``cS``/``cR`` for *this* query's bill; ``deadline_s``/``max_cost``
    arm a per-query :class:`~repro.middleware.cost.QueryBudget` (the
    wall clock starts at admission, so time spent queued counts).

    ``mode`` distinguishes one-shot queries (``"oneshot"``, the
    default) from standing subscriptions (``"view"``, protocol v2).
    Decoding is unknown-field tolerant in both directions: a v1 dict
    without ``mode`` decodes as a one-shot, and unknown keys are
    ignored, so mixed-version clients and servers interoperate.
    """

    algorithm: str
    aggregation: str
    k: int
    lists: tuple[int, ...] | None = None
    sorted_cost: float = 1.0
    random_cost: float = 1.0
    deadline_s: float | None = None
    max_cost: float | None = None
    forbid_wild_guesses: bool = False
    mode: str = "oneshot"

    def make_algorithm(self) -> TopKAlgorithm:
        factory = ALGORITHMS.get(self.algorithm)
        if factory is None:
            raise QueryError(
                f"unknown algorithm {self.algorithm!r}; "
                f"known: {sorted(ALGORITHMS)}"
            )
        return factory()

    def make_aggregation(self) -> AggregationFunction:
        aggregation = AGGREGATIONS.get(self.aggregation)
        if aggregation is None:
            raise QueryError(
                f"unknown aggregation {self.aggregation!r}; "
                f"known: {sorted(AGGREGATIONS)}"
            )
        return aggregation

    def cost_model(self) -> CostModel:
        return CostModel(self.sorted_cost, self.random_cost)

    def make_budget(self) -> QueryBudget | None:
        if self.deadline_s is None and self.max_cost is None:
            return None
        return QueryBudget(
            deadline_s=self.deadline_s, max_cost=self.max_cost
        )

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "aggregation": self.aggregation,
            "k": self.k,
            "lists": None if self.lists is None else list(self.lists),
            "sorted_cost": self.sorted_cost,
            "random_cost": self.random_cost,
            "deadline_s": self.deadline_s,
            "max_cost": self.max_cost,
            "forbid_wild_guesses": self.forbid_wild_guesses,
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, data) -> "QuerySpec":
        """Build a spec from an untrusted wire dict, validating shapes
        (name resolution happens at admission)."""
        if not isinstance(data, dict):
            raise ValueError("query spec must be a dict")
        algorithm = data.get("algorithm")
        aggregation = data.get("aggregation")
        if not isinstance(algorithm, str) or not isinstance(aggregation, str):
            raise ValueError("spec needs string 'algorithm'/'aggregation'")
        k = data.get("k")
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ValueError(f"spec 'k' must be a positive int, got {k!r}")
        lists = data.get("lists")
        if lists is not None:
            if not isinstance(lists, (list, tuple)) or not all(
                isinstance(i, int) and not isinstance(i, bool) for i in lists
            ):
                raise ValueError("'lists' must be a list of ints or None")
            lists = tuple(int(i) for i in lists)
        def _number(key, default):
            value = data.get(key, default)
            if value is None and default is None:
                return None
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{key!r} must be a number")
            return float(value)
        mode = data.get("mode", "oneshot")
        if mode not in ("oneshot", "view"):
            raise ValueError(
                f"spec 'mode' must be 'oneshot' or 'view', got {mode!r}"
            )
        return cls(
            algorithm=algorithm,
            aggregation=aggregation,
            k=k,
            lists=lists,
            sorted_cost=_number("sorted_cost", 1.0),
            random_cost=_number("random_cost", 1.0),
            deadline_s=_number("deadline_s", None),
            max_cost=_number("max_cost", None),
            forbid_wild_guesses=bool(data.get("forbid_wild_guesses", False)),
            mode=mode,
        )


class _QueryState:
    """Loop-confined bookkeeping for one submitted query."""

    __slots__ = (
        "query_id",
        "spec",
        "algorithm",
        "aggregation",
        "lists",
        "budget",
        "future",
        "status",
        "session",
        "cancel_requested",
        "submitted_at",
        "finished_at",
        "bill",
        "collected",
        "trace",
        "probe",
    )

    def __init__(
        self,
        query_id: str,
        spec: QuerySpec,
        algorithm: TopKAlgorithm,
        aggregation: AggregationFunction,
        lists: list[int],
        budget: QueryBudget | None,
    ):
        self.query_id = query_id
        self.spec = spec
        self.algorithm = algorithm
        self.aggregation = aggregation
        self.lists = lists
        self.budget = budget
        self.future: concurrent.futures.Future = concurrent.futures.Future()
        self.status = QueryStatus.QUEUED
        self.session: SharedScanSession | None = None
        self.cancel_requested = False
        self.submitted_at = time.monotonic()
        self.finished_at: float | None = None
        self.bill: QueryBill | None = None
        self.collected = False
        #: lifecycle trace + bound-trajectory probe (None when the
        #: service runs without an observability plane)
        self.trace = None
        self.probe = None


class _ViewState:
    """Loop-confined bookkeeping for one standing subscription."""

    #: ring-buffer bound on retained (undelivered) view events; a
    #: subscriber lagging further than this loses the oldest deltas
    #: (detectable: the next poll's first seq jumps)
    MAX_EVENTS = 4096

    __slots__ = (
        "view_id",
        "spec",
        "view",
        "events",
        "next_seq",
        "waiters",
        "created_at",
    )

    def __init__(self, view_id: str, spec: QuerySpec, view: LiveView):
        self.view_id = view_id
        self.spec = spec
        self.view = view
        self.events: deque[dict] = deque(maxlen=self.MAX_EVENTS)
        self.next_seq = 0
        self.waiters: list[asyncio.Future] = []
        self.created_at = time.monotonic()

    def record(self, event: ViewEvent) -> None:
        self.next_seq += 1
        entry = dict(event.as_dict())
        entry["seq"] = self.next_seq
        self.events.append(entry)
        self.wake()

    def wake(self) -> None:
        for waiter in self.waiters:
            if not waiter.done():
                waiter.set_result(None)
        self.waiters.clear()

    def since(self, after: int) -> list[dict]:
        return [e for e in self.events if e["seq"] > after]


@dataclass(frozen=True)
class QueryHandle:
    """A submitted query: its id and the future carrying its result.

    ``future`` is a :class:`concurrent.futures.Future` resolving to the
    :class:`~repro.core.result.TopKResult` (or raising the query's
    terminal error / :class:`QueryCancelledError`); thread-safe to wait
    on, and ``asyncio.wrap_future`` makes it awaitable.
    """

    query_id: str
    future: concurrent.futures.Future
    service: "QueryService"

    def result(self, timeout: float | None = None) -> TopKResult:
        return self.service.result(self.query_id, timeout=timeout)

    def cancel(self) -> bool:
        return self.service.cancel(self.query_id)

    def bill(self) -> QueryBill | None:
        return self.service.bill_for(self.query_id)


#: default seconds a collected terminal query lingers before the idle
#: sweeper forgets it
SWEEP_AFTER_S = 30.0


async def _drain_loop_tasks() -> None:
    """Cancel and await every other task on the running loop -- the
    same courtesy :func:`asyncio.run` extends at shutdown, for the
    service's private loop (remote sources park reader tasks there)."""
    tasks = [
        task
        for task in asyncio.all_tasks()
        if task is not asyncio.current_task()
    ]
    for task in tasks:
        task.cancel()
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)


class QueryService:
    """See the module docstring.

    Parameters
    ----------
    services:
        The ``m`` backing :class:`~repro.services.protocol.RemoteGradedSource`
        objects, in list order; or pass ``database`` (plus optional
        ``latency``/``failures``/``retry`` models) to build simulated
        services over it.
    admission:
        :class:`~repro.middleware.cost.AdmissionPolicy`; defaults to 4
        active / 256 queued / no default budget.
    share_scans:
        ``True`` (default): concurrent queries share one sorted cursor
        per list through the :class:`~repro.server.scancache.ScanCache`.
        ``False``: every query gets private scans (identical machinery;
        the benchmark's control arm).
    batch_size, readahead_pages:
        Scan paging: page size of the shared cursors and how many pages
        the fetcher keeps ahead of the deepest consumer.
    wait_timeout:
        Deadlock net for worker threads blocked on a scan frontier or a
        random-access bridge.
    sweep_after:
        Seconds a collected terminal query lingers before the idle
        sweeper forgets it.
    obs:
        An :class:`~repro.obs.Observability` plane; when given, every
        query carries a lifecycle trace plus a bound-trajectory probe,
        service counters land in the metrics registry, and queries over
        the slow-query threshold are retained with their per-round
        τ/W/B profile.  ``None`` (default) costs one attribute load per
        hook -- results are bit-identical either way.
    """

    def __init__(
        self,
        services: Sequence[RemoteGradedSource] | None = None,
        *,
        database: Database | None = None,
        latency: LatencyModel | Sequence[LatencyModel | None] | None = None,
        failures: FailureModel | Sequence[FailureModel | None] | None = None,
        retry: RetryPolicy | Sequence[RetryPolicy | None] | None = None,
        admission: AdmissionPolicy | None = None,
        share_scans: bool = True,
        batch_size: int = 64,
        readahead_pages: int = 2,
        wait_timeout: float = 30.0,
        sweep_after: float = SWEEP_AFTER_S,
        obs: Observability | None = None,
    ):
        if (services is None) == (database is None):
            raise DatabaseError(
                "pass exactly one of services= or database="
            )
        if database is not None:
            services = services_for_database(
                database, latency=latency, failures=failures, retry=retry
            )
        elif latency is not None or failures is not None or retry is not None:
            raise DatabaseError(
                "latency/failures/retry only apply with database=; "
                "attach models to the services you pass"
            )
        assert services is not None
        # retained for the mutation plane: services snapshot the
        # database at construction, so after a mutation the service
        # rebuilds them (and the scan cache) from the live database
        self._database = database
        self._source_models = (latency, failures, retry)
        self._services = list(services)
        if not self._services:
            raise DatabaseError("need at least one service")
        sizes = {int(s.num_entries) for s in self._services}
        if len(sizes) != 1:
            raise DatabaseError(
                f"services disagree on N: {sorted(sizes)}"
            )
        self._num_objects = sizes.pop()
        self._admission = admission or AdmissionPolicy()
        self._share_scans = share_scans
        self._batch_size = batch_size
        self._readahead_pages = readahead_pages
        self._wait_timeout = wait_timeout
        self._sweep_after = sweep_after
        self._ledger = BillingLedger()
        self._scheduler = Scheduler()
        self._cache: ScanCache | None = None
        self._queries: dict[str, _QueryState] = {}
        self._queue: deque[str] = deque()
        self._active: set[str] = set()
        self._next_query = 0
        self._views: dict[str, _ViewState] = {}
        self._next_view = 0
        #: mutation barrier: while > 0, no new query may start (a
        #: mutation edits the grade matrix in place; in-flight engine
        #: runs read an isolated snapshot, but the barrier keeps the
        #: simpler invariant that runs and writes never overlap)
        self._mutations_pending = 0
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self._admission.max_active,
            thread_name_prefix="repro-query",
        )
        self._draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._owns_loop = False
        self._closed = False
        self._obs = obs
        # pre-resolved instruments: NULL_INSTRUMENT when the plane is
        # absent/disabled, so the hot paths below never branch on obs
        _c = obs.counter if obs is not None else None
        _g = obs.gauge if obs is not None else None
        _h = obs.histogram if obs is not None else None
        if _c is None or _g is None or _h is None:
            null = NULL_INSTRUMENT
            self._m_submitted = null
            self._m_refused = null
            self._m_outcomes = {
                "ok": null, "cancelled": null, "error": null
            }
            self._m_queued = null
            self._m_active = null
            self._m_duration = null
            self._m_cost = null
            self._m_sorted = null
            self._m_random = null
            self._m_mutations = {
                "insert": null, "update": null, "delete": null
            }
            self._m_views = null
        else:
            self._m_submitted = _c(
                "repro_queries_submitted_total",
                help="queries admitted (queued or started)",
            )
            self._m_refused = _c(
                "repro_queries_refused_total",
                help="submissions refused at admission",
            )
            self._m_outcomes = {
                outcome: _c(
                    "repro_queries_finished_total",
                    {"outcome": outcome},
                    help="terminal queries by outcome",
                )
                for outcome in ("ok", "cancelled", "error")
            }
            self._m_queued = _g(
                "repro_queries_queued", help="admission queue depth"
            )
            self._m_active = _g(
                "repro_queries_active", help="queries currently running"
            )
            self._m_duration = _h(
                "repro_query_wall_seconds",
                help="submit-to-terminal wall time",
            )
            self._m_cost = _h(
                "repro_query_middleware_cost",
                help="per-query charged middleware cost s*cS + r*cR",
            )
            self._m_sorted = _c(
                "repro_sorted_accesses_total",
                help="charged sorted accesses across finished queries",
            )
            self._m_random = _c(
                "repro_random_accesses_total",
                help="charged random accesses across finished queries",
            )
            self._m_mutations = {
                action: _c(
                    "repro_mutations_total",
                    {"action": action},
                    help="applied mutations by action",
                )
                for action in ("insert", "update", "delete")
            }
            self._m_views = _g(
                "repro_views_active", help="standing views registered"
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_lists(self) -> int:
        return len(self._services)

    @property
    def num_objects(self) -> int:
        return self._num_objects

    @property
    def admission(self) -> AdmissionPolicy:
        return self._admission

    @property
    def database(self) -> Database | None:
        """The backing database, when the service owns one (``None``
        for externally-provided services)."""
        return self._database

    @property
    def mutable(self) -> MutableDatabase | None:
        """The backing database when it supports the write plane,
        else ``None`` (mutations and subscriptions require it)."""
        db = self._database
        return db if isinstance(db, MutableDatabase) else None

    @property
    def ledger(self) -> BillingLedger:
        return self._ledger

    @property
    def scheduler(self) -> Scheduler:
        return self._scheduler

    @property
    def scan_cache(self) -> ScanCache | None:
        """The scan cache (``None`` before start)."""
        return self._cache

    @property
    def obs(self) -> Observability | None:
        """The attached observability plane (``None`` when absent)."""
        return self._obs

    def metrics(self) -> dict:
        """A JSON-safe snapshot of the metrics registry (the payload of
        the ``metrics`` wire op); an empty, disabled-shaped snapshot
        when no observability plane is attached."""
        if self._obs is None:
            return {"enabled": False, "metrics": []}
        return self._obs.registry.snapshot()

    def bills(self) -> list[QueryBill]:
        return self._ledger.bills()

    def bill_for(self, query_id: str) -> QueryBill | None:
        state = self._queries.get(query_id)
        if state is None:
            for bill in self._ledger.bills():
                if bill.query_id == query_id:
                    return bill
            raise UnknownQueryError(query_id)
        return state.bill

    def query_trace(self, query_id: str) -> dict | None:
        """The lifecycle trace of ``query_id`` as a JSON-safe dict
        (:meth:`QueryTrace.as_dict`: spans, attributes, and the
        attached bound-trajectory profile) -- the payload of the
        ``trace`` wire op.

        A still-tracked query reports its in-flight trace; completed
        queries are looked up in the tracer's bounded completed ring.
        Returns ``None`` when tracing is off for the query; raises
        :class:`~repro.middleware.errors.UnknownQueryError` for an id
        that is neither tracked nor retained (never issued, or aged
        out of the ring -- indistinguishable by design, the ring is
        the only memory of finished queries).
        """
        state = self._queries.get(query_id)
        if state is not None:
            trace = state.trace
            if trace is None:
                return None
            record = trace.as_dict()
            return record or None  # NULL_TRACE serialises empty
        if self._obs is not None:
            trace = self._obs.tracer.find(query_id)
            if trace is not None:
                return trace.as_dict()
        raise UnknownQueryError(query_id)

    def stats(self) -> dict:
        """Service-level counters (thread-safe snapshot, approximate
        while queries move between states)."""
        return {
            "m": self.num_lists,
            "n": self.num_objects,
            "queued": len(self._queue),
            "active": len(self._active),
            "tracked": len(self._queries),
            "share_scans": self._share_scans,
            "views": len(self._views),
            "mutable": self.mutable is not None,
            "version": (
                self.mutable.version if self.mutable is not None else None
            ),
            "ledger": self._ledger.totals(),
            "cache": self._cache.stats() if self._cache else None,
            "store": (
                self._database.store_snapshot()
                if hasattr(self._database, "store_snapshot")
                else None
            ),
            "scheduler": {
                "ran": dict(self._scheduler.ran),
                "pending": self._scheduler.pending(),
                "failures": len(self._scheduler.failures),
            },
        }

    # ------------------------------------------------------------------
    # lifecycle: attached to an existing loop
    # ------------------------------------------------------------------
    async def astart(self) -> "QueryService":
        """Arm the service on the *running* loop (idempotent)."""
        if self._cache is not None:
            return self
        self._loop = asyncio.get_running_loop()
        self._cache = ScanCache(
            self._services,
            self._loop,
            batch_size=self._batch_size,
            readahead_pages=self._readahead_pages,
            shared=self._share_scans,
        )
        self._scheduler.start()
        self._scheduler.add_idle(self._sweep)
        return self

    async def adrain(self, timeout: float = 5.0) -> bool:
        """Stop admitting, let queued + running queries finish; True
        when everything reached a terminal state within ``timeout``."""
        self._draining = True
        deadline = time.monotonic() + timeout
        while self._queue or self._active:
            if time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    async def aclose(self) -> None:
        """Cancel everything in flight and tear down (loop-side,
        idempotent)."""
        self._draining = True
        for view_state in list(self._views.values()):
            self._drop_view(view_state)
        for state in list(self._queries.values()):
            if state.status not in QueryStatus.TERMINAL:
                try:
                    self._cancel_on_loop(state.query_id)
                except UnknownQueryError:  # pragma: no cover - racy sweep
                    pass
        # let cancelled engines unwind off their worker threads
        deadline = time.monotonic() + self._wait_timeout
        while self._active and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        await self._scheduler.stop()
        if self._cache is not None:
            await self._cache.aclose()
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # lifecycle: own loop on a background thread (embedded mode)
    # ------------------------------------------------------------------
    def start(self) -> "QueryService":
        """Run the service on a private event loop thread; returns
        ``self`` once armed."""
        if self._loop is not None:
            raise RuntimeError("service already started")
        loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=loop.run_forever, name="repro-query-service", daemon=True
        )
        self._thread.start()
        self._owns_loop = True
        asyncio.run_coroutine_threadsafe(self.astart(), loop).result(
            timeout=10.0
        )
        return self

    def close(self) -> None:
        """Stop the embedded service (idempotent)."""
        if self._closed:
            return
        self._closed = True
        loop = self._loop
        if loop is None or not self._owns_loop:
            return
        try:
            asyncio.run_coroutine_threadsafe(self.aclose(), loop).result(
                timeout=10.0
            )
        except Exception:  # pragma: no cover - defensive teardown
            pass
        try:
            # mimic asyncio.run teardown: cancel whatever still lives on
            # the loop (e.g. transport reader tasks owned by remote
            # sources) so no task is destroyed while pending
            asyncio.run_coroutine_threadsafe(
                _drain_loop_tasks(), loop
            ).result(timeout=5.0)
        except Exception:  # pragma: no cover - defensive teardown
            pass
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            if not self._thread.is_alive():
                loop.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise RuntimeError(
                "service not started (call start() or await astart())"
            )
        return self._loop

    # ------------------------------------------------------------------
    # submission / results / cancellation
    # ------------------------------------------------------------------
    async def asubmit(self, spec: QuerySpec) -> QueryHandle:
        """Admit one query (loop-side).  Raises
        :class:`~repro.middleware.errors.AdmissionError` when refused,
        :class:`~repro.core.base.QueryError` /
        :class:`ValueError` when the spec is invalid."""
        if self._draining:
            self._m_refused.inc()
            raise AdmissionError("service is draining; resubmit elsewhere")
        # resolve eagerly: an invalid query fails at the submission
        # boundary, never inside a worker
        algorithm = spec.make_algorithm()
        aggregation = spec.make_aggregation()
        lists = (
            list(range(self.num_lists))
            if spec.lists is None
            else list(spec.lists)
        )
        for i in lists:
            if not (0 <= i < self.num_lists):
                raise QueryError(
                    f"list index {i} out of range for m={self.num_lists}"
                )
        if len(set(lists)) != len(lists):
            raise QueryError(f"duplicate list indices in {lists}")
        if not lists:
            raise QueryError("query needs at least one list")
        aggregation.check_arity(len(lists))
        if spec.k > self.num_objects:
            raise QueryError(
                f"k={spec.k} exceeds the database size N={self.num_objects}"
            )
        spec.cost_model()  # validates positivity
        budget = spec.make_budget() or self._admission.default_budget()
        if budget is not None:
            budget.start()  # queue time counts against the deadline
        self._next_query += 1
        query_id = f"q{self._next_query:05d}"
        state = _QueryState(
            query_id, spec, algorithm, aggregation, lists, budget
        )
        if (
            len(self._active) >= self._admission.max_active
            or self._queue
            or self._mutations_pending
        ):
            if len(self._queue) >= self._admission.max_queued:
                self._m_refused.inc()
                raise AdmissionError(
                    f"admission queue full ({self._admission.max_queued} "
                    "queued); retry later"
                )
            self._queries[query_id] = state
            self._m_submitted.inc()
            self._begin_trace(state)
            self._queue.append(query_id)
            if state.trace is not None:
                state.trace.begin("queued")
            self._m_queued.set(len(self._queue))
            self._scheduler.call_soon(self._admit_more)
        else:
            self._queries[query_id] = state
            self._m_submitted.inc()
            self._begin_trace(state)
            self._start_query(state)
        return QueryHandle(query_id, state.future, self)

    def _begin_trace(self, state: _QueryState) -> None:
        obs = self._obs
        if obs is None or not obs.enabled:
            return
        state.trace = obs.tracer.trace(
            state.query_id,
            algorithm=state.spec.algorithm,
            aggregation=state.spec.aggregation,
            k=state.spec.k,
            lists=list(state.lists),
        )
        state.trace.event("admitted")

    def submit(self, spec: QuerySpec) -> QueryHandle:
        """Thread-safe submission from outside the loop."""
        future = asyncio.run_coroutine_threadsafe(
            self.asubmit(spec), self._require_loop()
        )
        return future.result(timeout=self._wait_timeout)

    def _admit_more(self) -> None:
        """Urgent scheduler callback: fill free slots FIFO."""
        if self._mutations_pending:
            return  # the mutation re-arms admission when it completes
        while self._queue and len(self._active) < self._admission.max_active:
            state = self._queries.get(self._queue.popleft())
            if state is None or state.status != QueryStatus.QUEUED:
                continue  # cancelled while queued
            self._start_query(state)
        self._m_queued.set(len(self._queue))

    def _start_query(self, state: _QueryState) -> None:
        state.status = QueryStatus.RUNNING
        self._active.add(state.query_id)
        self._m_active.set(len(self._active))
        if state.trace is not None:
            state.trace.end("queued")
            state.trace.begin("running")
        assert self._loop is not None
        self._loop.create_task(self._run_query(state))

    async def _run_query(self, state: _QueryState) -> None:
        assert self._cache is not None
        session: SharedScanSession | None = None
        try:
            session = self._cache.checkout(
                state.lists,
                query_id=state.query_id,
                cost_model=state.spec.cost_model(),
                forbid_wild_guesses=state.spec.forbid_wild_guesses,
                budget=state.budget,
                wait_timeout=self._wait_timeout,
            )
            state.session = session
            if state.trace is not None:
                assert self._obs is not None
                # the probe rides the session into the engine; its
                # reads are uncharged session properties, so the
                # middleware bill is identical with or without it
                state.probe = self._obs.probe(session)
                session.probe = state.probe
                state.trace.probe = state.probe
            if state.cancel_requested:
                raise QueryCancelledError(state.query_id)
            result = await state.algorithm.run_on_loop(
                session,
                state.aggregation,
                state.spec.k,
                executor=self._executor,
            )
        except QueryCancelledError as exc:
            self._finish(state, session, "cancelled", None, exc)
        except BaseException as exc:
            self._finish(state, session, "error", None, exc)
        else:
            self._finish(state, session, "ok", result, None)
        finally:
            if session is not None:
                session.close()
            self._active.discard(state.query_id)
            self._m_active.set(len(self._active))
            self._scheduler.call_soon(self._admit_more)

    def _finish(
        self,
        state: _QueryState,
        session: SharedScanSession | None,
        outcome: str,
        result: TopKResult | None,
        exc: BaseException | None,
    ) -> None:
        if state.status in QueryStatus.TERMINAL:  # pragma: no cover
            return
        state.finished_at = time.monotonic()
        stats = session.stats() if session is not None else None
        bill = QueryBill(
            query_id=state.query_id,
            algorithm=state.spec.algorithm,
            aggregation=state.spec.aggregation,
            k=state.spec.k,
            lists=tuple(state.lists),
            sorted_accesses=stats.sorted_accesses if stats else 0,
            random_accesses=stats.random_accesses if stats else 0,
            middleware_cost=stats.middleware_cost if stats else 0.0,
            wall_seconds=state.finished_at - state.submitted_at,
            outcome=outcome,
            halt_reason=result.halt_reason if result is not None else None,
        )
        self._ledger.post(bill)
        state.bill = bill
        self._m_outcomes[outcome].inc()
        self._m_duration.observe(bill.wall_seconds)
        self._m_cost.observe(bill.middleware_cost)
        self._m_sorted.inc(bill.sorted_accesses)
        self._m_random.inc(bill.random_accesses)
        if state.trace is not None:
            trace = state.trace
            trace.end(
                "running",
                outcome=outcome,
                cost=bill.middleware_cost,
                sorted=bill.sorted_accesses,
                random=bill.random_accesses,
            )
            obs = self._obs
            assert obs is not None
            obs.tracer.finish(trace)
            obs.slow_queries.consider(
                trace, duration_s=bill.wall_seconds, outcome=outcome
            )
        if outcome == "ok":
            state.status = QueryStatus.DONE
            assert result is not None
            state.future.set_result(result)
        else:
            state.status = (
                QueryStatus.CANCELLED
                if outcome == "cancelled"
                else QueryStatus.ERROR
            )
            assert exc is not None
            state.future.set_exception(exc)

    def _cancel_on_loop(self, query_id: str) -> bool:
        state = self._queries.get(query_id)
        if state is None:
            raise UnknownQueryError(query_id)
        if state.status in QueryStatus.TERMINAL:
            return False
        state.cancel_requested = True
        if state.status == QueryStatus.QUEUED:
            # never started: terminal immediately, zero-access bill
            self._finish(
                state, None, "cancelled", None,
                QueryCancelledError(query_id),
            )
            return True
        if state.session is not None:
            state.session.cancel()
        return True

    def cancel(self, query_id: str) -> bool:
        """Thread-safe cancel; True when the query was still live.
        Raises :class:`UnknownQueryError` for ids never issued or
        already swept."""
        future = asyncio.run_coroutine_threadsafe(
            _call_async(self._cancel_on_loop, query_id), self._require_loop()
        )
        return future.result(timeout=self._wait_timeout)

    def result(
        self, query_id: str, timeout: float | None = None
    ) -> TopKResult:
        """Block for a query's result (thread-safe); re-raises the
        query's terminal error (including
        :class:`QueryCancelledError`)."""
        state = self._queries.get(query_id)
        if state is None:
            raise UnknownQueryError(query_id)
        try:
            return state.future.result(timeout=timeout)
        finally:
            state.collected = True

    def status(self, query_id: str) -> dict:
        state = self._queries.get(query_id)
        if state is None:
            raise UnknownQueryError(query_id)
        return {
            "query": query_id,
            "status": state.status,
            "queued": len(self._queue),
            "active": len(self._active),
        }

    def query_state(self, query_id: str) -> _QueryState:
        """Internal/loop-side accessor used by the wire layer."""
        state = self._queries.get(query_id)
        if state is None:
            raise UnknownQueryError(query_id)
        return state

    # ------------------------------------------------------------------
    # standing views + the mutation plane (protocol v2)
    # ------------------------------------------------------------------
    def _require_mutable(self) -> MutableDatabase:
        db = self.mutable
        if db is None:
            raise QueryError(
                "this service is not backed by a MutableDatabase; "
                "construct it with database=MutableColumnarDatabase(...) "
                "to enable mutations and subscriptions"
            )
        return db

    async def asubscribe(self, spec: QuerySpec) -> dict:
        """Register a standing query (loop-side).

        Returns ``{"view", "result", "seq", "version"}`` -- the view
        id, the initial :class:`~repro.core.result.TopKResult`
        snapshot, the event sequence floor to poll from (0), and the
        database version the snapshot reflects.  Subsequent deltas
        stream through :meth:`aview_events`.
        """
        if self._draining:
            raise AdmissionError("service is draining; resubmit elsewhere")
        db = self._require_mutable()
        # same eager validation as one-shot admission
        spec.make_algorithm()
        aggregation = spec.make_aggregation()
        if spec.lists is not None and tuple(spec.lists) != tuple(
            range(self.num_lists)
        ):
            raise QueryError(
                "standing views run over the full list set; "
                f"got lists={list(spec.lists)} for m={self.num_lists}"
            )
        aggregation.check_arity(self.num_lists)
        spec.cost_model()  # validates positivity
        self._next_view += 1
        view_id = f"v{self._next_view:05d}"
        view = LiveView(
            db,
            spec.make_algorithm,
            aggregation,
            spec.k,
            cost_model=spec.cost_model(),
            obs=self._obs,
        )
        state = _ViewState(view_id, spec, view)
        view._on_event = state.record
        self._views[view_id] = state
        self._m_views.set(len(self._views))
        return {
            "view": view_id,
            "result": view.result,
            "seq": 0,
            "version": view.version,
        }

    async def aview_events(
        self, view_id: str, after: int = 0, timeout: float = 10.0
    ) -> dict:
        """Long-poll one view's delta stream (loop-side): events with
        ``seq > after``, waiting up to ``timeout`` seconds (on the
        scheduler's timed band) when none are pending yet."""
        state = self._views.get(view_id)
        if state is None:
            raise UnknownViewError(view_id)
        events = state.since(after)
        if not events and timeout > 0:
            loop = self._require_loop()
            waiter: asyncio.Future = loop.create_future()
            state.waiters.append(waiter)
            timer = self._scheduler.call_later(
                timeout,
                lambda: waiter.done() or waiter.set_result(None),
            )
            try:
                await waiter
            finally:
                timer.cancel()
                if waiter in state.waiters:  # pragma: no cover - racy
                    state.waiters.remove(waiter)
            if self._views.get(view_id) is not state:
                # unsubscribed (or connection died) while parked
                raise UnknownViewError(view_id)
            events = state.since(after)
        return {
            "view": view_id,
            "events": events,
            "seq": state.next_seq,
            "version": state.view.version,
        }

    def _drop_view(self, state: _ViewState) -> None:
        state.view.close()
        self._views.pop(state.view_id, None)
        self._m_views.set(len(self._views))
        state.wake()  # parked long-polls resolve, then see the drop

    async def aunsubscribe(self, view_id: str) -> bool:
        """Tear down a standing view (loop-side); raises
        :class:`~repro.middleware.errors.UnknownViewError` for ids
        never issued or already dropped."""
        state = self._views.get(view_id)
        if state is None:
            raise UnknownViewError(view_id)
        self._drop_view(state)
        return True

    async def amutate(
        self,
        action: str,
        obj,
        *,
        grades: Sequence[float] | None = None,
        list_index: int | None = None,
        grade: float | None = None,
    ) -> dict:
        """Apply one mutation to the backing database (loop-side).

        ``action`` is ``"insert"`` (with ``grades``), ``"update"``
        (with ``list_index`` + ``grade``) or ``"delete"``.  The write
        is serialised against query execution: admission pauses, the
        active set drains, the mutation applies (standing views update
        synchronously here, firing their deltas), then the backing
        sources and the scan cache are rebuilt so subsequent queries
        read the new contents.  Returns ``{"version", "n"}``.
        """
        db = self._require_mutable()
        if self._draining:
            raise AdmissionError("service is draining; no more writes")
        self._mutations_pending += 1
        try:
            deadline = time.monotonic() + self._wait_timeout
            while self._active:
                if time.monotonic() >= deadline:
                    raise QueryError(
                        "mutation timed out waiting for active queries "
                        "to drain"
                    )
                await asyncio.sleep(0.001)
            if action == "insert":
                if grades is None:
                    raise QueryError("insert needs grades=[...]")
                db.insert(obj, grades)
            elif action == "update":
                if list_index is None or grade is None:
                    raise QueryError(
                        "update needs list_index= and grade="
                    )
                db.update_grade(obj, list_index, grade)
            elif action == "delete":
                if db.num_objects <= 1:
                    raise QueryError(
                        "refusing to delete the last object; the "
                        "service requires a non-empty database"
                    )
                db.delete(obj)
            else:
                raise QueryError(
                    f"unknown mutation action {action!r}; "
                    "known: insert, update, delete"
                )
            await self._rebuild_sources()
            self._m_mutations[action].inc()
            return {"version": db.version, "n": db.num_objects}
        finally:
            self._mutations_pending -= 1
            self._scheduler.call_soon(self._admit_more)

    async def _rebuild_sources(self) -> None:
        """Re-derive the service plane from the (mutated) database:
        the simulated sources snapshot their list contents at
        construction, and the scan cache holds shared sorted prefixes
        of the old order, so both are rebuilt."""
        assert self._database is not None
        latency, failures, retry = self._source_models
        self._services = list(
            services_for_database(
                self._database,
                latency=latency,
                failures=failures,
                retry=retry,
            )
        )
        self._num_objects = int(self._services[0].num_entries)
        if self._cache is not None:
            await self._cache.aclose()
            self._cache = ScanCache(
                self._services,
                self._require_loop(),
                batch_size=self._batch_size,
                readahead_pages=self._readahead_pages,
                shared=self._share_scans,
            )

    # -- thread-safe wrappers ------------------------------------------
    def subscribe(self, spec: QuerySpec) -> dict:
        """Thread-safe :meth:`asubscribe`."""
        future = asyncio.run_coroutine_threadsafe(
            self.asubscribe(spec), self._require_loop()
        )
        return future.result(timeout=self._wait_timeout)

    def view_events(
        self, view_id: str, after: int = 0, timeout: float = 10.0
    ) -> dict:
        """Thread-safe :meth:`aview_events`."""
        future = asyncio.run_coroutine_threadsafe(
            self.aview_events(view_id, after, timeout),
            self._require_loop(),
        )
        return future.result(timeout=timeout + self._wait_timeout)

    def unsubscribe(self, view_id: str) -> bool:
        """Thread-safe :meth:`aunsubscribe`."""
        future = asyncio.run_coroutine_threadsafe(
            self.aunsubscribe(view_id), self._require_loop()
        )
        return future.result(timeout=self._wait_timeout)

    def mutate(
        self,
        action: str,
        obj,
        *,
        grades: Sequence[float] | None = None,
        list_index: int | None = None,
        grade: float | None = None,
    ) -> dict:
        """Thread-safe :meth:`amutate`."""
        future = asyncio.run_coroutine_threadsafe(
            self.amutate(
                action,
                obj,
                grades=grades,
                list_index=list_index,
                grade=grade,
            ),
            self._require_loop(),
        )
        return future.result(timeout=2 * self._wait_timeout)

    # ------------------------------------------------------------------
    # housekeeping (idle band)
    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        """Idle callback: forget terminal queries whose results were
        collected and have lingered past ``sweep_after``; re-queues
        itself (recurring idle work)."""
        now = time.monotonic()
        for query_id in list(self._queries):
            state = self._queries[query_id]
            if (
                state.status in QueryStatus.TERMINAL
                and state.collected
                and state.finished_at is not None
                and now - state.finished_at >= self._sweep_after
            ):
                del self._queries[query_id]
        if not self._draining:
            self._scheduler.add_idle(self._sweep)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QueryService m={self.num_lists} N={self.num_objects} "
            f"active={len(self._active)} queued={len(self._queue)}>"
        )


async def _call_async(fn, *args):
    return fn(*args)
