"""Shared sorted-stream scans: one cursor per list, many queries.

The paper's cost model is per *query*: each query pays ``cS`` for
every sorted entry **it** consumes.  A server running many concurrent
queries over the same lists would naively open one sorted cursor per
(query, list) and pay the service latency once per consumer.  The scan
cache collapses that: per list there is **one** underlying
``sorted_access_stream`` cursor whose pages append to a shared,
immutable-prefix materialization, and every query reads that prefix at
its own pace.

The accounting contract survives untouched because sharing happens
*below* the charged access plane:

* the materialized prefix is append-only and global -- a query reading
  position ``p`` sees exactly the entries a solo run would have seen
  at ``p`` (sorted order is the service's, fixed, tie order included);
* a query is charged (by its own
  :class:`~repro.services.session.SharedScanSession`) only for
  positions it consumed; pages pulled because a *deeper* query
  demanded them are uncharged speculation for everyone shallower --
  precisely the contract prefetch buffers and
  :meth:`~repro.middleware.access.AccessSession.columnar_view` already
  obey;
* random accesses are never shared: they are per-query probes, charged
  and performed by each query's own session.

Demand model: consumers raise a monotone *demand watermark* (the
deepest position any attached query needs); the single fetcher task
materializes ``demand + readahead`` entries and then parks.  A scan
with no demand costs nothing -- the fetcher is started lazily on first
demand.
"""

from __future__ import annotations

import asyncio
import threading
from collections.abc import Sequence

from ..middleware.errors import DatabaseError
from ..services.protocol import RemoteGradedSource
from ..services.session import SharedScanSession

__all__ = ["SharedListScan", "ScanCache"]


class SharedListScan:
    """One list's shared materialized prefix and its single fetcher.

    Satisfies the :class:`~repro.services.session.SharedScan` protocol
    consumed by :class:`~repro.services.session.SharedScanSession`:
    ``objects``/``grades`` are append-only (grades published before
    objects, under ``cond``), ``demand(n)`` is the thread-safe
    watermark, ``attach``/``detach`` count consumers.
    """

    def __init__(
        self,
        source: RemoteGradedSource,
        loop: asyncio.AbstractEventLoop,
        *,
        batch_size: int = 64,
        readahead_pages: int = 2,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if readahead_pages < 0:
            raise ValueError(
                f"readahead_pages must be >= 0, got {readahead_pages}"
            )
        self._source = source
        self._loop = loop
        self._batch_size = batch_size
        self._readahead = readahead_pages * batch_size
        # --- shared-prefix state (the SharedScan protocol surface) ---
        self.objects: list = []
        self.grades: list[float] = []
        self.done = False
        self.error: BaseException | None = None
        self.cond = threading.Condition()
        #: how close to the frontier a reader gets before demanding more
        self.refill_margin = max(batch_size // 2, 1)
        # --- demand/fetcher plumbing ---
        self._lock = threading.Lock()
        self._demand = 0
        self._attached = 0
        self._closing = False
        self._fetcher: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        # --- observability (uncharged; tests and status endpoints) ---
        self.pages_fetched = 0
        self.peak_attached = 0

    @property
    def name(self) -> str:
        return self._source.name

    @property
    def source(self) -> RemoteGradedSource:
        return self._source

    # ------------------------------------------------------------------
    # the SharedScan protocol
    # ------------------------------------------------------------------
    def attach(self) -> None:
        with self._lock:
            self._attached += 1
            if self._attached > self.peak_attached:
                self.peak_attached = self._attached

    def detach(self) -> None:
        with self._lock:
            if self._attached <= 0:
                raise RuntimeError(f"detach without attach on {self.name!r}")
            self._attached -= 1

    @property
    def attached(self) -> int:
        """Currently attached consumers (sessions)."""
        with self._lock:
            return self._attached

    def materialized(self) -> int:
        """Entries in the shared prefix so far."""
        return len(self.objects)

    def demand(self, n: int) -> None:
        """Ask the fetcher to materialize at least ``n`` entries
        (monotone; thread-safe; cheap when already satisfied)."""
        with self._lock:
            if n <= self._demand:
                return
            self._demand = n
            if self._closing:
                return
        try:
            self._loop.call_soon_threadsafe(self._poke)
        except RuntimeError:
            # loop already closed (service teardown); waiters are
            # released by close()'s notify_all
            pass

    # ------------------------------------------------------------------
    # fetcher (loop-side)
    # ------------------------------------------------------------------
    def _poke(self) -> None:
        if self._closing:
            return
        if self._fetcher is None:
            self._fetcher = self._loop.create_task(self._fetch())
        elif self._wake is not None:
            self._wake.set()

    def _target(self) -> int:
        with self._lock:
            return self._demand + self._readahead

    async def _fetch(self) -> None:
        self._wake = asyncio.Event()
        try:
            stream = self._source.sorted_access_stream(self._batch_size)
            async for page in stream:
                with self.cond:
                    # grades first: readers' lock-free fast path gates
                    # on len(objects), which must trail grades
                    self.grades.extend(page.grades)
                    self.objects.extend(page.objects)
                    self.pages_fetched += 1
                    self.cond.notify_all()
                while (
                    not self._closing
                    and len(self.objects) >= self._target()
                ):
                    self._wake.clear()
                    await self._wake.wait()
                if self._closing:
                    return
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            # the stream is shared: every attached query sees the same
            # failure (resilient sources fail over *inside* the stream,
            # so only truly exhausted sources end up here)
            with self.cond:
                self.error = exc
                self.cond.notify_all()
            return
        with self.cond:
            self.done = True
            self.cond.notify_all()

    async def aclose(self) -> None:
        """Stop the fetcher and release any blocked readers (loop-side,
        idempotent)."""
        with self._lock:
            self._closing = True
        if self._wake is not None:
            self._wake.set()
        if self._fetcher is not None:
            self._fetcher.cancel()
            await asyncio.gather(self._fetcher, return_exceptions=True)
            self._fetcher = None
        with self.cond:
            self.cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SharedListScan {self.name!r} mat={len(self.objects)} "
            f"attached={self.attached} pages={self.pages_fetched}>"
        )


class ScanCache:
    """Per-list shared scans over ``m`` services, and session checkout.

    ``shared=True`` (the point of the cache): every checkout over list
    ``i`` attaches to the *same* :class:`SharedListScan`, so ``Q``
    concurrent queries drive one cursor per list.  ``shared=False`` is
    the control arm for the benchmark: checkouts get private scans with
    identical machinery, so measured differences are pure scan sharing.

    Loop-affine: construct and use on the event loop that owns the
    services' I/O.
    """

    def __init__(
        self,
        services: Sequence[RemoteGradedSource],
        loop: asyncio.AbstractEventLoop,
        *,
        batch_size: int = 64,
        readahead_pages: int = 2,
        shared: bool = True,
    ):
        if not services:
            raise DatabaseError("need at least one service")
        self._services = list(services)
        self._loop = loop
        self._batch_size = batch_size
        self._readahead_pages = readahead_pages
        self.shared = shared
        self._scans: list[SharedListScan] | None = (
            [self._new_scan(s) for s in self._services] if shared else None
        )
        self._private_scans: list[SharedListScan] = []

    def _new_scan(self, source: RemoteGradedSource) -> SharedListScan:
        return SharedListScan(
            source,
            self._loop,
            batch_size=self._batch_size,
            readahead_pages=self._readahead_pages,
        )

    @property
    def num_lists(self) -> int:
        return len(self._services)

    def scan(self, list_index: int) -> SharedListScan:
        """The shared scan for one list (``shared=True`` only)."""
        if self._scans is None:
            raise DatabaseError("cache is in private-scan mode")
        return self._scans[list_index]

    def scans_for(self, lists: Sequence[int]) -> list[SharedListScan]:
        if self._scans is not None:
            return [self._scans[i] for i in lists]
        fresh = [self._new_scan(self._services[i]) for i in lists]
        self._private_scans.extend(fresh)
        return fresh

    def checkout(
        self,
        lists: Sequence[int] | None = None,
        *,
        query_id: str = "query",
        **session_kwargs,
    ) -> SharedScanSession:
        """A per-query accounted session over ``lists`` (default: all),
        reading the cache's scans.  ``session_kwargs`` pass through to
        :class:`~repro.services.session.SharedScanSession`."""
        if lists is None:
            lists = range(len(self._services))
        lists = list(lists)
        for i in lists:
            if not (0 <= i < len(self._services)):
                raise DatabaseError(
                    f"list index {i} out of range for m={len(self._services)}"
                )
        if len(set(lists)) != len(lists):
            raise DatabaseError(f"duplicate list indices in {lists}")
        services = [self._services[i] for i in lists]
        return SharedScanSession(
            services,
            self.scans_for(lists),
            self._loop,
            query_id=query_id,
            **session_kwargs,
        )

    def stats(self) -> dict:
        """Cache-level observability: per-list materialization, pages
        fetched, attachment high-water marks."""
        scans = self._scans if self._scans is not None else self._private_scans
        return {
            "shared": self.shared,
            "scans": [
                {
                    "name": scan.name,
                    "materialized": scan.materialized(),
                    "pages_fetched": scan.pages_fetched,
                    "attached": scan.attached,
                    "peak_attached": scan.peak_attached,
                }
                for scan in scans
            ],
        }

    async def aclose(self) -> None:
        """Stop every fetcher (loop-side, idempotent)."""
        scans = list(self._scans or []) + self._private_scans
        for scan in scans:
            await scan.aclose()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "shared" if self.shared else "private"
        return f"<ScanCache m={len(self._services)} {mode}>"
