"""A cooperative scheduler for the query service's event loop.

Modeled on the classic single-loop media-player dispatcher: three
priority bands on one asyncio loop --

* **urgent** calls run first, FIFO (admission dispatch: "a slot just
  freed, start the next queued query");
* **timed** calls run when due (deadline sweeps, delayed retries);
* **idle** calls run only when nothing urgent is queued and no timed
  call is due -- at most *one* idle call per cycle, so housekeeping
  (forgetting collected queries, trimming caches) can never starve
  query dispatch, and a loop hosting hundreds of concurrent queries
  degrades by doing less housekeeping, not by serving queries late.

The scheduler is loop-affine: :meth:`start` must run on the loop that
will host it, and ``call_soon``/``call_later``/``add_idle`` must be
invoked on that loop (cross-thread callers go through
``loop.call_soon_threadsafe``).  Callbacks are plain callables;
exceptions are caught and kept in :attr:`failures` (bounded) so one
broken housekeeping hook cannot kill the service.
"""

from __future__ import annotations

import asyncio
import heapq
from collections import deque
from typing import Callable

__all__ = ["Scheduler", "ScheduledCall"]

#: how many callback exceptions :attr:`Scheduler.failures` retains
MAX_FAILURES = 32


class ScheduledCall:
    """Handle for one scheduled callback; ``cancel()`` is idempotent
    and a cancelled call is guaranteed not to run."""

    __slots__ = ("fn", "args", "cancelled")

    def __init__(self, fn: Callable, args: tuple):
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Scheduler:
    """See the module docstring.

    Lifecycle: construct anywhere, :meth:`start` on the host loop,
    ``await`` :meth:`stop` to drain.  The driver task sleeps on an
    event when all three bands are empty, so an idle scheduler costs
    nothing.
    """

    def __init__(self):
        self._urgent: deque[ScheduledCall] = deque()
        # (due, seq, call) -- seq breaks ties FIFO among equal due times
        self._timed: list[tuple[float, int, ScheduledCall]] = []
        self._idle: deque[ScheduledCall] = deque()
        self._seq = 0
        self._wake: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping = False
        #: exceptions raised by callbacks, most recent last (bounded)
        self.failures: deque[BaseException] = deque(maxlen=MAX_FAILURES)
        #: counters for observability: calls run per band
        self.ran = {"urgent": 0, "timed": 0, "idle": 0}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Scheduler":
        """Start the driver task on the running loop (idempotent)."""
        if self._task is not None:
            return self
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stopping = False
        self._task = self._loop.create_task(self._drive())
        return self

    async def stop(self) -> None:
        """Stop the driver; pending calls are dropped (idempotent)."""
        task = self._task
        if task is None:
            return
        self._stopping = True
        assert self._wake is not None
        self._wake.set()
        await asyncio.gather(task, return_exceptions=True)
        self._task = None

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    # ------------------------------------------------------------------
    # scheduling (loop-side)
    # ------------------------------------------------------------------
    def call_soon(self, fn: Callable, *args) -> ScheduledCall:
        """Run ``fn(*args)`` on the next cycle, before any timed or
        idle work."""
        call = ScheduledCall(fn, args)
        self._urgent.append(call)
        self._poke()
        return call

    def call_later(self, delay: float, fn: Callable, *args) -> ScheduledCall:
        """Run ``fn(*args)`` once ``delay`` seconds have passed (never
        before, possibly later if the loop is busy)."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        call = ScheduledCall(fn, args)
        loop = self._loop or asyncio.get_event_loop()
        self._seq += 1
        heapq.heappush(self._timed, (loop.time() + delay, self._seq, call))
        self._poke()
        return call

    def add_idle(self, fn: Callable, *args) -> ScheduledCall:
        """Run ``fn(*args)`` once, when a cycle finds nothing urgent
        and nothing due.  Recurring housekeeping re-adds itself."""
        call = ScheduledCall(fn, args)
        self._idle.append(call)
        self._poke()
        return call

    def pending(self) -> dict:
        """Band sizes, for tests and status endpoints."""
        return {
            "urgent": len(self._urgent),
            "timed": len(self._timed),
            "idle": len(self._idle),
        }

    # ------------------------------------------------------------------
    # the drive loop
    # ------------------------------------------------------------------
    def _poke(self) -> None:
        if self._wake is not None:
            self._wake.set()

    def _invoke(self, band: str, call: ScheduledCall) -> None:
        if call.cancelled:
            return
        self.ran[band] += 1
        try:
            call.fn(*call.args)
        except BaseException as exc:
            self.failures.append(exc)

    async def _drive(self) -> None:
        assert self._loop is not None and self._wake is not None
        while not self._stopping:
            # band 1: drain every urgent call queued so far (calls a
            # callback enqueues run in this same cycle, still ahead of
            # timed/idle work)
            while self._urgent and not self._stopping:
                self._invoke("urgent", self._urgent.popleft())
            # band 2: run every due timed call
            now = self._loop.time()
            while self._timed and self._timed[0][0] <= now:
                _, __, call = heapq.heappop(self._timed)
                self._invoke("timed", call)
            if self._urgent:
                continue  # a timed callback queued urgent work
            # band 3: exactly one idle call per quiet cycle
            if self._idle:
                self._invoke("idle", self._idle.popleft())
                # yield so ready loop callbacks (I/O, new submissions)
                # interleave between idle steps
                await asyncio.sleep(0)
                continue
            # nothing to do: sleep until poked or the next timed call
            self._wake.clear()
            if self._urgent or self._stopping:
                continue
            timeout = None
            if self._timed:
                timeout = max(0.0, self._timed[0][0] - self._loop.time())
            try:
                await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self.running else "stopped"
        return f"<Scheduler {state} {self.pending()}>"
