"""The concurrent top-k query service.

Everything below :mod:`repro.server` turns the paper's single-query
middleware into a *server*: many top-k queries in flight at once over
one set of backing graded sources, scheduled cooperatively on a single
asyncio event loop, with per-query billing.

* :mod:`repro.server.scheduler` -- :class:`Scheduler`: the cooperative
  three-band dispatcher (urgent / timed / idle) the service's
  housekeeping rides on; idle work can never starve query dispatch.
* :mod:`repro.server.scancache` -- :class:`SharedListScan` /
  :class:`ScanCache`: one underlying sorted cursor per list, shared by
  every concurrent query over that list.  Sharing happens *below* the
  charged access plane, so each query is billed exactly the prefix it
  consumed; deeper queries' pages are uncharged speculation for
  shallower ones.
* :mod:`repro.server.service` -- :class:`QueryService`: admission
  (FIFO queue, bounded, :class:`~repro.middleware.errors.AdmissionError`
  when full), execution (the unmodified synchronous engines on a
  worker pool via ``run_on_loop``), cancellation, and billing
  (:class:`~repro.middleware.cost.QueryBill` per terminal query into a
  :class:`~repro.middleware.cost.BillingLedger`).
* :mod:`repro.server.wire` / :mod:`repro.server.client` --
  :class:`QueryServer` / :class:`QueryServiceClient`: the service over
  real sockets on the :class:`~repro.transport.frames.FrameServer`
  chassis (``python -m repro.server`` is the standalone daemon).

The parity contract (enforced by ``tests/test_server.py``): every
query of a concurrent mix -- any engine, any k, overlapping or
disjoint lists, shared or private scans -- returns **bit-identically**
the result and ``AccessStats`` of a solo scalar-reference run over the
same logical database.

Protocol v2 (``PROTOCOL_VERSION``) adds the write plane: services
backed by a :class:`~repro.middleware.mutable.MutableDatabase` accept
``mutate`` writes and ``subscribe`` standing queries (server-side
:class:`~repro.views.LiveView` instances), streaming add/change/remove
deltas to :class:`QueryServiceClient` subscribers via long-polled
``view_events`` -- and the parity contract extends to them: after any
mutation sequence a view's result set is bit-identical to a
from-scratch run on the post-mutation database.
"""

from .client import QueryOutcome, QueryServiceClient, ViewSnapshot
from .scancache import ScanCache, SharedListScan
from .scheduler import ScheduledCall, Scheduler
from .service import (
    AGGREGATIONS,
    ALGORITHMS,
    QueryHandle,
    QueryService,
    QuerySpec,
    QueryStatus,
)
from .wire import (
    PROTOCOL_VERSION,
    QueryServer,
    decode_result,
    encode_result,
)

__all__ = [
    "Scheduler",
    "ScheduledCall",
    "SharedListScan",
    "ScanCache",
    "QueryService",
    "QuerySpec",
    "QueryHandle",
    "QueryStatus",
    "ALGORITHMS",
    "AGGREGATIONS",
    "PROTOCOL_VERSION",
    "QueryServer",
    "QueryServiceClient",
    "QueryOutcome",
    "ViewSnapshot",
    "encode_result",
    "decode_result",
]
