"""The query service over the wire: :class:`QueryServer` and codecs.

:class:`QueryServer` mounts a :class:`~repro.server.service.QueryService`
on the :class:`~repro.transport.frames.FrameServer` chassis, so remote
clients submit whole top-k *queries* over the same length-prefixed
frame protocol that :class:`~repro.transport.server.GradedSourceServer`
uses for raw source reads.  Ops:

``query``
    ``{"spec": {...}}`` -> ``{"query": id}``.  Admission errors travel
    back as ``error="admission"`` frames.
``result``
    ``{"query": id, "timeout": s}`` -> long-poll: ``{"done": True,
    "result": ..., "bill": ...}`` when the query reached a terminal
    state within ``timeout`` seconds, ``{"done": False, "status": ...}``
    otherwise.  A failed query's error surfaces here, as the error
    frame the query's exception maps to (a cancelled query yields
    ``error="cancelled"``).
``status`` / ``cancel`` / ``stats`` / ``meta`` / ``ping``
    Introspection and control.  ``meta`` reports ``protocol`` (the
    wire protocol version, 2 as of the mutable/view release) and
    ``mutable`` so clients can feature-detect; v1 servers simply omit
    both keys, and v1 clients ignore them -- the codec is
    unknown-field tolerant in both directions.
``subscribe`` / ``view_events`` / ``unsubscribe`` / ``mutate``
    Protocol v2, mutable-backed services only: register a standing
    query (``{"spec": {..., "mode": "view"}}`` -> ``{"view": id,
    "result": ..., "seq": 0, "version": v}``), long-poll its delta
    stream (``{"view": id, "after": seq, "timeout": s}`` ->
    ``{"events": [...], "seq": latest, "version": v}``), drop it, and
    apply insert/update/delete writes.  A connection's views die with
    it, exactly like its queries.

Per-connection state matters here, unlike for source reads: the ids a
connection submitted live in ``conn.state["queries"]``, and when the
client disconnects its unfinished queries are cancelled -- abandoning
a socket must free the scan-cache attachments and worker slots its
queries held.

The result codec (:func:`encode_result` / :func:`decode_result`) is
lossless for everything the differential tests compare: items with
exact grades or ``[W, B]`` bounds, halting reason, rounds, depth,
buffer high-water mark, the full per-list ``AccessStats`` (the wire
format requires ``str`` dict keys, so per-list counts travel as
``{"0": n0, ...}``), and portable extras (scalars only -- engine
internals like interned id maps stay server-side).
"""

from __future__ import annotations

import asyncio

from ..middleware.access import AccessStats
from ..middleware.errors import (
    AdmissionError,
    QueryCancelledError,
    UnknownQueryError,
    UnknownViewError,
    WireFormatError,
)
from ..core.result import RankedItem, TopKResult
from ..transport.frames import BASE_ERROR_CODES, FrameConnection, FrameServer
from .service import ALGORITHMS, AGGREGATIONS, QueryService, QuerySpec

__all__ = [
    "PROTOCOL_VERSION",
    "QueryServer",
    "encode_result",
    "decode_result",
]

#: wire protocol version reported by the ``meta`` op.  v1 (PR 7) had
#: one-shot queries only and did not report a version; v2 adds the
#: ``mode`` spec field and the subscribe/view_events/unsubscribe/mutate
#: ops.  Decoders tolerate unknown fields, so version skew degrades to
#: feature absence, never to frame errors.
PROTOCOL_VERSION = 2


#: extras value types that survive the trip (everything else is
#: server-side engine state and is dropped from wire results)
_PORTABLE_SCALARS = (str, int, float, bool, type(None))


def encode_result(result: TopKResult) -> dict:
    """A :class:`~repro.core.result.TopKResult` as a wire-portable dict
    (plain scalars, lists, and ``str``-keyed dicts only)."""
    stats = result.stats
    return {
        "algorithm": result.algorithm,
        "k": result.k,
        "items": [
            {
                "obj": item.obj,
                "grade": item.grade,
                "lower": item.lower_bound,
                "upper": item.upper_bound,
            }
            for item in result.items
        ],
        "stats": {
            "sorted_accesses": stats.sorted_accesses,
            "random_accesses": stats.random_accesses,
            # the wire codec requires str dict keys; per-list counts
            # are int-keyed in AccessStats
            "sorted_by_list": {
                str(i): c for i, c in stats.sorted_by_list.items()
            },
            "random_by_list": {
                str(i): c for i, c in stats.random_by_list.items()
            },
            "middleware_cost": stats.middleware_cost,
            "depth": stats.depth,
            "distinct_objects_seen": stats.distinct_objects_seen,
        },
        "rounds": result.rounds,
        "depth": result.depth,
        "halt_reason": result.halt_reason,
        "max_buffer_size": result.max_buffer_size,
        "extras": {
            key: value
            for key, value in result.extras.items()
            if isinstance(key, str)
            and isinstance(value, _PORTABLE_SCALARS)
        },
    }


def decode_result(data: dict) -> TopKResult:
    """Rebuild a :class:`~repro.core.result.TopKResult` from
    :func:`encode_result` output (grades stay bit-exact: the frame
    codec ships floats as raw IEEE doubles)."""
    try:
        stats_data = data["stats"]
        stats = AccessStats(
            sorted_accesses=stats_data["sorted_accesses"],
            random_accesses=stats_data["random_accesses"],
            sorted_by_list={
                int(i): c for i, c in stats_data["sorted_by_list"].items()
            },
            random_by_list={
                int(i): c for i, c in stats_data["random_by_list"].items()
            },
            middleware_cost=stats_data["middleware_cost"],
            depth=stats_data["depth"],
            distinct_objects_seen=stats_data["distinct_objects_seen"],
        )
        items = [
            RankedItem(
                obj=item["obj"],
                grade=item["grade"],
                lower_bound=item["lower"],
                upper_bound=item["upper"],
            )
            for item in data["items"]
        ]
        return TopKResult(
            algorithm=data["algorithm"],
            k=data["k"],
            items=items,
            stats=stats,
            rounds=data["rounds"],
            depth=data["depth"],
            halt_reason=data["halt_reason"],
            max_buffer_size=data["max_buffer_size"],
            extras=dict(data["extras"]),
        )
    except (KeyError, TypeError, AttributeError) as exc:
        raise WireFormatError(f"malformed result payload: {exc!r}") from exc


#: how long one ``result`` long-poll waits server-side before replying
#: ``done=False`` (clients re-poll; bounded so dead clients can't pin
#: request slots forever)
MAX_RESULT_WAIT_S = 30.0


class QueryServer(FrameServer):
    """Serve a :class:`~repro.server.service.QueryService` over TCP.

    The service is armed on the serving loop (``_starting`` hook) and
    torn down when the server closes, so ``QueryServer(service=...)``
    owns its service's lifecycle in both async and background-thread
    modes.
    """

    thread_name = "repro-query-server"
    error_codes = (
        (QueryCancelledError, "cancelled"),
        (AdmissionError, "admission"),
        (UnknownQueryError, "unknown_query"),
        (UnknownViewError, "unknown_view"),
    ) + BASE_ERROR_CODES

    def __init__(
        self,
        service: QueryService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int | None = None,
        max_concurrent: int | None = None,
    ):
        kwargs = {} if max_frame is None else {"max_frame": max_frame}
        super().__init__(
            host=host, port=port, max_concurrent=max_concurrent,
            obs=service.obs, **kwargs
        )
        self._service = service

    @property
    def service(self) -> QueryService:
        return self._service

    async def _starting(self) -> None:
        await self._service.astart()

    async def _stopping(self) -> None:
        await self._service.aclose()

    async def _connection_closed(self, conn: FrameConnection) -> None:
        # the client is gone: nobody will ever collect these results,
        # so cancelling frees their worker slots, scan attachments,
        # and budget clocks
        for query_id in conn.state.get("queries", ()):
            try:
                self._service._cancel_on_loop(query_id)
            except UnknownQueryError:
                pass  # already swept
        # standing views die with their subscriber
        for view_id in list(conn.state.get("views", ())):
            try:
                await self._service.aunsubscribe(view_id)
            except UnknownViewError:
                pass  # already dropped

    async def _dispatch(self, message, conn: FrameConnection) -> dict:
        op = message.get("op")
        if op == "query":
            spec = QuerySpec.from_dict(message.get("spec"))
            handle = await self._service.asubmit(spec)
            conn.state.setdefault("queries", set()).add(handle.query_id)
            return {"query": handle.query_id}
        if op == "result":
            return await self._result(message, conn)
        if op == "status":
            return self._service.status(self._query_id(message))
        if op == "cancel":
            cancelled = self._service._cancel_on_loop(
                self._query_id(message)
            )
            return {"cancelled": cancelled}
        if op == "trace":
            return {
                "trace": self._service.query_trace(self._query_id(message))
            }
        if op == "stats":
            return {"stats": self._service.stats()}
        if op == "metrics":
            return {"metrics": self._service.metrics()}
        if op == "meta":
            return {
                "m": self._service.num_lists,
                "n": self._service.num_objects,
                "algorithms": sorted(ALGORITHMS),
                "aggregations": sorted(AGGREGATIONS),
                "protocol": PROTOCOL_VERSION,
                "mutable": self._service.mutable is not None,
                "compression": "zlib",
            }
        if op == "ping":
            return {"pong": True}
        if op == "subscribe":
            spec = QuerySpec.from_dict(message.get("spec"))
            reply = await self._service.asubscribe(spec)
            conn.state.setdefault("views", set()).add(reply["view"])
            return {
                "view": reply["view"],
                "result": encode_result(reply["result"]),
                "seq": reply["seq"],
                "version": reply["version"],
            }
        if op == "view_events":
            return await self._view_events(message)
        if op == "unsubscribe":
            view_id = self._view_id(message)
            dropped = await self._service.aunsubscribe(view_id)
            conn.state.get("views", set()).discard(view_id)
            return {"unsubscribed": dropped}
        if op == "mutate":
            return await self._mutate(message)
        raise WireFormatError(f"unknown op {op!r}")

    def _error_response(self, rid, exc: BaseException) -> dict:
        response = super()._error_response(rid, exc)
        # carry the query/view id so the client can rebuild the exact
        # exception (mirrors the chassis's UnknownObjectError handling)
        query_id = getattr(exc, "query_id", None)
        if isinstance(query_id, str):
            response["query"] = query_id
        view_id = getattr(exc, "view_id", None)
        if isinstance(view_id, str):
            response["view"] = view_id
        return response

    @staticmethod
    def _query_id(message) -> str:
        query_id = message.get("query")
        if not isinstance(query_id, str):
            raise WireFormatError(f"bad query id {query_id!r}")
        return query_id

    @staticmethod
    def _view_id(message) -> str:
        view_id = message.get("view")
        if not isinstance(view_id, str):
            raise WireFormatError(f"bad view id {view_id!r}")
        return view_id

    async def _view_events(self, message) -> dict:
        view_id = self._view_id(message)
        after = message.get("after", 0)
        if not isinstance(after, int) or isinstance(after, bool) or after < 0:
            raise WireFormatError(f"bad 'after' sequence {after!r}")
        timeout = message.get("timeout", MAX_RESULT_WAIT_S)
        if not isinstance(timeout, (int, float)) or isinstance(timeout, bool):
            raise WireFormatError(f"bad timeout {timeout!r}")
        timeout = min(float(timeout), MAX_RESULT_WAIT_S)
        return await self._service.aview_events(
            view_id, after=after, timeout=timeout
        )

    async def _mutate(self, message) -> dict:
        action = message.get("action")
        if not isinstance(action, str):
            raise WireFormatError(f"bad mutation action {action!r}")
        if "obj" not in message:
            raise WireFormatError("mutation needs an 'obj'")
        grades = message.get("grades")
        if grades is not None and not isinstance(grades, (list, tuple)):
            raise WireFormatError(f"bad grades {grades!r}")
        list_index = message.get("list_index")
        if list_index is not None and (
            not isinstance(list_index, int) or isinstance(list_index, bool)
        ):
            raise WireFormatError(f"bad list_index {list_index!r}")
        grade = message.get("grade")
        if grade is not None and (
            not isinstance(grade, (int, float)) or isinstance(grade, bool)
        ):
            raise WireFormatError(f"bad grade {grade!r}")
        return await self._service.amutate(
            action,
            message["obj"],
            grades=grades,
            list_index=list_index,
            grade=None if grade is None else float(grade),
        )

    async def _result(self, message, conn: FrameConnection) -> dict:
        query_id = self._query_id(message)
        timeout = message.get("timeout", MAX_RESULT_WAIT_S)
        if not isinstance(timeout, (int, float)) or isinstance(timeout, bool):
            raise WireFormatError(f"bad timeout {timeout!r}")
        timeout = min(float(timeout), MAX_RESULT_WAIT_S)
        state = self._service.query_state(query_id)
        try:
            result = await asyncio.wait_for(
                asyncio.wrap_future(state.future), timeout
            )
        except asyncio.TimeoutError:
            return {"done": False, "status": state.status}
        finally:
            state.collected = True
        # errors (including QueryCancelledError) propagate out of
        # wait_for and become this request's error frame
        bill = state.bill
        return {
            "done": True,
            "result": encode_result(result),
            "bill": bill.as_dict() if bill is not None else None,
        }
