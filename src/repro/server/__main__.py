"""CLI entry point: the standalone query-service daemon.

::

    PYTHONPATH=src python -m repro.server --npz db.npz --port 0
    PYTHONPATH=src python -m repro.server --store db.store --port 0

Loads the persisted database (``--npz`` fully into RAM; ``--store``
out-of-core through the memory-mapped v3 store and its LRU page cache,
sized by ``--store-cache-mb`` / ``--store-page-rows`` -- the cache's
hit/miss/eviction counters ride the obs plane and the ``stats`` wire
op's ``store`` key), builds one simulated service per list
(optionally behind a seeded latency model), mounts a
:class:`~repro.server.service.QueryService` on a
:class:`~repro.server.wire.QueryServer`, binds, prints one readiness
line ``LISTENING <host> <port>`` (flushed), and serves until killed.
SIGTERM is graceful: stop accepting, drain in-flight requests
(bounded by ``--drain-timeout``), tear down the service, exit 0.

``--max-active`` / ``--max-queued`` set the admission policy;
``--no-share-scans`` turns the scan cache into the benchmark's
private-scan control arm.

The daemon carries an :class:`~repro.obs.Observability` plane by
default (``--no-obs`` drops it): the ``metrics`` wire op serves the
registry snapshot, and ``--metrics-port`` additionally binds a
Prometheus-text HTTP endpoint (readiness line ``METRICS <host>
<port>`` after ``LISTENING``).  ``--slow-query-threshold`` retains any
query slower than the threshold with its per-round bound trajectory,
logged as one JSON line on stderr.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path

from ..middleware.cost import AdmissionPolicy
from ..middleware.serialization import load_npz
from ..obs import Observability
from ..services.simulated import LatencyModel
from .service import QueryService
from .wire import QueryServer

__all__ = ["main"]


def _slow_query_line(record: dict) -> None:
    print(json.dumps(record, sort_keys=True), file=sys.stderr, flush=True)


def build_server(args: argparse.Namespace) -> QueryServer:
    latency = None
    if args.latency or args.jitter:
        latency = LatencyModel(
            base=args.latency, jitter=args.jitter, seed=args.latency_seed
        )
    obs = None
    if not args.no_obs:
        obs = Observability(
            slow_query_threshold=args.slow_query_threshold,
            slow_query_sink=(
                _slow_query_line
                if args.slow_query_threshold is not None
                else None
            ),
        )
    if args.store is not None:
        from ..store import open_store

        db = open_store(
            Path(args.store),
            cache_bytes=args.store_cache_mb * 1024 * 1024,
            page_rows=args.store_page_rows,
            obs=obs,
        )
    else:
        db = load_npz(Path(args.npz))
    service = QueryService(
        database=db,
        latency=latency,
        obs=obs,
        admission=AdmissionPolicy(
            max_active=args.max_active,
            max_queued=args.max_queued,
            default_deadline_s=args.default_deadline,
        ),
        share_scans=not args.no_share_scans,
        batch_size=args.batch_size,
        readahead_pages=args.readahead_pages,
    )
    return QueryServer(
        service,
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
    )


async def _serve(args: argparse.Namespace) -> None:
    server = build_server(args)
    await server.start()
    exporter = None
    obs = server.service.obs
    if args.metrics_port is not None:
        if obs is None:
            raise SystemExit("--metrics-port requires the obs plane "
                             "(drop --no-obs)")
        exporter = obs.exporter(host=args.host, port=args.metrics_port)
        await exporter.astart()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    loop.add_signal_handler(signal.SIGTERM, stop.set)
    host, port = server.address
    print(f"LISTENING {host} {port}", flush=True)
    if exporter is not None:
        print(f"METRICS {exporter.host} {exporter.port}", flush=True)
    try:
        await stop.wait()
        await server.service.adrain(args.drain_timeout)
        await server.drain(args.drain_timeout)
    finally:
        if exporter is not None:
            await exporter.aclose()
        await server.aclose()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server", description=__doc__
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--npz", help="database written by save_npz (loaded into RAM)"
    )
    source.add_argument(
        "--store",
        help="v3 store written by save_store, served out-of-core via "
        "np.memmap behind an LRU page cache (legacy .npz files are "
        "detected and loaded into RAM as with --npz)",
    )
    parser.add_argument(
        "--store-cache-mb",
        type=int,
        default=64,
        help="LRU page-cache capacity for --store, megabytes",
    )
    parser.add_argument(
        "--store-page-rows",
        type=int,
        default=4096,
        help="rows per cache page for --store",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    parser.add_argument(
        "--max-active",
        type=int,
        default=4,
        help="queries running concurrently (worker threads)",
    )
    parser.add_argument(
        "--max-queued",
        type=int,
        default=256,
        help="admission queue bound; beyond it submissions are refused",
    )
    parser.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        help="default per-query wall-clock budget, seconds",
    )
    parser.add_argument(
        "--no-share-scans",
        action="store_true",
        help="private sorted cursors per query (the benchmark control)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=64, help="scan page size"
    )
    parser.add_argument(
        "--readahead-pages",
        type=int,
        default=2,
        help="pages the shared fetcher keeps ahead of demand",
    )
    parser.add_argument(
        "--latency",
        type=float,
        default=0.0,
        help="per-service-call latency base, seconds",
    )
    parser.add_argument(
        "--jitter",
        type=float,
        default=0.0,
        help="per-service-call latency jitter, seconds",
    )
    parser.add_argument("--latency-seed", type=int, default=0)
    parser.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        help="server-wide cap on in-flight wire requests",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="seconds SIGTERM waits for in-flight queries to drain",
    )
    parser.add_argument(
        "--no-obs",
        action="store_true",
        help="run without the observability plane (no metrics/traces)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="bind a Prometheus-text HTTP endpoint on this port "
        "(0 picks a free one); prints 'METRICS <host> <port>'",
    )
    parser.add_argument(
        "--slow-query-threshold",
        type=float,
        default=None,
        help="retain queries slower than this many seconds with their "
        "per-round bound trajectory (one JSON line on stderr each)",
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
