"""The query-service client: whole top-k queries over the wire.

:class:`QueryServiceClient` extends
:class:`~repro.transport.client.TransportClient` (same pooled,
multiplexed connections, same connection-level retry) with the
:class:`~repro.server.wire.QueryServer` protocol: submit a
:class:`~repro.server.service.QuerySpec`, long-poll for its result,
cancel it, read the service's stats.  Server-reported query errors
come back as the exact in-process types --
:class:`~repro.middleware.errors.AdmissionError`,
:class:`~repro.middleware.errors.QueryCancelledError`,
:class:`~repro.middleware.errors.UnknownQueryError` -- so client code
handles a remote service and an embedded one identically.

Submission is *not* retried at the connection level the way stateless
source reads are: a submit that dies mid-flight may or may not have
admitted the query, so :meth:`submit_query` sends on the default
single-attempt path and surfaces the connection error to the caller
(who can list nothing -- queries are cheap to resubmit and the
abandoned twin, if any, is cancelled when its connection drops).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from ..core.base import QueryError
from ..core.result import TopKResult
from ..middleware.errors import (
    AdmissionError,
    QueryCancelledError,
    UnknownQueryError,
    UnknownViewError,
)
from ..services.simulated import RetryPolicy
from ..transport.client import TransportClient
from .service import QuerySpec
from .wire import decode_result

__all__ = ["QueryServiceClient", "QueryOutcome", "ViewSnapshot"]


@dataclass(frozen=True)
class QueryOutcome:
    """One finished remote query: the decoded result and the bill the
    service posted for it (a plain dict, see
    :meth:`~repro.middleware.cost.QueryBill.as_dict`)."""

    query_id: str
    result: TopKResult
    bill: dict | None


@dataclass(frozen=True)
class ViewSnapshot:
    """A freshly-registered standing query: its view id, the initial
    :class:`~repro.core.result.TopKResult`, the event-sequence floor
    to poll :meth:`QueryServiceClient.view_events` from, and the
    database version the snapshot reflects."""

    view_id: str
    result: TopKResult
    seq: int
    version: int


class QueryServiceClient(TransportClient):
    """See the module docstring; construct with the
    :class:`~repro.server.wire.QueryServer` address."""

    def __init__(self, host: str, port: int, **kwargs):
        # submissions must not be silently replayed (see module
        # docstring); callers can still opt back into retries
        kwargs.setdefault("retry", RetryPolicy(max_attempts=1))
        super().__init__(host, port, **kwargs)

    def _map_server_error(self, response: dict, service: str):
        code = response.get("error")
        query_id = response.get("query")
        if code == "cancelled" and isinstance(query_id, str):
            return QueryCancelledError(query_id)
        if code == "unknown_query" and isinstance(query_id, str):
            return UnknownQueryError(query_id)
        view_id = response.get("view")
        if code == "unknown_view" and isinstance(view_id, str):
            return UnknownViewError(view_id)
        if code == "admission":
            return AdmissionError(
                response.get("message", "admission refused")
            )
        if code == "bad_request":
            # invalid specs fail identically against a remote service
            # and an embedded one (QueryError is a ValueError)
            return QueryError(response.get("message", "bad request"))
        return super()._map_server_error(response, service)

    # ------------------------------------------------------------------
    # the query protocol
    # ------------------------------------------------------------------
    async def submit_query(self, spec: QuerySpec | dict) -> str:
        """Admit one query; returns its id.  Raises
        :class:`~repro.middleware.errors.AdmissionError` when refused
        and ``bad_request``-mapped errors for invalid specs."""
        if isinstance(spec, QuerySpec):
            spec = spec.as_dict()
        response = await self.request(
            {"op": "query", "spec": dict(spec)}, service="query-service"
        )
        return response["query"]

    async def stream_result(
        self,
        query_id: str,
        *,
        poll_timeout: float = 10.0,
        deadline: float | None = None,
    ) -> QueryOutcome:
        """Long-poll until the query reaches a terminal state; returns
        the decoded result + bill, or raises the query's terminal error
        (:class:`~repro.middleware.errors.QueryCancelledError` for a
        cancelled query).  ``deadline`` bounds the *total* client-side
        wait (``None`` = poll forever); each poll holds the request
        open server-side for up to ``poll_timeout`` seconds."""
        loop = asyncio.get_running_loop()
        give_up = None if deadline is None else loop.time() + deadline
        while True:
            timeout = poll_timeout
            if give_up is not None:
                timeout = min(timeout, give_up - loop.time())
                if timeout <= 0:
                    raise TimeoutError(
                        f"query {query_id!r} not done within {deadline}s"
                    )
            response = await self.request(
                {"op": "result", "query": query_id, "timeout": timeout},
                service="query-service",
            )
            if response.get("done"):
                return QueryOutcome(
                    query_id=query_id,
                    result=decode_result(response["result"]),
                    bill=response.get("bill"),
                )

    async def run_query(self, spec: QuerySpec | dict, **wait) -> QueryOutcome:
        """Submit and wait: :meth:`submit_query` +
        :meth:`stream_result`."""
        return await self.stream_result(await self.submit_query(spec), **wait)

    async def run_queries(
        self, specs, **wait
    ) -> list[QueryOutcome | BaseException]:
        """Submit *all* specs first (so they are genuinely concurrent
        server-side), then collect every outcome.  Per-query failures
        come back as exception objects in the result list, positionally
        aligned with ``specs``."""
        ids = [await self.submit_query(spec) for spec in specs]
        return await asyncio.gather(
            *(self.stream_result(qid, **wait) for qid in ids),
            return_exceptions=True,
        )

    async def cancel_query(self, query_id: str) -> bool:
        """True when the query was still live (queued or running)."""
        response = await self.request(
            {"op": "cancel", "query": query_id}, service="query-service"
        )
        return bool(response["cancelled"])

    async def query_status(self, query_id: str) -> dict:
        response = await self.request(
            {"op": "status", "query": query_id}, service="query-service"
        )
        return {
            k: response[k]
            for k in ("query", "status", "queued", "active")
            if k in response
        }

    async def query_trace(self, query_id: str) -> dict | None:
        """The query's lifecycle trace (spans, attributes, and the
        attached bound-trajectory profile) as the server recorded it
        -- :meth:`~repro.obs.tracing.QueryTrace.as_dict` over the
        wire.  ``None`` when the server ran the query untraced; an id
        the server is neither tracking nor retaining raises
        :class:`~repro.middleware.errors.UnknownQueryError`."""
        response = await self.request(
            {"op": "trace", "query": query_id}, service="query-service"
        )
        return response.get("trace")

    async def service_stats(self) -> dict:
        """Service-level counters: admission, ledger totals, scan-cache
        materialization."""
        response = await self.request(
            {"op": "stats"}, service="query-service"
        )
        return response["stats"]

    async def service_metrics(self) -> dict:
        """The server's metrics-registry snapshot (``{"enabled":
        False, "metrics": []}`` when the server runs without an
        observability plane)."""
        response = await self.request(
            {"op": "metrics"}, service="query-service"
        )
        return response["metrics"]

    async def service_meta(self) -> dict:
        """The server's ``meta`` report.  ``protocol`` is absent from
        v1 servers -- ``meta.get("protocol", 1)`` feature-detects the
        standing-view ops."""
        return await self.request({"op": "meta"}, service="query-service")

    # ------------------------------------------------------------------
    # standing views + the mutation plane (protocol v2)
    # ------------------------------------------------------------------
    async def subscribe_query(
        self, spec: QuerySpec | dict
    ) -> ViewSnapshot:
        """Register a standing query server-side; returns the initial
        snapshot.  Poll :meth:`view_events` (from ``snapshot.seq``) for
        the add/change/remove delta stream, and :meth:`unsubscribe_query`
        when done -- views also die with their connection."""
        if isinstance(spec, QuerySpec):
            spec = spec.as_dict()
        spec = dict(spec)
        spec.setdefault("mode", "view")
        response = await self.request(
            {"op": "subscribe", "spec": spec}, service="query-service"
        )
        return ViewSnapshot(
            view_id=response["view"],
            result=decode_result(response["result"]),
            seq=response["seq"],
            version=response["version"],
        )

    async def view_events(
        self, view_id: str, *, after: int = 0, poll_timeout: float = 10.0
    ) -> dict:
        """One long-poll against a view's delta stream: returns
        ``{"events": [...], "seq": latest, "version": v}`` where each
        event is ``{"seq", "kind", "obj", "rank", "grade", "lower",
        "upper", "version"}``; ``events`` is empty when nothing changed
        within ``poll_timeout`` seconds.  Pass the returned ``seq`` as
        the next call's ``after``."""
        response = await self.request(
            {
                "op": "view_events",
                "view": view_id,
                "after": after,
                "timeout": poll_timeout,
            },
            service="query-service",
        )
        return {
            "events": response["events"],
            "seq": response["seq"],
            "version": response["version"],
        }

    async def unsubscribe_query(self, view_id: str) -> bool:
        response = await self.request(
            {"op": "unsubscribe", "view": view_id},
            service="query-service",
        )
        return bool(response["unsubscribed"])

    async def mutate(
        self,
        action: str,
        obj,
        *,
        grades=None,
        list_index: int | None = None,
        grade: float | None = None,
    ) -> dict:
        """Apply one write to the server's mutable database; returns
        ``{"version", "n"}``.  Convenience wrappers: :meth:`insert`,
        :meth:`update_grade`, :meth:`delete`."""
        message = {"op": "mutate", "action": action, "obj": obj}
        if grades is not None:
            message["grades"] = [float(g) for g in grades]
        if list_index is not None:
            message["list_index"] = int(list_index)
        if grade is not None:
            message["grade"] = float(grade)
        response = await self.request(message, service="query-service")
        return {"version": response["version"], "n": response["n"]}

    async def insert(self, obj, grades) -> dict:
        return await self.mutate("insert", obj, grades=grades)

    async def update_grade(self, obj, list_index: int, grade: float) -> dict:
        return await self.mutate(
            "update", obj, list_index=list_index, grade=grade
        )

    async def delete(self, obj) -> dict:
        return await self.mutate("delete", obj)
