"""Out-of-core storage: the v3 memory-mapped columnar store.

The :mod:`repro.store` package persists a database -- grade matrix,
per-list sorted orders, and (when sharded) the per-(list, shard) run
triples -- into a single versioned binary file, and serves the
``Database`` API straight off that file through ``np.memmap`` and an
:class:`LRUPageCache`.  Opening a store is O(1) in data size; a top-k
query's resident set is proportional to the prefix the paper's cost
model bills, not to N.  See the "Out-of-core store" section of
ARCHITECTURE.md for the format layout and the page-cache charging
contract.
"""

from __future__ import annotations

from .backend import (
    StoreBackedDatabase,
    StoreBackedShardedDatabase,
    open_store,
)
from .cache import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_PAGE_ROWS,
    LRUPageCache,
    PagedMatrix,
    PagedVector,
    StoreSegment,
)
from .format import (
    STORE_MAGIC,
    STORE_VERSION,
    StoreReader,
    StoreWriter,
    is_npz_file,
    save_store,
)

__all__ = [
    "STORE_MAGIC",
    "STORE_VERSION",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_PAGE_ROWS",
    "StoreReader",
    "StoreWriter",
    "save_store",
    "is_npz_file",
    "LRUPageCache",
    "StoreSegment",
    "PagedVector",
    "PagedMatrix",
    "StoreBackedDatabase",
    "StoreBackedShardedDatabase",
    "open_store",
]
