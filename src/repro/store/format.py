"""The on-disk store format (v3) and its reader/writer.

Format v3 is the third generation of this repository's persistence
formats and the first one designed to be *memory-mapped* rather than
loaded:

* v1 -- ``.npz`` with grades only (orderings re-sorted on load);
* v2 -- ``.npz`` with grades + per-list order arrays + optional shard
  layout (``repro-database-npz-v2``, see
  :mod:`repro.middleware.serialization`);
* v3 -- this format: an explicit binary header followed by raw
  little-endian array segments at stated offsets, so a reader can
  ``np.memmap`` each segment *lazily* (per list, per shard) and open a
  multi-gigabyte store in O(1) time and memory.

Layout::

    magic      12 bytes  b"repro-store\\x00"
    version    u32 LE    3
    header_len u32 LE    length of the JSON header that follows
    header     JSON (utf-8): shape, ids, shard layout, segment table
    padding    zeros up to a 64-byte boundary
    segments   raw little-endian array data, each 64-byte aligned

The header's segment table maps segment names to ``{offset, dtype,
shape}``.  Segment names: ``grades`` (the ``(N, m)`` float64 grade
matrix), ``order_rows/<i>`` / ``order_grades/<i>`` (list ``i``'s
merged global order), and -- when the store carries a shard layout
with more than one shard -- ``run_rows/<i>/<s>`` /
``run_grades/<i>/<s>`` / ``run_ties/<i>/<s>`` (shard ``s``'s sorted
run of list ``i``, exactly the ``(rows, grades, ties)`` triples of
:class:`~repro.middleware.database.ShardedDatabase`).

No-trust discipline (same contract as the wire codec): every
structural property -- magic, version, header bounds, JSON shape,
segment offsets against the real file size and against each other
(no two segments may overlap) -- is checked **before any
``np.memmap`` is created**; violations raise
:class:`~repro.middleware.errors.StoreFormatError`.  A file written by
a *newer* format version is refused outright with a clear message
rather than half-read.  Legacy v1/v2 ``.npz`` files are detected by
their zip magic and loaded through
:func:`~repro.middleware.serialization.load_npz` (correct results, no
out-of-core benefit) -- the upgrade path is
:func:`save_store`-ing the loaded database.
"""

from __future__ import annotations

import io
import json
import struct
from pathlib import Path

import numpy as np

from ..middleware.database import Database, ShardedDatabase
from ..middleware.errors import StoreFormatError

__all__ = [
    "STORE_MAGIC",
    "STORE_VERSION",
    "StoreReader",
    "StoreWriter",
    "save_store",
    "is_npz_file",
]

STORE_MAGIC = b"repro-store\x00"
STORE_VERSION = 3
_FORMAT_NAME = "repro-store"

#: segment data alignment (covers every SIMD load width numpy uses)
_ALIGN = 64

_U32 = struct.Struct("<I")
_FIXED_BYTES = len(STORE_MAGIC) + 2 * _U32.size

#: dtypes a v3 segment may carry (little-endian, 8-byte elements --
#: the only array dtypes the rest of the repository persists)
_SEGMENT_DTYPES = {"<f8", "<i8"}
_ITEMSIZE = 8

#: zip local-file-header magic: how legacy ``.npz`` (v1/v2) files are
#: recognised without trusting their extension
_ZIP_MAGIC = b"PK\x03\x04"


def is_npz_file(path: str | Path) -> bool:
    """True when ``path`` starts with the zip magic -- a legacy v1/v2
    ``.npz`` database rather than a v3 store."""
    try:
        with open(path, "rb") as f:
            return f.read(len(_ZIP_MAGIC)) == _ZIP_MAGIC
    except OSError:
        return False


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _segment_nbytes(shape: tuple[int, ...]) -> int:
    n = _ITEMSIZE
    for dim in shape:
        n *= dim
    return n


class _SegmentSpec:
    """One entry of the header's segment table."""

    __slots__ = ("name", "offset", "dtype", "shape")

    def __init__(self, name: str, offset: int, dtype: str,
                 shape: tuple[int, ...]):
        self.name = name
        self.offset = offset
        self.dtype = dtype
        self.shape = shape

    @property
    def nbytes(self) -> int:
        return _segment_nbytes(self.shape)

    def as_header(self) -> dict:
        return {
            "offset": self.offset,
            "dtype": self.dtype,
            "shape": list(self.shape),
        }


def _plan_segments(
    n: int,
    m: int,
    run_lengths: list[list[int]] | None,
) -> tuple[dict[str, _SegmentSpec], int]:
    """The v3 segment table for a database of the given shape: names,
    dtypes and aligned offsets (offset 0 = placeholder, patched once
    the header size is known).  Returns ``(table, data_nbytes)``."""
    specs: list[tuple[str, str, tuple[int, ...]]] = [
        ("grades", "<f8", (n, m)),
    ]
    for i in range(m):
        specs.append((f"order_rows/{i}", "<i8", (n,)))
        specs.append((f"order_grades/{i}", "<f8", (n,)))
    if run_lengths is not None:
        for i in range(m):
            for s, length in enumerate(run_lengths[i]):
                specs.append((f"run_rows/{i}/{s}", "<i8", (length,)))
                specs.append((f"run_grades/{i}/{s}", "<f8", (length,)))
                specs.append((f"run_ties/{i}/{s}", "<i8", (length,)))
    table: dict[str, _SegmentSpec] = {}
    offset = 0
    for name, dtype, shape in specs:
        offset = _align(offset)
        table[name] = _SegmentSpec(name, offset, dtype, shape)
        offset += _segment_nbytes(shape)
    return table, offset


def _expected_segments(
    n: int, m: int, shard_bounds: list[int]
) -> dict[str, tuple[int, ...] | None]:
    """Required segment names -> expected shape (``None`` for the
    per-run segments, whose lengths the header itself declares but
    which must sum to ``n`` per list)."""
    expected: dict[str, tuple[int, ...] | None] = {"grades": (n, m)}
    for i in range(m):
        expected[f"order_rows/{i}"] = (n,)
        expected[f"order_grades/{i}"] = (n,)
    num_shards = len(shard_bounds) - 1
    if num_shards > 1:
        for i in range(m):
            for s in range(num_shards):
                expected[f"run_rows/{i}/{s}"] = None
                expected[f"run_grades/{i}/{s}"] = None
                expected[f"run_ties/{i}/{s}"] = None
    return expected


class StoreReader:
    """Validated, lazily-mapping view of one v3 store file.

    Construction reads and fully validates the header (magic, version,
    bounds, segment table) without creating a single ``np.memmap`` --
    O(header) work regardless of data size.  :meth:`memmap` maps one
    segment on demand, read-only.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        try:
            file_size = self.path.stat().st_size
            with open(self.path, "rb") as f:
                fixed = f.read(_FIXED_BYTES)
                if len(fixed) < _FIXED_BYTES:
                    raise StoreFormatError(
                        f"{self.path}: truncated store header "
                        f"({len(fixed)} of {_FIXED_BYTES} fixed bytes)"
                    )
                magic = fixed[: len(STORE_MAGIC)]
                if magic != STORE_MAGIC:
                    if magic[: len(_ZIP_MAGIC)] == _ZIP_MAGIC:
                        raise StoreFormatError(
                            f"{self.path}: legacy .npz database, not a "
                            "v3 store (open it via open_store, which "
                            "falls back to load_npz)"
                        )
                    raise StoreFormatError(
                        f"{self.path}: not a repro-store file "
                        f"(bad magic {magic!r})"
                    )
                version = _U32.unpack_from(fixed, len(STORE_MAGIC))[0]
                if version > STORE_VERSION:
                    raise StoreFormatError(
                        f"{self.path}: store format version {version} is "
                        f"newer than this build understands (reads up to "
                        f"v{STORE_VERSION}); refusing to guess -- upgrade "
                        "the reader or rewrite the store with save_store"
                    )
                if version < STORE_VERSION:
                    raise StoreFormatError(
                        f"{self.path}: store format version {version} "
                        f"never existed as a binary store (v1/v2 are the "
                        ".npz formats); expected v3"
                    )
                header_len = _U32.unpack_from(
                    fixed, len(STORE_MAGIC) + _U32.size
                )[0]
                if header_len == 0 or _FIXED_BYTES + header_len > file_size:
                    raise StoreFormatError(
                        f"{self.path}: truncated store header (announces "
                        f"{header_len} header bytes, file holds "
                        f"{file_size - _FIXED_BYTES} past the magic)"
                    )
                raw_header = f.read(header_len)
                if len(raw_header) < header_len:
                    raise StoreFormatError(
                        f"{self.path}: truncated store header"
                    )
        except OSError as exc:
            raise StoreFormatError(
                f"{path}: cannot read store header: {exc}"
            ) from exc
        try:
            header = json.loads(raw_header.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StoreFormatError(
                f"{self.path}: corrupt store header: {exc}"
            ) from None
        self.version = version
        self._file_size = file_size
        self._validate_header(header)

    # ------------------------------------------------------------------
    # header validation (all pre-mmap)
    # ------------------------------------------------------------------
    def _validate_header(self, header) -> None:
        path = self.path
        if not isinstance(header, dict):
            raise StoreFormatError(f"{path}: store header is not an object")
        if header.get("format") != _FORMAT_NAME:
            raise StoreFormatError(
                f"{path}: header format field is "
                f"{header.get('format')!r}, expected {_FORMAT_NAME!r}"
            )
        n = header.get("n")
        m = header.get("m")
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise StoreFormatError(f"{path}: bad object count {n!r}")
        if not isinstance(m, int) or isinstance(m, bool) or m < 1:
            raise StoreFormatError(f"{path}: bad list count {m!r}")
        bounds = header.get("shard_bounds")
        if (
            not isinstance(bounds, list)
            or len(bounds) < 2
            or not all(
                isinstance(b, int) and not isinstance(b, bool)
                for b in bounds
            )
            or bounds[0] != 0
            or bounds[-1] != n
            or any(b > c for b, c in zip(bounds, bounds[1:]))
        ):
            raise StoreFormatError(
                f"{path}: shard bounds {bounds!r} do not partition 0..{n}"
            )
        ids = header.get("ids")
        if ids is not None:
            if (
                not isinstance(ids, dict)
                or not isinstance(ids.get("int"), list)
                or not isinstance(ids.get("values"), list)
                or len(ids["int"]) != n
                or len(ids["values"]) != n
            ):
                raise StoreFormatError(
                    f"{path}: malformed explicit object-id table"
                )
        raw_segments = header.get("segments")
        if not isinstance(raw_segments, dict):
            raise StoreFormatError(f"{path}: missing segment table")
        segments: dict[str, _SegmentSpec] = {}
        for name, entry in raw_segments.items():
            if not isinstance(entry, dict):
                raise StoreFormatError(
                    f"{path}: segment {name!r} entry is not an object"
                )
            offset = entry.get("offset")
            dtype = entry.get("dtype")
            shape = entry.get("shape")
            if (
                not isinstance(offset, int)
                or isinstance(offset, bool)
                or offset < _FIXED_BYTES
            ):
                raise StoreFormatError(
                    f"{path}: segment {name!r} has bad offset {offset!r}"
                )
            if dtype not in _SEGMENT_DTYPES:
                raise StoreFormatError(
                    f"{path}: segment {name!r} has unsupported dtype "
                    f"{dtype!r}"
                )
            if (
                not isinstance(shape, list)
                or not shape
                or len(shape) > 2
                or not all(
                    isinstance(d, int) and not isinstance(d, bool) and d >= 0
                    for d in shape
                )
            ):
                raise StoreFormatError(
                    f"{path}: segment {name!r} has bad shape {shape!r}"
                )
            spec = _SegmentSpec(name, offset, dtype, tuple(shape))
            if offset + spec.nbytes > self._file_size:
                raise StoreFormatError(
                    f"{path}: segment {name!r} extends to byte "
                    f"{offset + spec.nbytes}, past the file's "
                    f"{self._file_size} bytes (truncated store?)"
                )
            segments[name] = spec
        # zero-length segments (empty shard runs) occupy no bytes and
        # legitimately share their aligned offset with a neighbour
        ordered = sorted(
            (s for s in segments.values() if s.nbytes),
            key=lambda s: s.offset,
        )
        for a, b in zip(ordered, ordered[1:]):
            if a.offset + a.nbytes > b.offset:
                raise StoreFormatError(
                    f"{path}: segments {a.name!r} and {b.name!r} "
                    f"overlap (bytes {b.offset} to {a.offset + a.nbytes} "
                    "are claimed by both)"
                )
        for name, shape in _expected_segments(n, m, bounds).items():
            spec = segments.get(name)
            if spec is None:
                raise StoreFormatError(
                    f"{path}: store is missing segment {name!r}"
                )
            if shape is not None and spec.shape != shape:
                raise StoreFormatError(
                    f"{path}: segment {name!r} has shape "
                    f"{spec.shape}, expected {shape}"
                )
        num_shards = len(bounds) - 1
        if num_shards > 1:
            for i in range(m):
                total = sum(
                    segments[f"run_rows/{i}/{s}"].shape[0]
                    for s in range(num_shards)
                )
                if total != n:
                    raise StoreFormatError(
                        f"{path}: list {i}'s shard runs cover {total} "
                        f"rows, expected {n}"
                    )
                for s in range(num_shards):
                    length = segments[f"run_rows/{i}/{s}"].shape[0]
                    for kind in ("run_grades", "run_ties"):
                        other = segments[f"{kind}/{i}/{s}"].shape
                        if other != (length,):
                            raise StoreFormatError(
                                f"{path}: run segments of list {i} "
                                f"shard {s} disagree in length"
                            )
        self.num_objects = n
        self.num_lists = m
        self.shard_bounds = list(bounds)
        self._ids_header = ids
        self.segments = segments

    @property
    def num_shards(self) -> int:
        return len(self.shard_bounds) - 1

    def object_ids(self) -> list | None:
        """The explicit object ids, or ``None`` when ids are the
        trivial ``0 .. N-1`` ints (the O(1)-open case)."""
        if self._ids_header is None:
            return None
        return [
            int(value) if is_int else str(value)
            for is_int, value in zip(
                self._ids_header["int"], self._ids_header["values"]
            )
        ]

    def memmap(self, name: str) -> np.memmap:
        """Map one segment read-only (the *only* place data bytes are
        touched; callers go through the page cache)."""
        spec = self.segments.get(name)
        if spec is None:
            raise StoreFormatError(
                f"{self.path}: no segment named {name!r}"
            )
        return np.memmap(
            self.path,
            dtype=np.dtype(spec.dtype),
            mode="r",
            offset=spec.offset,
            shape=spec.shape,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StoreReader {self.path} v{self.version} "
            f"N={self.num_objects} m={self.num_lists} "
            f"S={self.num_shards}>"
        )


def _merge_intervals(
    intervals: list[tuple[int, int]],
) -> list[tuple[int, int]]:
    """Sorted, coalesced row intervals (adjacent ranges merge)."""
    merged: list[tuple[int, int]] = []
    for start, stop in sorted(intervals):
        if merged and start <= merged[-1][1]:
            if stop > merged[-1][1]:
                merged[-1] = (merged[-1][0], stop)
        else:
            merged.append((start, stop))
    return merged


class StoreWriter:
    """Streaming v3 writer: declare the shape up front, fill segments
    block by block, in any order.

    The constructor computes the full segment table, writes the header
    and pre-sizes the file; :meth:`write` appends one block of rows to
    a segment at an explicit row offset, so a ≫-RAM dataset can be
    written with O(block) memory.  Use as a context manager.

    A store is only valid once every declared row of every segment has
    been written: because the file is pre-sized with a complete header,
    a partial file would pass every :class:`StoreReader` structural
    check and silently serve zeros.  :meth:`close` therefore verifies
    coverage (tracked as written row intervals, so interior holes are
    caught too) and **deletes** the file before raising
    :class:`~repro.middleware.errors.StoreFormatError` when anything is
    missing; leaving the ``with`` block via an exception likewise
    discards the partial file (:meth:`abort`).
    """

    def __init__(
        self,
        path: str | Path,
        num_objects: int,
        num_lists: int,
        *,
        object_ids: list | None = None,
        shard_bounds: list[int] | None = None,
        run_lengths: list[list[int]] | None = None,
    ):
        if num_objects < 1 or num_lists < 1:
            raise StoreFormatError(
                f"store must be non-empty, got N={num_objects} "
                f"m={num_lists}"
            )
        self.path = Path(path)
        n, m = num_objects, num_lists
        bounds = list(shard_bounds) if shard_bounds is not None else [0, n]
        if len(bounds) - 1 > 1 and run_lengths is None:
            raise StoreFormatError(
                "a sharded store needs per-(list, shard) run lengths"
            )
        if len(bounds) - 1 <= 1:
            run_lengths = None
        table, _ = _plan_segments(n, m, run_lengths)
        ids_header = None
        if object_ids is not None:
            ids_header = {
                "int": [isinstance(obj, int) for obj in object_ids],
                "values": [str(obj) for obj in object_ids],
            }
        header = {
            "format": _FORMAT_NAME,
            "version": STORE_VERSION,
            "n": n,
            "m": m,
            "ids": ids_header,
            "shard_bounds": bounds,
            "segments": {},  # patched below once offsets are final
        }
        # two-pass header sizing: segment offsets depend on the header
        # length, which depends on the offsets' digit counts -- iterate
        # until stable (converges in <= 3 rounds; offsets only grow)
        data_start = _FIXED_BYTES
        while True:
            candidate = _align(data_start)
            header["segments"] = {
                name: _SegmentSpec(
                    name, candidate + spec.offset, spec.dtype, spec.shape
                ).as_header()
                for name, spec in table.items()
            }
            raw = json.dumps(header, sort_keys=True).encode("utf-8")
            needed = _FIXED_BYTES + len(raw)
            if _align(needed) == candidate:
                break
            data_start = needed
        self._segments = {
            name: _SegmentSpec(
                name,
                entry["offset"],
                entry["dtype"],
                tuple(entry["shape"]),
            )
            for name, entry in header["segments"].items()
        }
        self._written: dict[str, list[tuple[int, int]]] = {}
        total = max(
            spec.offset + spec.nbytes for spec in self._segments.values()
        )
        self._file: io.BufferedRandom | None = open(self.path, "w+b")
        self._file.write(STORE_MAGIC)
        self._file.write(_U32.pack(STORE_VERSION))
        self._file.write(_U32.pack(len(raw)))
        self._file.write(raw)
        self._file.truncate(total)

    def _require_open(self) -> io.BufferedRandom:
        if self._file is None:
            raise StoreFormatError(f"{self.path}: writer already closed")
        return self._file

    def write(self, name: str, block, row_offset: int = 0) -> None:
        """Write ``block`` (rows of segment ``name``) starting at row
        ``row_offset``; blocks are coerced to the segment dtype."""
        f = self._require_open()
        spec = self._segments.get(name)
        if spec is None:
            raise StoreFormatError(f"no segment named {name!r}")
        arr = np.ascontiguousarray(block, dtype=np.dtype(spec.dtype))
        if arr.ndim != len(spec.shape) or arr.shape[1:] != spec.shape[1:]:
            raise StoreFormatError(
                f"segment {name!r}: block shape {arr.shape} does not "
                f"match segment shape {spec.shape}"
            )
        rows = arr.shape[0]
        if row_offset < 0 or row_offset + rows > spec.shape[0]:
            raise StoreFormatError(
                f"segment {name!r}: rows [{row_offset}, "
                f"{row_offset + rows}) fall outside its {spec.shape[0]} "
                "rows"
            )
        row_nbytes = spec.nbytes // spec.shape[0] if spec.shape[0] else 0
        f.seek(spec.offset + row_offset * row_nbytes)
        f.write(arr.tobytes())
        if rows:
            self._written.setdefault(name, []).append(
                (row_offset, row_offset + rows)
            )

    def _incomplete_segments(self) -> list[str]:
        missing = []
        for name, spec in self._segments.items():
            rows = spec.shape[0]
            if not rows:
                continue
            merged = _merge_intervals(self._written.get(name, []))
            if merged != [(0, rows)]:
                covered = sum(stop - start for start, stop in merged)
                missing.append(f"{name!r} ({covered}/{rows} rows)")
        return missing

    def abort(self) -> None:
        """Discard the store: close the handle and delete the partial
        file.  No-op after a successful :meth:`close`."""
        if self._file is None:
            return
        self._file.close()
        self._file = None
        try:
            self.path.unlink()
        except OSError:  # pragma: no cover - already gone / unlinkable
            pass

    def close(self) -> None:
        if self._file is None:
            return
        missing = self._incomplete_segments()
        if missing:
            self.abort()
            shown = ", ".join(missing[:5])
            if len(missing) > 5:
                shown += f", ... ({len(missing)} segments in all)"
            raise StoreFormatError(
                f"{self.path}: store closed with incompletely written "
                f"segments: {shown} -- the partial file was deleted"
            )
        self._file.flush()
        self._file.close()
        self._file = None

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # the body failed part-way: a pre-sized file with a valid
            # header would read back as silent zeros -- discard it
            self.abort()
        else:
            self.close()


def save_store(db: Database, path: str | Path) -> None:
    """Persist ``db`` to a v3 store file.

    The columnar form's grade matrix and per-list merged order arrays
    are written always; a :class:`~repro.middleware.database
    .ShardedDatabase` with more than one shard additionally persists
    its per-(list, shard) runs and shard layout, so an
    ``open_store``-ed copy shards identically -- tie order,
    ``AccessStats`` and trace bytes included.
    """
    col = db.to_columnar()
    n, m = col.num_objects, col.num_lists
    ids = None if col._trivial_ids else list(col._ids)
    bounds: list[int] | None = None
    run_lengths: list[list[int]] | None = None
    sharded = db if isinstance(db, ShardedDatabase) else None
    if sharded is not None and sharded.num_shards > 1:
        bounds = [int(b) for b in sharded.shard_bounds]
        run_lengths = [
            [len(run[0]) for run in sharded.list_runs(i)] for i in range(m)
        ]
    with StoreWriter(
        path,
        n,
        m,
        object_ids=ids,
        shard_bounds=bounds,
        run_lengths=run_lengths,
    ) as w:
        w.write("grades", np.asarray(col._matrix, dtype=np.float64))
        for i in range(m):
            w.write(
                f"order_rows/{i}",
                np.asarray(col._order_rows[i], dtype=np.int64),
            )
            w.write(
                f"order_grades/{i}",
                np.asarray(col._order_grades[i], dtype=np.float64),
            )
        if sharded is not None and run_lengths is not None:
            for i in range(m):
                for s, (rows, grades, ties) in enumerate(
                    sharded.list_runs(i)
                ):
                    w.write(
                        f"run_rows/{i}/{s}",
                        np.asarray(rows, dtype=np.int64),
                    )
                    w.write(
                        f"run_grades/{i}/{s}",
                        np.asarray(grades, dtype=np.float64),
                    )
                    w.write(
                        f"run_ties/{i}/{s}",
                        np.asarray(ties, dtype=np.int64),
                    )
