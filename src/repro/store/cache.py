"""The LRU page cache and the paged array proxies it feeds.

Every data byte a store-backed database reads flows through one
:class:`LRUPageCache`: segments are divided into fixed-size **row
pages** (``page_rows`` rows each); a read copies the covering pages
out of the segment's lazy ``np.memmap`` into ordinary in-RAM arrays,
caches them under an LRU policy bounded by ``capacity_bytes``, and
assembles the caller's slice/gather from the cached pages.  Because
pages are *copies*, resident set size is bounded by the cache capacity
plus the transient working set, never by the mapped file -- the OS may
additionally cache mapped file pages, but those are reclaimable and
shared.

Charging contract (the store's half of the paper's cost model): a page
hit, miss or eviction **never** changes ``AccessStats`` -- the cache
sits *below* the :class:`~repro.middleware.database.Database` API,
exactly where ``columnar_view`` speculation lives, and only the
consumed prefix an engine realises through
``sorted_access_batch`` / ``random_access_batch`` is ever billed.  The
differential suite's store axis holds items, halting, tie order,
``AccessStats`` and trace bytes bit-identical to the scalar reference
to enforce this.

The cache is thread-safe: one re-entrant lock guards page lookup /
insertion / eviction, segment map / release, and every byte counter,
because a single cache is shared by all of a ``QueryService``'s
concurrent engine workers (``max_active`` threads in daemon
``--store`` mode).  Returned pages are immutable-by-convention copies,
so readers never need the lock after :meth:`LRUPageCache.page`
returns.

:class:`PagedVector` and :class:`PagedMatrix` present cached segments
with exactly the indexing surface the batched access plane and the
chunked engines use on in-RAM backends: ``len`` / scalar reads /
contiguous slices (returning *fresh* writable arrays -- callers mark
them read-only) for vectors, and row gathers (``matrix[rows]``,
``matrix[rows, i]``, ``matrix[row]``, ``matrix[row, i]``) for the
matrix, plus ``__array__`` so ``np.asarray`` materialises either for
suite-scale verification code.
"""

from __future__ import annotations

import operator
import threading
from collections import OrderedDict
from itertools import count

import numpy as np

from ..obs.metrics import NULL_INSTRUMENT

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_PAGE_ROWS",
    "LRUPageCache",
    "StoreSegment",
    "PagedVector",
    "PagedMatrix",
]

#: default page-cache capacity: small enough that a ≫-RAM dataset
#: stays out of core, large enough that a top-k prefix scan hits
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024
#: rows per page (for the grade matrix one page is
#: ``page_rows * m * 8`` bytes)
DEFAULT_PAGE_ROWS = 4096
#: upper bound on how much of the mapping one page fault can make
#: resident: kernels with multi-order page-cache folios map the whole
#: containing folio (2 MiB today) into the process per fault, so the
#: mapped-budget valve charges every miss this much on top of the
#: bytes actually copied
FAULT_GRANULARITY_BYTES = 2 * 1024 * 1024

_segment_uids = count()


class StoreSegment:
    """One named segment of a store file: a lazy read-only
    ``np.memmap`` plus the row geometry the cache pages it by.

    The map is created on first touch (and registered with the cache's
    mapped-bytes accounting), so opening a store maps *nothing* until
    a query actually reads a list.
    """

    __slots__ = ("reader", "name", "rows", "uid", "_mm", "_cache")

    def __init__(self, reader, name: str, cache: "LRUPageCache"):
        self.reader = reader
        self.name = name
        self.rows = int(reader.segments[name].shape[0])
        self.uid = next(_segment_uids)
        self._mm: np.memmap | None = None
        self._cache = cache
        cache._register(self)

    def mapped(self) -> np.memmap:
        with self._cache._lock:
            mm = self._mm
            if mm is None:
                mm = self.reader.memmap(self.name)
                raw = getattr(mm, "_mmap", None)
                if raw is not None and hasattr(raw, "madvise"):
                    # page-cache reads are exact 4K-page copies;
                    # without this the kernel's fault-around pulls
                    # megabytes of readahead per touched page and the
                    # *file's* resident pages dwarf the page cache
                    # they feed
                    import mmap as _mmap_module

                    raw.madvise(_mmap_module.MADV_RANDOM)
                self._mm = mm
                self._cache._note_mapped(mm.nbytes)
            return mm

    @property
    def mapped_bytes(self) -> int:
        mm = self._mm  # racing release(): read the slot once
        return 0 if mm is None else int(mm.nbytes)

    def release(self) -> None:
        """Drop the lazy map (the next touch re-maps).  File-backed
        pages leave the process's resident set; OS page-cache copies
        remain reclaimable and shared."""
        with self._cache._lock:
            if self._mm is not None:
                self._cache._note_mapped(-self._mm.nbytes)
                self._mm = None


class LRUPageCache:
    """Byte-bounded LRU over fixed-size row pages of store segments.

    All instruments are optional: pass ``obs`` (an
    :class:`~repro.obs.Observability`) to export hit/miss/eviction
    counters and cached/mapped-bytes gauges; without it the counters
    are plain ints surfaced by :meth:`snapshot`.
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CACHE_BYTES,
        page_rows: int = DEFAULT_PAGE_ROWS,
        obs=None,
        mapped_budget_bytes: int | None = None,
    ):
        if capacity_bytes < 1:
            raise ValueError(
                f"capacity_bytes must be >= 1, got {capacity_bytes}"
            )
        if page_rows < 1:
            raise ValueError(f"page_rows must be >= 1, got {page_rows}")
        if mapped_budget_bytes is not None and mapped_budget_bytes < 1:
            raise ValueError(
                "mapped_budget_bytes must be >= 1 or None, got "
                f"{mapped_budget_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self.page_rows = page_rows
        #: when set, segments are unmapped after roughly this many
        #: bytes of fresh pages have been touched through the maps --
        #: resident *file* pages (which ``ru_maxrss`` charges to the
        #: process) then stay bounded even for a single query that
        #: sweeps the whole matrix.  ``None`` (the default) never
        #: auto-releases.
        self.mapped_budget_bytes = mapped_budget_bytes
        #: resident-set estimate of pages touched since the last
        #: release.  Each miss is charged ``block.nbytes`` plus
        #: FAULT_GRANULARITY_BYTES: on kernels with large page-cache
        #: folios a single fault can map a whole 2 MiB folio into the
        #: process no matter how few bytes the copy reads (MADV_RANDOM
        #: does not prevent mapping an already-cached folio), so
        #: charging only the copied bytes under-counts residency by up
        #: to 16x and the budget valve never fires.
        self._touched_bytes = 0
        #: guards pages, segment maps and every counter: one cache is
        #: shared by all of a service's concurrent engine workers.
        #: Re-entrant because page() -> StoreSegment.mapped() ->
        #: _note_mapped() and page() -> release_mappings() nest.
        self._lock = threading.RLock()
        self._pages: OrderedDict[tuple[int, int], np.ndarray] = (
            OrderedDict()
        )
        self._segments: list[StoreSegment] = []
        self.cached_bytes = 0
        self.mapped_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if obs is None:
            self._m_hits = self._m_misses = NULL_INSTRUMENT
            self._m_evictions = NULL_INSTRUMENT
            self._m_cached = self._m_mapped = NULL_INSTRUMENT
        else:
            self._m_hits = obs.counter(
                "repro_store_page_hits_total",
                help="store page-cache hits (uncharged, like speculation)",
            )
            self._m_misses = obs.counter(
                "repro_store_page_misses_total",
                help="store page-cache misses (pages copied from mmap)",
            )
            self._m_evictions = obs.counter(
                "repro_store_page_evictions_total",
                help="store pages evicted by the LRU policy",
            )
            self._m_cached = obs.gauge(
                "repro_store_cached_bytes",
                help="bytes of store pages resident in the LRU cache",
            )
            self._m_mapped = obs.gauge(
                "repro_store_mapped_bytes",
                help="bytes of store segments currently memory-mapped",
            )

    def _note_mapped(self, nbytes: int) -> None:
        with self._lock:
            self.mapped_bytes += int(nbytes)
            self._m_mapped.set(self.mapped_bytes)

    def page(self, segment: StoreSegment, index: int) -> np.ndarray:
        """Rows ``[index * page_rows, ...)`` of ``segment``, cached.

        The returned array is shared cache state -- callers must not
        mutate it (the paged proxies only copy out of it).
        """
        with self._lock:
            key = (segment.uid, index)
            block = self._pages.get(key)
            if block is not None:
                self._pages.move_to_end(key)
                self.hits += 1
                self._m_hits.inc()
                return block
            self.misses += 1
            self._m_misses.inc()
            lo = index * self.page_rows
            hi = min(lo + self.page_rows, segment.rows)
            block = np.array(segment.mapped()[lo:hi], order="C")
            self._pages[key] = block
            self.cached_bytes += block.nbytes
            while (
                self.cached_bytes > self.capacity_bytes
                and len(self._pages) > 1
            ):
                _, evicted = self._pages.popitem(last=False)
                self.cached_bytes -= evicted.nbytes
                self.evictions += 1
                self._m_evictions.inc()
            self._m_cached.set(self.cached_bytes)
            if self.mapped_budget_bytes is not None:
                self._touched_bytes += (
                    block.nbytes + FAULT_GRANULARITY_BYTES
                )
                if self._touched_bytes >= self.mapped_budget_bytes:
                    self.release_mappings()
            return block

    def _register(self, segment: StoreSegment) -> None:
        with self._lock:
            self._segments.append(segment)

    def clear(self) -> None:
        """Drop every cached page (mapped segments stay mapped)."""
        with self._lock:
            self._pages.clear()
            self.cached_bytes = 0
            self._m_cached.set(0)

    def release_mappings(self) -> int:
        """Unmap every lazily-mapped segment and return the bytes
        released.  Cached pages survive (they are copies), and the next
        read through an unmapped segment transparently re-maps it --
        long-running daemons call this between queries to hand resident
        mapped file pages back to the OS without losing the cache."""
        with self._lock:
            released = 0
            for segment in self._segments:
                released += segment.mapped_bytes
                segment.release()
            self._touched_bytes = 0
            return released

    def snapshot(self) -> dict:
        """JSON-safe cache state (the ``store`` block of
        ``QueryService.stats()``)."""
        with self._lock:
            return {
                "capacity_bytes": self.capacity_bytes,
                "page_rows": self.page_rows,
                "pages": len(self._pages),
                "cached_bytes": self.cached_bytes,
                "mapped_bytes": self.mapped_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LRUPageCache pages={len(self._pages)} "
            f"{self.cached_bytes}/{self.capacity_bytes}B "
            f"hit={self.hits} miss={self.misses}>"
        )


class PagedVector:
    """A one-dimensional segment read through the page cache.

    Mirrors the slice of the ndarray API the access plane and engines
    use on ``_order_rows[i]`` / ``_order_grades[i]`` (and on run
    triples): ``len``, scalar indexing, contiguous slicing (fresh
    writable arrays), ``np.asarray`` materialisation, ``tolist``.
    """

    __slots__ = ("_segment", "_cache", "_dtype")

    def __init__(
        self,
        segment: StoreSegment,
        cache: LRUPageCache,
        dtype=None,
    ):
        self._segment = segment
        self._cache = cache
        self._dtype = dtype

    def __len__(self) -> int:
        return self._segment.rows

    @property
    def shape(self) -> tuple[int]:
        return (self._segment.rows,)

    @property
    def size(self) -> int:
        return self._segment.rows

    def _read(self, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` as one fresh array."""
        cache = self._cache
        page_rows = cache.page_rows
        n = max(0, stop - start)
        first = cache.page(self._segment, start // page_rows) if n else None
        if first is not None and stop <= (start // page_rows + 1) * page_rows:
            lo = start - (start // page_rows) * page_rows
            out = np.array(first[lo : lo + n])
        else:
            out = np.empty(n, dtype=self._raw_dtype())
            filled = 0
            position = start
            while position < stop:
                index = position // page_rows
                block = cache.page(self._segment, index)
                lo = position - index * page_rows
                take = min(stop - position, len(block) - lo)
                out[filled : filled + take] = block[lo : lo + take]
                filled += take
                position += take
        if self._dtype is not None:
            return out.astype(self._dtype, copy=False)
        return out

    def _raw_dtype(self):
        return np.dtype(self._segment.reader.segments[self._segment.name].dtype)

    def __getitem__(self, key):
        if isinstance(key, slice):
            start, stop, step = key.indices(len(self))
            if step == 1:
                return self._read(start, stop)
            indices = np.arange(start, stop, step, dtype=np.intp)
            if not indices.size:
                dtype = self._dtype or self._raw_dtype()
                return np.empty(0, dtype=dtype)
            lo, hi = int(indices.min()), int(indices.max()) + 1
            return self._read(lo, hi)[indices - lo]
        i = operator.index(key)
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(
                f"index {key} out of range for length {n}"
            )
        page_rows = self._cache.page_rows
        value = self._cache.page(self._segment, i // page_rows)[
            i - (i // page_rows) * page_rows
        ]
        if self._dtype is not None:
            return value.astype(self._dtype)
        return value

    def __array__(self, dtype=None, copy=None):
        out = self._read(0, len(self))
        if dtype is not None:
            out = out.astype(dtype, copy=False)
        return out

    def astype(self, dtype, copy: bool = True) -> np.ndarray:
        return self.__array__(dtype)

    def tolist(self) -> list:
        return self.__array__().tolist()

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PagedVector {self._segment.name!r} "
            f"len={self._segment.rows}>"
        )


class PagedMatrix:
    """The ``(N, m)`` grade matrix read through the page cache.

    Supports the gather patterns of the batched access plane and the
    chunked engines -- ``matrix[rows]`` (2-D row gather),
    ``matrix[rows, i]`` (column gather), ``matrix[row]`` and
    ``matrix[row, i]`` -- plus ``shape`` / ``__array__`` / ``copy`` /
    ``tolist`` for verification code.  An optional row window
    ``[row_lo, row_hi)`` presents a shard's contiguous block with
    local row indexing (the store twin of
    ``ShardedDatabase._shard_matrices``).
    """

    __slots__ = ("_segment", "_cache", "_row_lo", "_row_hi", "_m")

    def __init__(
        self,
        segment: StoreSegment,
        cache: LRUPageCache,
        row_lo: int = 0,
        row_hi: int | None = None,
    ):
        self._segment = segment
        self._cache = cache
        self._row_lo = row_lo
        self._row_hi = segment.rows if row_hi is None else row_hi
        self._m = int(segment.reader.segments[segment.name].shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self._row_hi - self._row_lo, self._m)

    @property
    def ndim(self) -> int:
        return 2

    @property
    def dtype(self):
        return np.dtype(np.float64)

    def __len__(self) -> int:
        return self._row_hi - self._row_lo

    def window(self, row_lo: int, row_hi: int) -> "PagedMatrix":
        """A view of global rows ``[row_lo, row_hi)`` with local
        indexing (shares this matrix's segment and cache)."""
        return PagedMatrix(self._segment, self._cache, row_lo, row_hi)

    # ------------------------------------------------------------------
    # gathers
    # ------------------------------------------------------------------
    def _row(self, i: int) -> np.ndarray:
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(f"row {i} out of range for {n} rows")
        row = i + self._row_lo
        page_rows = self._cache.page_rows
        block = self._cache.page(self._segment, row // page_rows)
        return np.array(block[row - (row // page_rows) * page_rows])

    def _gather(self, rows: np.ndarray, col: int | None):
        rows = np.asarray(rows)
        if rows.ndim != 1:
            raise IndexError(
                f"row index must be one-dimensional, got shape {rows.shape}"
            )
        if rows.dtype == np.bool_:
            # ndarray semantics: a boolean index is a mask over all
            # rows, never row numbers 0/1
            if rows.shape[0] != len(self):
                raise IndexError(
                    f"boolean mask of length {rows.shape[0]} does not "
                    f"match {len(self)} rows"
                )
            rows = np.flatnonzero(rows)
        rows = rows.astype(np.intp, copy=False) + self._row_lo
        if rows.size and (
            rows.min() < self._row_lo or rows.max() >= self._row_hi
        ):
            raise IndexError("row index out of range")
        cache = self._cache
        page_rows = cache.page_rows
        if col is None:
            out = np.empty((len(rows), self._m), dtype=np.float64)
        else:
            out = np.empty(len(rows), dtype=np.float64)
        if not rows.size:
            return out
        pages = rows // page_rows
        for p in np.unique(pages):
            mask = pages == p
            block = cache.page(self._segment, int(p))
            local = rows[mask] - int(p) * page_rows
            if col is None:
                out[mask] = block[local]
            else:
                out[mask] = block[local, col]
        return out

    def __getitem__(self, key):
        if isinstance(key, tuple):
            if len(key) != 2:
                raise IndexError(
                    f"expected at most 2 indices, got {len(key)}"
                )
            rows, col = key
            if isinstance(col, slice):
                if col != slice(None):
                    raise IndexError(
                        "only full-column slices are supported"
                    )
                col = None
            else:
                col = operator.index(col)
                if col < 0:
                    col += self._m
                if not 0 <= col < self._m:
                    raise IndexError(
                        f"column {key[1]} out of range for {self._m} lists"
                    )
            if isinstance(rows, (int, np.integer)):
                row = self._row(int(rows))
                return row if col is None else row[col]
            return self._gather(rows, col)
        if isinstance(key, (int, np.integer)):
            return self._row(int(key))
        if isinstance(key, slice):
            start, stop, step = key.indices(len(self))
            rows = np.arange(start, stop, step, dtype=np.intp)
            return self._gather(rows, None)
        return self._gather(key, None)

    # ------------------------------------------------------------------
    # materialisation (verification paths only; O(N * m) memory)
    # ------------------------------------------------------------------
    def __array__(self, dtype=None, copy=None):
        rows = np.arange(len(self), dtype=np.intp)
        out = self._gather(rows, None)
        if dtype is not None:
            out = out.astype(dtype, copy=False)
        return out

    def copy(self) -> np.ndarray:
        return self.__array__()

    def tolist(self) -> list:
        return self.__array__().tolist()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PagedMatrix shape={self.shape}>"
