"""Store-backed database backends: the ``Database`` API over mmap.

:class:`StoreBackedDatabase` / :class:`StoreBackedShardedDatabase`
subclass the in-RAM array backends and replace their internals --
``_matrix``, ``_order_rows[i]`` / ``_order_grades[i]``, and (for the
sharded variant) the per-(list, shard) run triples -- with paged
proxies reading through one :class:`~repro.store.cache.LRUPageCache`.
Everything above the ``Database`` API -- the batched access plane, all
four chunked engines, ``QueryService``, transport serving, and
``save``/``load`` round trips -- runs unmodified, and the differential
suite's store axis holds the results bit-identical to the scalar
reference.

Construction is O(1) in data size for trivially-id'd stores (ids
``0 .. N-1``, the large-synthetic-workload case): the constructor
reads only the already-validated header; no segment is mapped, no row
is touched, no id table is built.  Stores carrying explicit object
ids intern them eagerly (O(N) in the id table, still O(1) in grade
data) -- those stores are the suite-scale adversarial constructions,
not the ≫-RAM ones.

Ground-truth helpers (``top_k``, ``overall_grades``, validation,
``satisfies_distinctness``) materialise dense arrays: they are
verification-path conveniences, documented O(N·m), never used by the
engines.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..middleware.database import (
    ColumnarDatabase,
    Database,
    ListMergeCursor,
    ShardedDatabase,
)
from ..middleware.errors import DatabaseError
from .cache import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_PAGE_ROWS,
    LRUPageCache,
    PagedMatrix,
    PagedVector,
    StoreSegment,
)
from .format import StoreReader, is_npz_file

__all__ = [
    "StoreBackedDatabase",
    "StoreBackedShardedDatabase",
    "open_store",
]


class _TrivialRowOf:
    """The identity id -> row mapping for stores whose object ids are
    exactly ``0 .. N-1``: answers ``get``/``in``/``len`` without an
    O(N) dict (the piece that keeps store opening O(1))."""

    __slots__ = ("_n",)

    def __init__(self, n: int):
        self._n = n

    def get(self, obj, default=None):
        if type(obj) is int and 0 <= obj < self._n:
            return obj
        return default

    def __contains__(self, obj) -> bool:
        return self.get(obj) is not None

    def __len__(self) -> int:
        return self._n


def _arm_core(db, reader: StoreReader, cache: LRUPageCache) -> None:
    """Shared constructor body of the store backends: wire the paged
    grade matrix and the id <-> row translation without touching data
    (``ColumnarDatabase._init_core``'s O(N) copies are bypassed)."""
    db._reader = reader
    db._page_cache = cache
    n, m = reader.num_objects, reader.num_lists
    db._m = m
    db._matrix = PagedMatrix(  # type: ignore[assignment]
        StoreSegment(reader, "grades", cache), cache
    )
    ids = reader.object_ids()
    if ids is None:
        db._ids = range(n)  # type: ignore[assignment]
        db._row_of = _TrivialRowOf(n)  # type: ignore[assignment]
        db._trivial_ids = True
    else:
        db._ids = ids
        db._row_of = {obj: row for row, obj in enumerate(ids)}
        db._trivial_ids = all(
            type(obj) is int and obj == row for row, obj in enumerate(ids)
        )
    db._position0_rows = None


def _paged_order(
    reader: StoreReader, cache: LRUPageCache, i: int
) -> tuple[PagedVector, PagedVector]:
    return (
        PagedVector(
            StoreSegment(reader, f"order_rows/{i}", cache),
            cache,
            dtype=np.intp,
        ),
        PagedVector(
            StoreSegment(reader, f"order_grades/{i}", cache), cache
        ),
    )


class _PagedOps:
    """Verification-path overrides shared by both store backends: the
    inherited implementations assume ``_matrix`` supports ufuncs, so
    these materialise a dense copy first (documented O(N·m) -- never
    on an engine path)."""

    def _dense(self) -> np.ndarray:
        return np.asarray(self._matrix, dtype=np.float64)

    def overall_grades(self, t) -> dict:
        t.check_arity(self._m)
        values = t.aggregate_batch(self._dense())
        return dict(zip(self._ids, values.tolist()))

    def top_k(self, t, k: int) -> list:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        t.check_arity(self._m)
        overall = t.aggregate_batch(self._dense())
        if self._position0_rows is None:
            n = len(self._ids)
            pos0 = np.empty(n, dtype=np.intp)
            pos0[np.asarray(self._order_rows[0], dtype=np.intp)] = (
                np.arange(n)
            )
            self._position0_rows = pos0
        order = np.lexsort((self._position0_rows, -overall))
        ids = self._ids
        return [(ids[r], float(overall[r])) for r in order[:k].tolist()]

    # ------------------------------------------------------------------
    # store introspection
    # ------------------------------------------------------------------
    @property
    def reader(self) -> StoreReader:
        return self._reader

    @property
    def page_cache(self) -> LRUPageCache:
        return self._page_cache

    def store_snapshot(self) -> dict:
        """JSON-safe store + cache state (surfaced by
        ``QueryService.stats()`` under the ``"store"`` key)."""
        snapshot = self._page_cache.snapshot()
        snapshot["path"] = str(self._reader.path)
        snapshot["format_version"] = self._reader.version
        snapshot["segments"] = len(self._reader.segments)
        snapshot["shards"] = self._reader.num_shards
        return snapshot


class StoreBackedDatabase(_PagedOps, ColumnarDatabase):
    """A :class:`~repro.middleware.database.ColumnarDatabase` whose
    matrix and order arrays live on disk behind an LRU page cache.

    ``validate=True`` materialises the store and runs the full in-RAM
    validation (order arrays against the matrix included) -- a
    suite-scale option, not for ≫-RAM files.
    """

    def __init__(
        self,
        reader: StoreReader | str | Path,
        *,
        cache: LRUPageCache | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        page_rows: int = DEFAULT_PAGE_ROWS,
        obs=None,
        validate: bool = False,
    ):
        if not isinstance(reader, StoreReader):
            reader = StoreReader(reader)
        if cache is None:
            cache = LRUPageCache(cache_bytes, page_rows, obs=obs)
        _arm_core(self, reader, cache)
        self._order_rows = []  # type: ignore[assignment]
        self._order_grades = []  # type: ignore[assignment]
        for i in range(self._m):
            rows, grades = _paged_order(reader, cache, i)
            self._order_rows.append(rows)
            self._order_grades.append(grades)
        if validate:
            self._validate()

    def _validate(self) -> None:
        dense = self._dense()
        order_rows = [
            np.asarray(rows, dtype=np.intp) for rows in self._order_rows
        ]
        checked = ColumnarDatabase(
            dense, list(self._ids), order_rows, validate=True
        )
        for i in range(self._m):
            if not np.array_equal(
                np.asarray(self._order_grades[i]), checked._order_grades[i]
            ):
                raise DatabaseError(
                    f"list {i}: stored order grades disagree with the "
                    "grade matrix"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StoreBackedDatabase N={self.num_objects} "
            f"m={self.num_lists} path={self._reader.path}>"
        )


class StoreBackedShardedDatabase(_PagedOps, ShardedDatabase):
    """A :class:`~repro.middleware.database.ShardedDatabase` over a
    sharded v3 store: per-(list, shard) run triples are paged vectors,
    and the persisted merged global orders pre-fill ``_merged_cache``
    so sorted access never re-merges (mirroring ``load_npz``'s sharded
    path) -- a query's resident set stays proportional to the prefix
    it consumes, not to ``N``.
    """

    def __init__(
        self,
        reader: StoreReader | str | Path,
        *,
        cache: LRUPageCache | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        page_rows: int = DEFAULT_PAGE_ROWS,
        obs=None,
        validate: bool = False,
    ):
        if not isinstance(reader, StoreReader):
            reader = StoreReader(reader)
        if reader.num_shards < 2:
            raise DatabaseError(
                f"{reader.path} carries no shard layout; open it as a "
                "StoreBackedDatabase"
            )
        if cache is None:
            cache = LRUPageCache(cache_bytes, page_rows, obs=obs)
        _arm_core(self, reader, cache)
        self._shard_bounds = np.asarray(reader.shard_bounds, dtype=np.intp)
        self._shard_matrices = [  # type: ignore[assignment]
            self._matrix.window(int(lo), int(hi))
            for lo, hi in zip(
                self._shard_bounds[:-1], self._shard_bounds[1:]
            )
        ]
        self._runs = [  # type: ignore[assignment]
            [
                (
                    PagedVector(
                        StoreSegment(reader, f"run_rows/{i}/{s}", cache),
                        cache,
                        dtype=np.intp,
                    ),
                    PagedVector(
                        StoreSegment(
                            reader, f"run_grades/{i}/{s}", cache
                        ),
                        cache,
                    ),
                    PagedVector(
                        StoreSegment(reader, f"run_ties/{i}/{s}", cache),
                        cache,
                        dtype=np.int64,
                    ),
                )
                for s in range(reader.num_shards)
            ]
            for i in range(self._m)
        ]
        # the persisted merged orders ARE the merge of the persisted
        # runs (validate=True checks that claim); handing them to the
        # merge cache means sorted access is pure paged slicing
        self._merged_cache = [  # type: ignore[assignment]
            _paged_order(reader, cache, i) for i in range(self._m)
        ]
        if validate:
            self._validate()

    def _validate(self) -> None:
        dense = self._dense()
        runs = [
            [
                (
                    np.asarray(rows, dtype=np.intp),
                    np.asarray(grades, dtype=np.float64),
                    np.asarray(ties, dtype=np.int64),
                )
                for rows, grades, ties in shard_runs
            ]
            for shard_runs in self._runs
        ]
        ShardedDatabase(
            dense,
            list(self._ids),
            self._shard_bounds,
            runs,
            validate=True,
        )
        for i in range(self._m):
            merged_rows, merged_grades = ListMergeCursor(runs[i]).drain()
            stored_rows, stored_grades = self._merged_cache[i]
            if not np.array_equal(
                np.asarray(stored_rows, dtype=np.intp), merged_rows
            ) or not np.array_equal(
                np.asarray(stored_grades), merged_grades
            ):
                raise DatabaseError(
                    f"list {i}: stored merged order disagrees with the "
                    "merge of the stored shard runs"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StoreBackedShardedDatabase N={self.num_objects} "
            f"m={self.num_lists} S={self.num_shards} "
            f"path={self._reader.path}>"
        )


def open_store(
    path: str | Path,
    *,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    page_rows: int = DEFAULT_PAGE_ROWS,
    obs=None,
    validate: bool = False,
) -> Database:
    """Open a persisted database for querying, out-of-core when the
    file allows it.

    A v3 store file maps lazily behind an LRU page cache and comes
    back as a :class:`StoreBackedDatabase` (or
    :class:`StoreBackedShardedDatabase` when the store carries a shard
    layout).  Legacy v1/v2 ``.npz`` files -- recognised by their zip
    magic -- fall back to
    :func:`~repro.middleware.serialization.load_npz` (fully loaded
    in RAM, same results); rewrite them with
    :func:`~repro.store.format.save_store` to get the out-of-core
    path.  Anything else raises
    :class:`~repro.middleware.errors.StoreFormatError`.
    """
    if is_npz_file(path):
        # imported here: serialization -> database only, so the store
        # package stays an optional layer above the middleware
        from ..middleware.serialization import load_npz

        return load_npz(Path(path))
    reader = StoreReader(path)
    cls = (
        StoreBackedShardedDatabase
        if reader.num_shards > 1
        else StoreBackedDatabase
    )
    return cls(
        reader,
        cache_bytes=cache_bytes,
        page_rows=page_rows,
        obs=obs,
        validate=validate,
    )
