"""Synthetic workload generators.

FA's cost analysis (Section 3) assumes the orderings in the sorted lists
are *probabilistically independent*; real middleware workloads deviate in
both directions (correlated attributes make top-k easy, anti-correlated
attributes make it hard).  These generators provide the standard spread
used in the top-k literature:

* :func:`uniform` -- i.i.d. uniform grades (FA's model);
* :func:`permutations` -- independent random orderings with *distinct*
  equally-spaced grades per list, satisfying the paper's distinctness
  property by construction;
* :func:`correlated` / :func:`anticorrelated` -- Gaussian-copula grades
  with positive / negative equicorrelation and uniform marginals;
* :func:`zipf_skewed` -- heavy skew (a few objects with high grades, a
  long flat tail), the regime Quick-Combine's heuristic targets;
* :func:`plateau` -- grades quantised to a few levels, producing massive
  ties (the regime where wild guesses provably help, cf. Example 6.3).

Shard-aware generation (:func:`sharded_blocks`, :func:`sharded_uniform`)
builds a :class:`~repro.middleware.database.ShardedDatabase` from
per-shard grade blocks drawn on *independent spawned RNG streams*, so a
distributed loader can produce shard ``s`` reproducibly without
materialising -- or even knowing the seed state of -- the other shards.

Every generator takes an integer ``seed`` and is deterministic given it.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from ..middleware.database import Database, ShardedDatabase, shard_bounds_for

__all__ = [
    "uniform",
    "permutations",
    "correlated",
    "anticorrelated",
    "zipf_skewed",
    "plateau",
    "sharded_blocks",
    "sharded_uniform",
    "remote_uniform",
]


def _check_shape(n: int, m: int) -> None:
    if n < 1:
        raise ValueError(f"need at least one object, got n={n}")
    if m < 1:
        raise ValueError(f"need at least one list, got m={m}")


def uniform(n: int, m: int, seed: int = 0) -> Database:
    """``n`` objects with i.i.d. ``Uniform[0, 1]`` grades in ``m`` lists."""
    _check_shape(n, m)
    rng = np.random.default_rng(seed)
    return Database.from_array(rng.random((n, m)))


def permutations(n: int, m: int, seed: int = 0) -> Database:
    """Independent random orderings with distinct grades.

    List ``i`` assigns the grades ``1/n, 2/n, ..., 1`` to a uniformly
    random permutation of the objects.  Satisfies the distinctness
    property (Section 6) by construction, with independent orderings --
    the cleanest instantiation of FA's probabilistic model.
    """
    _check_shape(n, m)
    rng = np.random.default_rng(seed)
    grades = np.empty((n, m), dtype=float)
    levels = np.arange(1, n + 1, dtype=float) / n
    for i in range(m):
        grades[rng.permutation(n), i] = levels
    return Database.from_array(grades)


def _normal_cdf(x: np.ndarray) -> np.ndarray:
    erf = np.frompyfunc(math.erf, 1, 1)
    return 0.5 * (1.0 + erf(x / math.sqrt(2.0)).astype(float))


def _copula(n: int, m: int, rho: float, seed: int) -> Database:
    lower = -1.0 / (m - 1) if m > 1 else -1.0
    if not (lower < rho < 1.0):
        raise ValueError(
            f"equicorrelation rho={rho} must lie in ({lower:.3f}, 1) for m={m}"
        )
    rng = np.random.default_rng(seed)
    cov = np.full((m, m), rho)
    np.fill_diagonal(cov, 1.0)
    chol = np.linalg.cholesky(cov)
    z = rng.standard_normal((n, m)) @ chol.T
    return Database.from_array(_normal_cdf(z))


def correlated(n: int, m: int, rho: float = 0.8, seed: int = 0) -> Database:
    """Positively correlated grades via a Gaussian copula.

    High-grade objects tend to be high in every list, so TA's threshold
    collapses quickly -- the easy regime where TA beats FA by a wide
    margin.
    """
    _check_shape(n, m)
    if rho < 0:
        raise ValueError(f"use anticorrelated() for rho < 0, got {rho}")
    return _copula(n, m, rho, seed)


def anticorrelated(n: int, m: int, rho: float | None = None, seed: int = 0) -> Database:
    """Negatively correlated grades via a Gaussian copula.

    Objects good in one attribute are bad in the others, so many objects
    crowd the top-k boundary -- the hard regime for every algorithm.
    ``rho`` defaults to 90% of the most negative feasible equicorrelation
    ``-1/(m-1)``.
    """
    _check_shape(n, m)
    if m < 2:
        raise ValueError("anticorrelation needs m >= 2")
    if rho is None:
        rho = -0.9 / (m - 1)
    if rho >= 0:
        raise ValueError(f"anticorrelated() needs rho < 0, got {rho}")
    return _copula(n, m, rho, seed)


def zipf_skewed(n: int, m: int, alpha: float = 3.0, seed: int = 0) -> Database:
    """Skewed grades: ``Uniform ** alpha`` per cell (``alpha > 1``).

    A handful of objects have grades near 1 while the bulk sit near 0,
    producing the steep grade decline that Quick-Combine's heuristic
    exploits.
    """
    _check_shape(n, m)
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    rng = np.random.default_rng(seed)
    return Database.from_array(rng.random((n, m)) ** alpha)


def plateau(n: int, m: int, levels: int = 4, seed: int = 0) -> Database:
    """Grades quantised to ``levels`` equally spaced values.

    Massive ties inside each list: the regime in which tie order matters
    and lucky wild guesses can shortcut any no-wild-guess algorithm.
    Tie order is randomised *independently per list* -- with a
    deterministic tie order, equal-grade prefixes would line up across
    lists and FA would find matches unrealistically early.
    """
    _check_shape(n, m)
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, levels, size=(n, m)).astype(float)
    grades = raw / (levels - 1) if levels > 1 else raw * 0.0 + 1.0
    columns: list[list[tuple[int, float]]] = []
    for i in range(m):
        shuffled = rng.permutation(n)
        order = sorted(shuffled.tolist(), key=lambda row: -grades[row, i])
        columns.append([(row, grades[row, i]) for row in order])
    return Database.from_columns(columns)


def sharded_blocks(
    block: Callable[[np.random.Generator, int, int], np.ndarray],
    n: int,
    m: int,
    num_shards: int = 2,
    seed: int = 0,
) -> ShardedDatabase:
    """Assemble a :class:`~repro.middleware.database.ShardedDatabase`
    from per-shard grade blocks.

    ``block(rng, n_s, m)`` produces one shard's ``(n_s, m)`` grade block
    from its own spawned child stream of ``seed``'s root RNG, so each
    shard is reproducible in isolation: worker ``s`` only needs
    ``(seed, s)`` to regenerate its block, the way a distributed loader
    would.  Shard sizes are the balanced contiguous partition of
    :func:`~repro.middleware.database.shard_bounds_for`.
    """
    _check_shape(n, m)
    bounds = shard_bounds_for(n, num_shards)
    streams = np.random.default_rng(seed).spawn(num_shards)
    parts = [
        np.asarray(
            block(streams[s], int(bounds[s + 1] - bounds[s]), m), dtype=float
        ).reshape(int(bounds[s + 1] - bounds[s]), m)
        for s in range(num_shards)
    ]
    return ShardedDatabase.from_shards(parts)


def sharded_uniform(
    n: int, m: int, num_shards: int = 2, seed: int = 0
) -> ShardedDatabase:
    """i.i.d. ``Uniform[0, 1]`` grades generated shard by shard (the
    sharded counterpart of :func:`uniform`; the *distribution* matches,
    the draws differ because each shard uses its own child stream)."""
    return sharded_blocks(
        lambda rng, n_s, m_: rng.random((n_s, m_)), n, m, num_shards, seed
    )


def remote_uniform(
    n: int,
    m: int,
    seed: int = 0,
    *,
    base_latency: float = 0.0,
    jitter: float = 0.0,
):
    """A uniform workload deployed as ``m`` simulated remote services.

    The remote counterpart of :func:`uniform` (the
    ``assemble_database``-style assembly helper of the async plane):
    returns ``(services, database)`` where ``services`` are
    :class:`~repro.services.simulated.SimulatedListService` instances
    serving the database's lists under the given per-call latency
    model, ready for an
    :class:`~repro.services.session.AsyncAccessSession` or
    :func:`~repro.services.assemble.assemble_remote_database`; the
    ``database`` is the local ground truth the services were built
    from (useful for verification -- it never touches the services'
    accounting)."""
    # local import: repro.services layers on top of datagen's siblings
    from ..services import LatencyModel, services_for_database

    db = uniform(n, m, seed)
    latency = (
        LatencyModel(base_latency, jitter, seed=seed)
        if base_latency or jitter
        else None
    )
    return services_for_database(db, latency=latency), db
