"""Workload generators: synthetic distributions and the paper's
adversarial constructions."""

from .adversarial import (
    AdversarialInstance,
    example_6_3,
    example_6_8,
    example_7_3,
    example_8_3,
    figure_5,
    theorem_9_1_family,
    theorem_9_2_family,
    theorem_9_5_family,
)
from .realistic import ratings_like, search_scores_like, sensor_like
from .synthetic import (
    anticorrelated,
    correlated,
    permutations,
    plateau,
    remote_uniform,
    sharded_blocks,
    sharded_uniform,
    uniform,
    zipf_skewed,
)

__all__ = [
    "AdversarialInstance",
    "example_6_3",
    "example_6_8",
    "example_7_3",
    "example_8_3",
    "figure_5",
    "theorem_9_1_family",
    "theorem_9_2_family",
    "theorem_9_5_family",
    "ratings_like",
    "search_scores_like",
    "sensor_like",
    "anticorrelated",
    "correlated",
    "permutations",
    "plateau",
    "remote_uniform",
    "sharded_blocks",
    "sharded_uniform",
    "uniform",
    "zipf_skewed",
]
