"""The paper's adversarial database constructions, built exactly as
specified.

Each figure/example in the paper is a concrete family of databases used
either to separate algorithm classes (a lucky wild guess beats every
no-wild-guess algorithm, Example 6.3) or to witness lower bounds on
optimality ratios (Theorems 9.1, 9.2, 9.5).  The constructors here return
an :class:`AdversarialInstance` bundling the database with the intended
aggregation function, ``k``, the unique winner, and the paper's stated
*competitor cost* (the accesses of the clever algorithm the construction
is designed for), which the benchmarks compare against measured algorithm
costs.

Tie placement inside lists follows the paper (e.g. Figure 1's winner sits
exactly in the middle of both lists), using
:meth:`~repro.middleware.database.Database.from_columns` which preserves
explicit orderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..aggregation import (
    MIN,
    SUM,
    AggregationFunction,
    Example73Aggregation,
    MinOfSumFirstTwo,
)
from ..middleware.database import Database

__all__ = [
    "AdversarialInstance",
    "example_6_3",
    "example_6_8",
    "example_7_3",
    "example_8_3",
    "figure_5",
    "theorem_9_1_family",
    "theorem_9_2_family",
    "theorem_9_5_family",
]


@dataclass(frozen=True)
class AdversarialInstance:
    """A database plus the query it was built to stress.

    ``competitor_sorted`` / ``competitor_random`` record the access counts
    of the paper's intended clever competitor (e.g. "2 random accesses and
    no sorted accesses" for Figure 1); benchmarks divide measured
    algorithm costs by this competitor's cost to reproduce the paper's
    unbounded-ratio claims.
    """

    database: Database
    aggregation: AggregationFunction
    k: int
    top_object: Hashable
    description: str
    competitor_sorted: int
    competitor_random: int
    params: dict = field(default_factory=dict)
    restricted_sorted_lists: tuple[int, ...] | None = None

    def competitor_cost(self, cost_model) -> float:
        """Middleware cost of the paper's stated competitor."""
        return cost_model.cost(self.competitor_sorted, self.competitor_random)


def example_6_3(n: int) -> AdversarialInstance:
    """Figure 1 / Example 6.3: the lucky-wild-guess database.

    ``2n + 1`` objects named ``1 .. 2n+1``; in ``L1`` the top ``n+1``
    objects (``1 .. n+1``) have grade 1 and the rest 0; ``L2`` is in the
    reverse object order with the top ``n+1`` (``2n+1 .. n+1``) at grade 1.
    With ``t = min`` and ``k = 1``, object ``n+1`` is the unique winner
    (grade 1; everything else grades 0) yet sits in the middle of both
    lists, so any algorithm without wild guesses needs at least ``n+1``
    sorted accesses, while guessing ``n+1`` costs two random accesses.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    total = 2 * n + 1
    l1 = [(obj, 1.0 if obj <= n + 1 else 0.0) for obj in range(1, total + 1)]
    l2 = [
        (obj, 1.0 if obj >= n + 1 else 0.0)
        for obj in range(total, 0, -1)
    ]
    db = Database.from_columns([l1, l2])
    return AdversarialInstance(
        database=db,
        aggregation=MIN,
        k=1,
        top_object=n + 1,
        description="Example 6.3 (Figure 1): wild guess finds the winner in 2 "
        "random accesses; no-wild-guess algorithms need >= n+1 sorted accesses",
        competitor_sorted=0,
        competitor_random=2,
        params={"n": n},
    )


def example_6_8(n: int, theta: float) -> AdversarialInstance:
    """Figure 2 / Example 6.8: Example 6.3 hardened with distinct grades.

    Same reverse-order structure, but all grades distinct: object ``n+1``
    has grade ``1/theta`` in both lists and every other object has overall
    grade at most ``1/(2 theta^2)``, so even a theta-approximation must
    return ``n+1``.  Shows the distinctness property does not rescue
    TA-theta (Theorem 6.9).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if theta <= 1.0:
        raise ValueError(f"theta must be > 1, got {theta}")
    total = 2 * n + 1
    high = 1.0 / theta
    low = 1.0 / (2.0 * theta * theta)

    def grade_at(position: int) -> float:
        """Strictly decreasing grades by 1-based list position."""
        if position <= n:
            # fillers above the winner, in (1/theta, 1)
            return high + (1.0 - high) * (n + 1 - position) / (n + 1)
        if position == n + 1:
            return high
        if position == n + 2:
            return low
        # tail below low, strictly decreasing, positive
        return low * (total + 1 - position) / n

    l1 = [(obj, grade_at(obj)) for obj in range(1, total + 1)]
    l2 = [
        (total + 1 - pos, grade_at(pos)) for pos in range(1, total + 1)
    ]
    db = Database.from_columns([l1, l2])
    assert db.satisfies_distinctness()
    return AdversarialInstance(
        database=db,
        aggregation=MIN,
        k=1,
        top_object=n + 1,
        description="Example 6.8 (Figure 2): theta-approximation variant of the "
        "wild-guess database, with distinct grades",
        competitor_sorted=0,
        competitor_random=2,
        params={"n": n, "theta": theta},
    )


def example_7_3(n: int) -> AdversarialInstance:
    """Figure 3 / Example 7.3: TAZ must scan everything.

    Three lists, only ``L1`` sorted-accessible (``Z = {0}``),
    ``t(x, y, z) = min(x, y)`` if ``z = 1`` else ``min(x, y, z) / 2``.
    Object ``R`` has grades ``(1, 0.6, 1)`` so ``t(R) = 0.6``; every other
    object has ``z < 1`` hence overall grade at most 0.475.  The minimum
    grade in ``L1`` is 0.7, so TAZ's threshold never drops below 0.7 and
    TAZ reads every list to the end -- yet 1 sorted + 2 random accesses
    prove the answer.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    others = [f"o{j}" for j in range(1, n)]
    l1 = [("R", 1.0)] + [
        (obj, 0.7 + 0.3 * (n - 1 - j) / n) for j, obj in enumerate(others, start=1)
    ]
    # L2: R on top with 0.6; all others strictly below 0.55
    l2 = [("R", 0.6)] + [
        (obj, 0.55 * (n - j) / n) for j, obj in enumerate(others, start=1)
    ]
    l3 = [("R", 1.0)] + [
        (obj, 0.95 * (n - j) / n) for j, obj in enumerate(others, start=1)
    ]
    db = Database.from_columns([l1, l2, l3])
    assert db.satisfies_distinctness()
    return AdversarialInstance(
        database=db,
        aggregation=Example73Aggregation(),
        k=1,
        top_object="R",
        description="Example 7.3 (Figure 3): with sorted access restricted to "
        "L1, TAZ's threshold is stuck at >= 0.7 while the top grade is 0.6",
        competitor_sorted=1,
        competitor_random=2,
        params={"n": n},
        restricted_sorted_lists=(0,),
    )


def example_8_3(n: int, with_second: bool = False) -> AdversarialInstance:
    """Figure 4 / Example 8.3: NRA can identify the winner without its grade.

    Two lists, ``t = average``.  ``R`` has grade 1 in ``L1`` and 0 at the
    bottom of ``L2``; every other grade in both lists is ``1/3``.  After
    depth 2, ``W(R) = 1/2`` exceeds every other object's ``B = 1/3``, so
    NRA halts -- but *computing* ``t(R)`` would require scanning all of
    ``L2``.  With ``with_second=True``, a second object ``R2`` (grade 1 in
    ``L1``, ``1/4`` in ``L2``) realises the paper's ``C2 < C1`` remark.
    """
    if n < 3:
        raise ValueError(f"n must be >= 3, got {n}")
    specials = ["R", "R2"] if with_second else ["R"]
    fillers = [f"o{j}" for j in range(1, n + 1 - len(specials))]
    l1 = [(s, 1.0) for s in specials] + [(obj, 1.0 / 3.0) for obj in fillers]
    l2 = [(obj, 1.0 / 3.0) for obj in fillers]
    if with_second:
        l2.append(("R2", 0.25))
    l2.append(("R", 0.0))
    from ..aggregation import AVERAGE

    db = Database.from_columns([l1, l2])
    return AdversarialInstance(
        database=db,
        aggregation=AVERAGE,
        k=1,
        top_object="R",
        description="Example 8.3 (Figure 4): the top object's grade is only "
        "known after scanning all of L2, but its identity is known at depth 2",
        competitor_sorted=3,
        competitor_random=0,
        params={"n": n, "with_second": with_second},
    )


def figure_5(h: int) -> AdversarialInstance:
    """The Section 8.4 database separating CA from the intermittent
    algorithm (Figure 5).

    Three lists, ``t = x1 + x2 + x3``, ``h = floor(cR/cS)``.  The winner
    ``R`` sits at position ``h - 1`` of ``L1`` and ``L2`` (grade 1/2 each)
    and at position ``h^2`` of ``L3`` (grade 1/2), for an overall grade of
    3/2; every other object stays at or below 11/8.  CA random-accesses
    ``R`` (the unique object with a standout upper bound) as soon as its
    first phase fires, while the intermittent algorithm first burns two
    random accesses on each of the ``3(h-2)`` distinct top objects.
    """
    if h < 3:
        raise ValueError(f"h must be >= 3, got {h}")
    n_others = h * h - 1
    others = [f"o{j}" for j in range(n_others)]
    a_objs = others[: h - 2]  # top of L1
    b_objs = others[h - 2 : 2 * (h - 2)]  # top of L2
    d_objs = others[2 * (h - 2) : 3 * (h - 2)]  # top of L3
    total = n_others + 1

    def tail_grades(count: int) -> list[float]:
        """Strictly decreasing grades starting at 1/8."""
        return [0.125 * (count - idx) / count for idx in range(count)]

    def build_list(top: list[str], top_grades: list[float], winner_pos: int):
        column = list(zip(top, top_grades))
        column.append(("R", 0.5))
        rest = [obj for obj in others if obj not in set(top)]
        column.extend(zip(rest, tail_grades(len(rest))))
        assert len(column) == total
        return column

    top_grades_12 = [0.5 + i / (8.0 * h) for i in range(h - 2, 0, -1)]
    l1 = build_list(a_objs, top_grades_12, h - 1)
    l2 = build_list(b_objs, top_grades_12, h - 1)

    # L3: positions 1..h^2-1 hold every non-R object, D-objects first
    l3_order = d_objs + [obj for obj in others if obj not in set(d_objs)]
    l3_grades = [0.5 + i / (8.0 * h * h) for i in range(n_others, 0, -1)]
    l3 = list(zip(l3_order, l3_grades)) + [("R", 0.5)]

    db = Database.from_columns([l1, l2, l3])
    return AdversarialInstance(
        database=db,
        aggregation=SUM,
        k=1,
        top_object="R",
        description="Figure 5 (Section 8.4): CA resolves R with one random "
        "access; the intermittent algorithm and TA pay ~6(h-2) random accesses "
        "on the decoy tops first",
        competitor_sorted=3 * h,
        competitor_random=1,
        params={"h": h},
    )


def theorem_9_1_family(d: int, m: int, k: int = 1) -> AdversarialInstance:
    """The Theorem 9.1 lower-bound family (tightness of TA's ratio).

    ``t = min`` (strict).  One object ``T`` has grade 1 everywhere and
    sits at position ``d + k - 1`` of list 0; every other object has grade
    1 in all lists except one, where it has grade 0.  TA pays
    ``~ d*m*cS + d*m*(m-1)*cR`` while ``d`` sorted accesses on list 0 plus
    ``m - 1`` random accesses suffice, so the measured ratio approaches
    ``m + m(m-1) cR/cS`` as ``d`` grows.

    For ``k > 1``, ``k - 1`` easy all-ones objects are prepended to every
    list, as in the paper's proof.
    """
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    per_class = 2 * d + 2
    others = [f"o{x}" for x in range(m * per_class)]
    easy = [f"easy{j}" for j in range(k - 1)]

    def zero_list(obj: str) -> int:
        return int(obj[1:]) % m

    columns: list[list[tuple[str, float]]] = []
    for i in range(m):
        ones = [obj for obj in others if zero_list(obj) != i]
        zeros = [obj for obj in others if zero_list(obj) == i]
        if i == 0:
            order = ones[: d - 1] + ["T"] + ones[d - 1 :]
        else:
            pos = min(2 * d, len(ones))
            order = ones[:pos] + ["T"] + ones[pos:]
        order = easy + order
        column = [(obj, 1.0) for obj in order] + [(obj, 0.0) for obj in zeros]
        columns.append(column)

    db = Database.from_columns(columns)
    return AdversarialInstance(
        database=db,
        aggregation=MIN,
        k=k,
        top_object="T",
        description="Theorem 9.1 family: TA's optimality ratio approaches "
        "m + m(m-1) cR/cS against the d-sorted + (m-1)-random competitor",
        competitor_sorted=d + k - 1,
        competitor_random=(m - 1) * k,
        params={"d": d, "m": m, "k": k},
    )


def theorem_9_2_family(d: int, m: int, n: int | None = None) -> AdversarialInstance:
    """The Theorem 9.2 lower-bound family for ``t = min(x1+x2, x3, ..., xm)``.

    Distinct grades everywhere.  ``d`` *candidates* pair up in lists 0 and
    1 so that each has ``x1 + x2 = 1/2``; the winner ``T`` is the unique
    candidate whose grades in lists ``2 .. m-1`` all lie in ``[1/2, 3/4)``;
    every other candidate dips below ``1/2`` in exactly one of those
    lists.  A competitor reads the top ``d`` of lists 0 and 1 and
    random-accesses ``T``'s remaining ``m - 2`` grades; every deterministic
    algorithm must pay ``~ (d-1)(m-2)`` random accesses (or ``N/4`` sorted
    accesses) to distinguish the candidates.
    """
    if m < 3:
        raise ValueError(f"m must be >= 3, got {m}")
    if d < 2:
        raise ValueError(f"d must be >= 2, got {d}")
    if n is None:
        n = max(8 * d, 64)
    if n % 4:
        n += 4 - n % 4
    if n < 4 * (d + 2):
        raise ValueError(f"n={n} too small for d={d} (need n >= 4(d+2))")

    candidates = [f"c{i}" for i in range(1, d + 1)]
    winner = candidates[-1]
    fillers = [f"f{j}" for j in range(1, n - d + 1)]

    # lists 0 and 1: candidate i gets i/(2d+2) and (d+1-i)/(2d+2)
    denom = 2.0 * d + 2.0
    small = 1.0 / denom

    def filler_grades(reverse: bool) -> list[float]:
        count = len(fillers)
        gs = [small * (count - idx) / (count + 1) for idx in range(count)]
        return gs if not reverse else gs  # same grades, order differs by caller

    l0 = [(candidates[i - 1], i / denom) for i in range(d, 0, -1)]
    l0 += list(zip(fillers, filler_grades(False)))
    l1 = [(candidates[i - 1], (d + 1 - i) / denom) for i in range(1, d + 1)]
    l1 += list(zip(reversed(fillers), filler_grades(True)))

    # lists 2..m-1: grades are a permutation of i/n; candidates sit in the
    # high band [n/2, 3n/4) except each non-winner dips low in one list.
    columns = [l0, l1]
    for ell in range(2, m):
        high_band = list(range(3 * n // 4 - 1, n // 2 - 1, -1))
        low_band = list(range(n // 2 - 1, 0, -1))
        assignment: dict[str, int] = {}
        hi_iter = iter(high_band)
        lo_iter = iter(low_band)
        for j, cand in enumerate(candidates):
            excluded = 2 + (j % (m - 2)) if cand != winner else None
            if excluded == ell:
                assignment[cand] = next(lo_iter)
            else:
                assignment[cand] = next(hi_iter)
        used = set(assignment.values())
        free = [i for i in range(n, 0, -1) if i not in used]
        for filler, idx in zip(fillers, free):
            assignment[filler] = idx
        column = sorted(
            ((obj, idx / n) for obj, idx in assignment.items()),
            key=lambda e: -e[1],
        )
        columns.append(column)

    db = Database.from_columns(columns)
    assert db.satisfies_distinctness()
    return AdversarialInstance(
        database=db,
        aggregation=MinOfSumFirstTwo(),
        k=1,
        top_object=winner,
        description="Theorem 9.2 family: distinct grades, strictly monotone t, "
        "yet every algorithm needs ~(d-1)(m-2) random accesses; the competitor "
        "pays 2d sorted + (m-2) random",
        competitor_sorted=2 * d,
        competitor_random=m - 2,
        params={"d": d, "m": m, "n": n},
    )


def theorem_9_5_family(d: int, m: int) -> AdversarialInstance:
    """The Theorem 9.5 lower-bound family (tightness of NRA's ratio ``m``).

    ``t = min``.  ``2m`` special objects; list ``i``'s top ``2m - 2``
    entries are the specials *except* the pair ``(T_i, T'_i)`` whose
    "challenge list" is ``i``.  The unique all-ones object ``T`` hides at
    position ``d`` of its challenge list (list 0 here).  Lockstep NRA must
    descend to depth ``d`` in *every* list (``d*m`` sorted accesses) while
    a clever no-random-access competitor pays ``d + (m-1)(2m-2)`` sorted
    accesses, giving ratio ``-> m``.
    """
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    if d < 2 * m:
        raise ValueError(f"d must be >= 2m = {2 * m}, got {d}")

    specials = [f"T{i}" for i in range(m)] + [f"U{i}" for i in range(m)]
    winner = "T0"

    def challenge(obj: str) -> int:
        return int(obj[1:])

    filler_count_per_list = [
        d - (2 * m - 1) if i == 0 else d - (2 * m - 2) for i in range(m)
    ]
    total_fillers = sum(filler_count_per_list)
    fillers = [f"f{j}" for j in range(total_fillers)]
    # each filler has grade 1 in exactly one list
    filler_home: dict[str, int] = {}
    cursor = 0
    for i, count in enumerate(filler_count_per_list):
        for filler in fillers[cursor : cursor + count]:
            filler_home[filler] = i
        cursor += count

    columns: list[list[tuple[str, float]]] = []
    for i in range(m):
        top_specials = [s for s in specials if challenge(s) != i]
        ones = list(top_specials)
        ones += [f for f in fillers if filler_home[f] == i]
        if i == 0:
            ones.append(winner)  # position d exactly
        assert len(ones) == d, (len(ones), d)
        zeros = [
            obj
            for obj in specials + fillers
            if obj not in set(ones)
        ]
        column = [(obj, 1.0) for obj in ones] + [(obj, 0.0) for obj in zeros]
        columns.append(column)

    db = Database.from_columns(columns)
    return AdversarialInstance(
        database=db,
        aggregation=MIN,
        k=1,
        top_object=winner,
        description="Theorem 9.5 family: lockstep NRA pays d*m sorted accesses "
        "while d + (m-1)(2m-2) suffice without random access",
        competitor_sorted=d + (m - 1) * (2 * m - 2),
        competitor_random=0,
        params={"d": d, "m": m},
    )
