"""Realistic workload shapes from the paper's motivating applications.

The paper motivates middleware top-k with multimedia repositories,
information retrieval and recommendation-style data.  These generators
mimic the grade distributions such systems actually produce, filling the
space between the clean synthetic distributions and the adversarial
families:

* :func:`ratings_like` -- recommendation scores: per-object quality with
  per-list (rater) noise, giving strong but imperfect cross-list
  correlation and a bimodal shape (most items mediocre, a head of hits);
* :func:`search_scores_like` -- IR relevance: sparse grades where most
  objects score (near) zero for most terms and a small overlap set
  scores on all of them -- exercising NRA's ``W = 0`` regime for
  ``min``-style queries and the sum aggregation of Section 1;
* :func:`sensor_like` -- bounded drifting signals: adjacent objects have
  similar grades (plateau-ish runs without exact ties).
"""

from __future__ import annotations

import numpy as np

from ..middleware.database import Database

__all__ = ["ratings_like", "search_scores_like", "sensor_like"]


def _check(n: int, m: int) -> None:
    if n < 1:
        raise ValueError(f"need at least one object, got n={n}")
    if m < 1:
        raise ValueError(f"need at least one list, got m={m}")


def ratings_like(
    n: int,
    m: int,
    hit_fraction: float = 0.1,
    noise: float = 0.15,
    seed: int = 0,
) -> Database:
    """Recommendation-style grades: latent quality + per-list noise.

    A ``hit_fraction`` of objects draw quality from the upper beta mode;
    the rest from the lower mode.  Each list observes quality through
    independent noise, so lists agree on the head but shuffle the tail.
    """
    _check(n, m)
    if not (0.0 <= hit_fraction <= 1.0):
        raise ValueError(f"hit_fraction must be in [0, 1], got {hit_fraction}")
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    rng = np.random.default_rng(seed)
    hits = rng.random(n) < hit_fraction
    quality = np.where(
        hits, rng.beta(8, 2, size=n), rng.beta(2.5, 4, size=n)
    )
    grades = quality[:, None] + rng.normal(0.0, noise, size=(n, m))
    return Database.from_array(np.clip(grades, 0.0, 1.0))


def search_scores_like(
    n: int,
    m: int,
    match_fraction: float = 0.25,
    overlap_fraction: float = 0.05,
    seed: int = 0,
) -> Database:
    """IR-style sparse relevance scores.

    Each object matches each term (list) independently with probability
    ``match_fraction`` (score drawn from a skewed beta; zero otherwise),
    except for an ``overlap_fraction`` of documents relevant to *every*
    term -- the documents a conjunctive query is really after.
    """
    _check(n, m)
    for name, value in (
        ("match_fraction", match_fraction),
        ("overlap_fraction", overlap_fraction),
    ):
        if not (0.0 <= value <= 1.0):
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    rng = np.random.default_rng(seed)
    scores = rng.beta(2, 5, size=(n, m))
    matches = rng.random((n, m)) < match_fraction
    overlap = rng.random(n) < overlap_fraction
    matches[overlap, :] = True
    # strong signal for the overlap set
    scores[overlap] = np.clip(scores[overlap] + 0.4, 0.0, 1.0)
    grades = np.where(matches, scores, 0.0)
    return Database.from_array(grades)


def sensor_like(
    n: int,
    m: int,
    drift: float = 0.02,
    seed: int = 0,
) -> Database:
    """Bounded random walks: object ``i``'s grade in each list drifts
    from object ``i-1``'s -- long quasi-plateaus without exact ties."""
    _check(n, m)
    if drift <= 0:
        raise ValueError(f"drift must be positive, got {drift}")
    rng = np.random.default_rng(seed)
    steps = rng.normal(0.0, drift, size=(n, m))
    start = rng.random(m)
    walk = start[None, :] + np.cumsum(steps, axis=0)
    # reflect into [0, 1]
    walk = np.abs(walk) % 2.0
    walk = np.where(walk > 1.0, 2.0 - walk, walk)
    return Database.from_array(walk)
