"""Core aggregation-function framework.

The paper models a middleware query as a choice of *aggregation function*
``t``: if ``x1, ..., xm`` (each in ``[0, 1]``) are the grades of an object
under the ``m`` attributes, then ``t(x1, ..., xm)`` is the object's overall
grade.  Algorithms in :mod:`repro.core` are parameterised by such a function
and rely on a small set of structural properties that the paper's theorems
are conditioned on:

monotone
    ``t(x) <= t(x')`` whenever ``xi <= xi'`` for every ``i``.  Required by
    every algorithm in the paper (TA's correctness, Theorem 4.1, already
    needs it).

strict
    ``t(x1, ..., xm) = 1`` holds *precisely* when ``xi = 1`` for every ``i``.
    Intuitively the function represents a notion of conjunction.  Needed for
    the tight optimality-ratio results (Corollary 6.2, Theorem 9.1).

strictly monotone
    ``t(x) < t(x')`` whenever ``xi < xi'`` for *every* ``i``.  Needed for
    Theorem 6.5 (instance optimality of TA even against wild guesses, under
    the distinctness property).

strictly monotone in each argument (SMV)
    strictly increasing whenever a single argument strictly increases and
    the rest are held fixed.  Needed for Theorem 8.9 (instance optimality of
    CA with ratio independent of ``cR/cS``).

Subclasses declare these properties as class attributes; they are treated as
assertions about the mathematical function and are validated empirically by
:mod:`repro.aggregation.properties` in the test-suite.

Besides evaluation, the framework provides the two bound substitutions that
the NRA and CA algorithms (Section 8 of the paper) are built on:

* ``worst_case`` -- the lower bound ``W_S(R)``: substitute ``0`` for every
  unknown field (Proposition 8.1: ``t(R) >= W_S(R)``);
* ``best_case`` -- the upper bound ``B_S(R)``: substitute the current bottom
  value of the corresponding list for every unknown field (Proposition 8.2:
  ``t(R) <= B_S(R)``);
* ``threshold`` -- the TA threshold ``tau = t(bottom_1, ..., bottom_m)``,
  which coincides with ``best_case`` of a completely unseen object.

Batched evaluation
------------------

:meth:`AggregationFunction.aggregate_batch` evaluates the function on an
``(n, m)`` grade matrix, returning an ``(n,)`` vector.  The columnar
execution engine (:class:`repro.middleware.database.ColumnarDatabase` and
the batched loops in :mod:`repro.core`) relies on it being **bit-for-bit
identical** to ``n`` scalar :meth:`~AggregationFunction.aggregate` calls:
access counts of the batched algorithms depend on exact float comparisons
against thresholds, so a one-ulp drift could change a halting round.
Vectorized overrides therefore accumulate *column by column in argument
order* (see :func:`ordered_rowsum`), which performs the same IEEE
operations in the same order as a left-to-right Python loop, instead of
using pairwise-summing reductions like ``np.sum``.  The default
implementation simply loops, so every custom function is batch-safe out
of the box.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping, Sequence

import numpy as np

__all__ = [
    "AggregationError",
    "ArityError",
    "AggregationFunction",
    "FunctionAdapter",
    "make_aggregation",
    "ordered_rowsum",
    "ordered_rowprod",
]


def ordered_rowsum(rows: np.ndarray) -> np.ndarray:
    """Row sums of an ``(n, m)`` matrix, accumulated column by column.

    Performs the additions in argument order, making the result bitwise
    equal to ``sum(row)`` evaluated left-to-right in Python -- unlike
    ``np.sum(axis=1)``, whose pairwise reduction may reassociate for
    large ``m``.
    """
    acc = rows[:, 0].copy()
    for j in range(1, rows.shape[1]):
        acc += rows[:, j]
    return acc


def ordered_rowprod(rows: np.ndarray) -> np.ndarray:
    """Row products of an ``(n, m)`` matrix, accumulated in order (the
    bitwise match of a left-to-right Python product loop)."""
    acc = rows[:, 0].copy()
    for j in range(1, rows.shape[1]):
        acc *= rows[:, j]
    return acc


class AggregationError(ValueError):
    """Base class for errors raised by aggregation functions."""


class ArityError(AggregationError):
    """A grade vector of the wrong length was supplied."""

    def __init__(self, name: str, expected: int, got: int):
        super().__init__(
            f"aggregation function {name!r} expects {expected} arguments, got {got}"
        )
        self.expected = expected
        self.got = got


class AggregationFunction(ABC):
    """A monotone aggregation function ``t(x1, ..., xm)``.

    Instances are callable: ``t([0.2, 0.9])`` evaluates the function on a
    grade vector.  Hot loops may call :meth:`aggregate` directly with a
    tuple to skip the arity check and conversion.

    Attributes
    ----------
    name:
        Human-readable name used in reports and reprs.
    arity:
        Required number of arguments, or ``None`` if the function is
        variadic (defined for every ``m >= 1``).
    monotone, strict, strictly_monotone, strictly_monotone_each_argument:
        Declared structural properties (see module docstring).  SMV implies
        strictly monotone; the constructor of concrete classes is expected
        to keep the flags consistent.
    """

    name: str = "t"
    arity: int | None = None
    monotone: bool = True
    strict: bool = False
    strictly_monotone: bool = False
    strictly_monotone_each_argument: bool = False

    def __call__(self, grades: Sequence[float]) -> float:
        values = tuple(grades)
        self.check_arity(len(values))
        return self.aggregate(values)

    @abstractmethod
    def aggregate(self, grades: tuple[float, ...]) -> float:
        """Evaluate the function on an already-validated grade tuple."""

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        """Evaluate the function on every row of an ``(n, m)`` matrix.

        Returns an ``(n,)`` float64 vector whose entries are bit-for-bit
        equal to scalar :meth:`aggregate` calls on the corresponding rows
        (see the module docstring).  The base implementation loops;
        subclasses override with order-preserving vectorized forms.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        return np.array(
            [self.aggregate(tuple(row)) for row in rows.tolist()],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    # arity handling
    # ------------------------------------------------------------------
    def check_arity(self, m: int) -> None:
        """Raise :class:`ArityError` if the function is undefined for ``m``."""
        if m < 1:
            raise ArityError(self.name, self.arity or 1, m)
        if self.arity is not None and m != self.arity:
            raise ArityError(self.name, self.arity, m)

    # ------------------------------------------------------------------
    # bound substitutions used by NRA / CA (Section 8 of the paper)
    # ------------------------------------------------------------------
    def worst_case(self, known: Mapping[int, float], m: int) -> float:
        """Lower bound ``W_S(R)``: unknown fields replaced by ``0``.

        ``known`` maps field index (0-based) to the discovered grade; ``m``
        is the total number of lists.
        """
        return self.aggregate(tuple(known.get(i, 0.0) for i in range(m)))

    def best_case(
        self, known: Mapping[int, float], bottoms: Sequence[float]
    ) -> float:
        """Upper bound ``B_S(R)``: unknown fields replaced by bottom values.

        ``bottoms[i]`` is the last (smallest) grade seen under sorted access
        in list ``i`` (``1.0`` if the list has not been accessed).
        """
        return self.aggregate(
            tuple(known.get(i, bottoms[i]) for i in range(len(bottoms)))
        )

    def threshold(self, bottoms: Sequence[float]) -> float:
        """The TA threshold ``tau = t(bottom_1, ..., bottom_m)``."""
        return self.aggregate(tuple(bottoms))

    # ------------------------------------------------------------------
    # heuristic support (Quick-Combine, Section 10)
    # ------------------------------------------------------------------
    def heuristic_weight(self, index: int, m: int) -> float:
        """Relative influence of argument ``index`` for list-scheduling
        heuristics.

        Quick-Combine ranks lists by an estimate of
        ``dt/dx_i * (grade decline)``.  For functions without a meaningful
        partial derivative (e.g. ``min``) a uniform weight of ``1.0`` is
        used; weighted functions override this.
        """
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class FunctionAdapter(AggregationFunction):
    """Wrap a plain callable as an :class:`AggregationFunction`.

    This is the extension point for user-defined combining rules::

        t = make_aggregation(lambda g: 0.7 * g[0] + 0.3 * g[1],
                             name="skewed-sum", arity=2,
                             strictly_monotone_each_argument=True)

    The declared property flags are trusted by the algorithms; validate
    them with :func:`repro.aggregation.properties.verify_declared_properties`
    if in doubt.
    """

    def __init__(
        self,
        fn: Callable[[tuple[float, ...]], float],
        name: str = "custom",
        arity: int | None = None,
        monotone: bool = True,
        strict: bool = False,
        strictly_monotone: bool = False,
        strictly_monotone_each_argument: bool = False,
        batch_fn: Callable[["np.ndarray"], "np.ndarray"] | None = None,
    ):
        self._fn = fn
        self._batch_fn = batch_fn
        self.name = name
        self.arity = arity
        self.monotone = monotone
        self.strict = strict
        # SMV implies strictly monotone: raising every coordinate can be
        # decomposed into m single-coordinate raises.
        self.strictly_monotone = (
            strictly_monotone or strictly_monotone_each_argument
        )
        self.strictly_monotone_each_argument = strictly_monotone_each_argument

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return self._fn(grades)

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        if self._batch_fn is None:
            return super().aggregate_batch(rows)
        rows = np.asarray(rows, dtype=np.float64)
        if rows.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        return np.asarray(self._batch_fn(rows), dtype=np.float64)


def make_aggregation(
    fn: Callable[[tuple[float, ...]], float],
    name: str = "custom",
    arity: int | None = None,
    monotone: bool = True,
    strict: bool = False,
    strictly_monotone: bool = False,
    strictly_monotone_each_argument: bool = False,
    batch_fn: Callable[[np.ndarray], np.ndarray] | None = None,
) -> AggregationFunction:
    """Convenience constructor for :class:`FunctionAdapter`.

    ``batch_fn``, when given, vectorizes the function over an ``(n, m)``
    matrix; it must be bit-for-bit consistent with ``fn`` (see the module
    docstring).  Without it, batched callers fall back to a loop.
    """
    return FunctionAdapter(
        fn,
        name=name,
        arity=arity,
        monotone=monotone,
        strict=strict,
        strictly_monotone=strictly_monotone,
        strictly_monotone_each_argument=strictly_monotone_each_argument,
        batch_fn=batch_fn,
    )
