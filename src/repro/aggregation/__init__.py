"""Aggregation functions (combining rules) for middleware top-k queries.

Public surface:

* :class:`~repro.aggregation.base.AggregationFunction` -- the base class,
  including the ``W``/``B`` bound substitutions used by NRA and CA;
* :func:`~repro.aggregation.base.make_aggregation` -- wrap a plain callable;
* the standard functions (``MIN``, ``MAX``, ``AVERAGE``, ...), fuzzy
  t-norms, and the paper's special-purpose functions;
* empirical property checkers in :mod:`repro.aggregation.properties`.
"""

from .base import (
    AggregationError,
    AggregationFunction,
    ArityError,
    FunctionAdapter,
    make_aggregation,
)
from .composite import (
    Example73Aggregation,
    MinOfFirstTwo,
    MinOfSumFirstTwo,
    Transformed,
)
from .standard import (
    AVERAGE,
    MAX,
    MEDIAN,
    MIN,
    PRODUCT,
    SUM,
    Average,
    Constant,
    GeometricMean,
    HarmonicMean,
    KthLargest,
    Max,
    Median,
    Min,
    Product,
    Sum,
    WeightedSum,
)
from .tnorms import (
    BoundedSum,
    DrasticProduct,
    EinsteinProduct,
    HamacherProduct,
    LukasiewiczTNorm,
    ProbabilisticSum,
)

__all__ = [
    "AggregationError",
    "AggregationFunction",
    "ArityError",
    "FunctionAdapter",
    "make_aggregation",
    "Example73Aggregation",
    "MinOfFirstTwo",
    "MinOfSumFirstTwo",
    "Transformed",
    "Average",
    "Constant",
    "GeometricMean",
    "HarmonicMean",
    "KthLargest",
    "Max",
    "Median",
    "Min",
    "Product",
    "Sum",
    "WeightedSum",
    "AVERAGE",
    "MAX",
    "MEDIAN",
    "MIN",
    "PRODUCT",
    "SUM",
    "BoundedSum",
    "DrasticProduct",
    "EinsteinProduct",
    "HamacherProduct",
    "LukasiewiczTNorm",
    "ProbabilisticSum",
]
