"""Fuzzy t-norms and t-conorms as aggregation functions.

The paper cites the fuzzy-logic literature (Zimmermann) for the space of
combining rules: conjunctions are modelled by *t-norms* and disjunctions by
*t-conorms*.  Binary norms are extended to ``m`` arguments by associative
folding, which preserves monotonicity.

These give the test-suite and benchmarks a family of monotone functions
with varied property profiles -- in particular monotone-but-not-strictly-
monotone functions (Lukasiewicz, drastic), which the paper points out exist
"in the literature for representing conjunction and disjunction"
(Section 6) and which exercise the boundary of Theorem 6.5's hypotheses.
"""

from __future__ import annotations

import numpy as np

from .base import AggregationFunction, ordered_rowsum

__all__ = [
    "LukasiewiczTNorm",
    "HamacherProduct",
    "EinsteinProduct",
    "DrasticProduct",
    "ProbabilisticSum",
    "BoundedSum",
]


class LukasiewiczTNorm(AggregationFunction):
    """``t = max(0, x1 + ... + xm - (m - 1))``.

    Strict (equals 1 only at the all-ones vector) but *not* strictly
    monotone: any two grade vectors in the zero plateau compare equal.
    This is the canonical "conjunction that is monotone but not strictly
    monotone" from the fuzzy literature.
    """

    name = "lukasiewicz"
    strict = True
    strictly_monotone = False

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return max(0.0, sum(grades) - (len(grades) - 1))

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, ordered_rowsum(rows) - (rows.shape[1] - 1))


def _fold(binary, grades: tuple[float, ...]) -> float:
    result = grades[0]
    for g in grades[1:]:
        result = binary(result, g)
    return result


class HamacherProduct(AggregationFunction):
    """Hamacher t-norm ``H(x, y) = xy / (x + y - xy)`` (0 at the origin),
    folded over ``m`` arguments.

    Strict; strictly monotone on ``[0, 1]`` (raising every coordinate off
    the zero set strictly raises the output); not SMV because zero
    coordinates absorb.
    """

    name = "hamacher"
    strict = True
    strictly_monotone = True

    @staticmethod
    def _binary(x: float, y: float) -> float:
        if x == 0.0 and y == 0.0:
            return 0.0
        return (x * y) / (x + y - x * y)

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return _fold(self._binary, grades)

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        acc = rows[:, 0].copy()
        for j in range(1, rows.shape[1]):
            y = rows[:, j]
            zero = (acc == 0.0) & (y == 0.0)
            with np.errstate(invalid="ignore"):
                acc = (acc * y) / (acc + y - acc * y)
            acc[zero] = 0.0
        return acc


class EinsteinProduct(AggregationFunction):
    """Einstein t-norm ``E(x, y) = xy / (2 - (x + y - xy))``, folded."""

    name = "einstein"
    strict = True
    strictly_monotone = True

    @staticmethod
    def _binary(x: float, y: float) -> float:
        return (x * y) / (2.0 - (x + y - x * y))

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return _fold(self._binary, grades)

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        acc = rows[:, 0].copy()
        for j in range(1, rows.shape[1]):
            y = rows[:, j]
            acc = (acc * y) / (2.0 - (acc + y - acc * y))
        return acc


class DrasticProduct(AggregationFunction):
    """Drastic t-norm: ``min(x)`` if all other coordinates are 1, else 0.

    Folded form: the m-ary drastic product equals ``min(grades)`` when at
    most one grade differs from 1, and 0 otherwise.  The least t-norm;
    monotone and strict, far from strictly monotone.
    """

    name = "drastic"
    strict = True
    strictly_monotone = False

    def aggregate(self, grades: tuple[float, ...]) -> float:
        below_one = [g for g in grades if g < 1.0]
        if not below_one:
            return 1.0
        if len(below_one) == 1:
            return below_one[0]
        return 0.0

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        below = (rows < 1.0).sum(axis=1)
        # when exactly one grade is below 1 it is also the row minimum
        return np.where(
            below == 0, 1.0, np.where(below == 1, rows.min(axis=1), 0.0)
        )


class ProbabilisticSum(AggregationFunction):
    """t-conorm ``S(x) = 1 - prod(1 - xi)`` (noisy-or).

    Monotone, strictly monotone, not strict (saturates at 1 as soon as one
    coordinate is 1).
    """

    name = "probabilistic-sum"
    strict = False
    strictly_monotone = True

    def aggregate(self, grades: tuple[float, ...]) -> float:
        result = 1.0
        for g in grades:
            result *= 1.0 - g
        return 1.0 - result

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        acc = 1.0 - rows[:, 0]
        for j in range(1, rows.shape[1]):
            acc *= 1.0 - rows[:, j]
        return 1.0 - acc


class BoundedSum(AggregationFunction):
    """t-conorm ``S(x) = min(1, x1 + ... + xm)``.

    Monotone, not strictly monotone (plateau at 1), not strict.
    """

    name = "bounded-sum"
    strict = False
    strictly_monotone = False

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return min(1.0, sum(grades))

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        return np.minimum(1.0, ordered_rowsum(rows))
