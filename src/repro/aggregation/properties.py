"""Empirical validation of declared aggregation-function properties.

The algorithms trust the property flags declared on an
:class:`~repro.aggregation.base.AggregationFunction` (e.g. CA's instance
optimality needs strict monotonicity in each argument).  These helpers
randomly probe a function so the test-suite -- and users wrapping their own
callables with :func:`~repro.aggregation.base.make_aggregation` -- can catch
mis-declared flags.

All checks are sound in one direction only: a returned counterexample
disproves the property; absence of one after ``trials`` probes is evidence,
not proof.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import AggregationFunction

__all__ = [
    "Counterexample",
    "find_monotonicity_violation",
    "find_strictness_violation",
    "find_strict_monotonicity_violation",
    "find_smv_violation",
    "verify_declared_properties",
]

_EPS = 1e-12


@dataclass(frozen=True)
class Counterexample:
    """A pair of grade vectors witnessing a property violation."""

    property_name: str
    lower: tuple[float, ...]
    upper: tuple[float, ...]
    value_lower: float
    value_upper: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.property_name} violated: t{self.lower} = {self.value_lower} "
            f"vs t{self.upper} = {self.value_upper}"
        )


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _dominated_pair(
    rng: np.random.Generator, m: int, strict: bool
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Draw ``x <= y`` coordinatewise (strictly if ``strict``)."""
    lo = rng.random(m)
    if strict:
        hi = lo + rng.random(m) * (1.0 - lo) * 0.999 + 1e-9
        hi = np.minimum(hi, 1.0)
        # ensure strictness even after clipping
        lo = np.minimum(lo, hi - 1e-12)
        lo = np.maximum(lo, 0.0)
    else:
        hi = lo + rng.random(m) * (1.0 - lo)
    return tuple(lo.tolist()), tuple(hi.tolist())


def find_monotonicity_violation(
    t: AggregationFunction, m: int, trials: int = 400, seed=0
) -> Counterexample | None:
    """Search for ``x <= y`` with ``t(x) > t(y)``."""
    rng = _rng(seed)
    for _ in range(trials):
        lo, hi = _dominated_pair(rng, m, strict=False)
        v_lo, v_hi = t(lo), t(hi)
        if v_lo > v_hi + _EPS:
            return Counterexample("monotone", lo, hi, v_lo, v_hi)
    return None


def find_strictness_violation(
    t: AggregationFunction, m: int, trials: int = 400, seed=0
) -> Counterexample | None:
    """Search for a violation of ``t(x) = 1  <=>  x = (1, ..., 1)``."""
    ones = (1.0,) * m
    v = t(ones)
    if abs(v - 1.0) > _EPS:
        return Counterexample("strict (t(1..1)=1)", ones, ones, v, v)
    rng = _rng(seed)
    for _ in range(trials):
        x = rng.random(m)
        # force at least one coordinate strictly below 1
        x[rng.integers(m)] = min(x[rng.integers(m)], 1.0 - 1e-6)
        # sprinkle exact ones elsewhere to probe the boundary
        if rng.random() < 0.5:
            ones_at = rng.random(m) < 0.5
            x = np.where(ones_at, 1.0, x)
            if bool(ones_at.all()):
                x[rng.integers(m)] = 0.5
        vec = tuple(x.tolist())
        value = t(vec)
        if abs(value - 1.0) <= _EPS:
            return Counterexample("strict (t=1 off all-ones)", vec, ones, value, 1.0)
    return None


def find_strict_monotonicity_violation(
    t: AggregationFunction, m: int, trials: int = 400, seed=0
) -> Counterexample | None:
    """Search for ``x < y`` in every coordinate with ``t(x) >= t(y)``."""
    rng = _rng(seed)
    for _ in range(trials):
        lo, hi = _dominated_pair(rng, m, strict=True)
        v_lo, v_hi = t(lo), t(hi)
        if v_lo >= v_hi - _EPS:
            return Counterexample("strictly monotone", lo, hi, v_lo, v_hi)
    return None


def find_smv_violation(
    t: AggregationFunction, m: int, trials: int = 400, seed=0
) -> Counterexample | None:
    """Search for a single-coordinate strict raise that fails to strictly
    raise the output (violating strict monotonicity in each argument)."""
    rng = _rng(seed)
    for _ in range(trials):
        x = rng.random(m)
        i = int(rng.integers(m))
        y = x.copy()
        y[i] = x[i] + rng.random() * (1.0 - x[i]) * 0.999 + 1e-9
        if y[i] > 1.0 or y[i] <= x[i]:
            continue
        lo, hi = tuple(x.tolist()), tuple(y.tolist())
        v_lo, v_hi = t(lo), t(hi)
        if v_lo >= v_hi - _EPS:
            return Counterexample(
                "strictly monotone in each argument", lo, hi, v_lo, v_hi
            )
    return None


def verify_declared_properties(
    t: AggregationFunction, m: int, trials: int = 400, seed=0
) -> dict[str, Counterexample]:
    """Probe every *declared-true* flag of ``t``; return found violations.

    Only positive claims are tested (a flag declared ``False`` is a
    non-claim: the function may still happen to satisfy the property).
    An empty dict means all declared flags survived the probe.
    """
    violations: dict[str, Counterexample] = {}
    if t.monotone:
        ce = find_monotonicity_violation(t, m, trials, seed)
        if ce:
            violations["monotone"] = ce
    if t.strict:
        ce = find_strictness_violation(t, m, trials, seed)
        if ce:
            violations["strict"] = ce
    if t.strictly_monotone:
        ce = find_strict_monotonicity_violation(t, m, trials, seed)
        if ce:
            violations["strictly_monotone"] = ce
    if t.strictly_monotone_each_argument:
        ce = find_smv_violation(t, m, trials, seed)
        if ce:
            violations["strictly_monotone_each_argument"] = ce
    return violations
