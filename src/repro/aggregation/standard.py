"""Standard aggregation functions from the paper and the surrounding
literature.

The paper's running examples are ``min`` (standard fuzzy conjunction),
``max`` (fuzzy disjunction), ``average``/``sum`` (information retrieval) and
the two-argument ``product`` (the broadcast-scheduling application of Aksoy
and Franklin).  ``median`` appears in Section 8 as an example where the
lower bound ``W`` becomes informative before all fields are known.

Property flags follow the paper's definitions exactly; see
:mod:`repro.aggregation.base`.  Every class also overrides
``aggregate_batch`` with an order-preserving vectorized form that is
bit-for-bit identical to its scalar ``aggregate`` (sums accumulate
column-by-column in argument order rather than via ``math.fsum`` or
pairwise reductions, precisely so that the scalar and batched execution
paths cannot disagree on a single ulp).  This is a deliberate trade:
the sum-family aggregates gave up ``fsum``'s correct rounding (results
may differ from an exactly-rounded sum in the last ulp) in exchange for
the engines' bit-for-bit scalar/columnar equivalence -- one consistent
answer everywhere beats two differently-rounded ones.  Notable
subtleties:

* ``sum`` is *not* strict (``t(1,...,1) = m != 1``), while ``average`` is.
* ``product`` is strict and strictly monotone but *not* strictly monotone in
  each argument on ``[0, 1]`` (a zero coordinate freezes the output).
* ``max`` is the paper's canonical example of a monotone, non-strict
  function for which FA is far from optimal but TA still is instance
  optimal (with ratio ``m``).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from .base import (
    AggregationError,
    AggregationFunction,
    ordered_rowprod,
    ordered_rowsum,
)

__all__ = [
    "Min",
    "Max",
    "Sum",
    "Average",
    "WeightedSum",
    "Product",
    "GeometricMean",
    "HarmonicMean",
    "Median",
    "KthLargest",
    "Constant",
    "MIN",
    "MAX",
    "SUM",
    "AVERAGE",
    "PRODUCT",
    "MEDIAN",
]


class Min(AggregationFunction):
    """``t = min(x1, ..., xm)`` -- the standard fuzzy conjunction.

    Strict and strictly monotone, but not strictly monotone in each
    argument (raising a non-minimal coordinate changes nothing).
    """

    name = "min"
    strict = True
    strictly_monotone = True

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return min(grades)

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        return np.min(rows, axis=1)


class Max(AggregationFunction):
    """``t = max(x1, ..., xm)`` -- the standard fuzzy disjunction.

    Monotone and strictly monotone but *not* strict: ``max = 1`` as soon as
    a single coordinate is 1.  Section 3 notes that for ``max`` there is a
    trivial algorithm using at most ``m*k`` sorted accesses
    (:class:`repro.core.max_algorithm.MaxAlgorithm`), so FA's
    high-probability optimality fails; TA remains instance optimal with
    ratio ``m`` (footnote 9).
    """

    name = "max"
    strict = False
    strictly_monotone = True

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return max(grades)

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        return np.max(rows, axis=1)


class Sum(AggregationFunction):
    """``t = x1 + ... + xm`` -- the information-retrieval total score.

    Strictly monotone in each argument.  Not strict because the overall
    grade leaves ``[0, 1]`` (the paper explicitly allows this for sum).
    """

    name = "sum"
    strictly_monotone = True
    strictly_monotone_each_argument = True

    def aggregate(self, grades: tuple[float, ...]) -> float:
        # plain left-to-right summation, the bitwise twin of the
        # column-ordered batched form (see module docstring)
        return sum(grades)

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        return ordered_rowsum(rows)


class Average(AggregationFunction):
    """``t = (x1 + ... + xm) / m``.

    Strict, strictly monotone, and strictly monotone in each argument --
    the best-behaved function in the paper's taxonomy.
    """

    name = "average"
    strict = True
    strictly_monotone = True
    strictly_monotone_each_argument = True

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return sum(grades) / len(grades)

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        return ordered_rowsum(rows) / rows.shape[1]


class WeightedSum(AggregationFunction):
    """``t = sum(w_i * x_i)`` with fixed positive weights.

    ``normalize=True`` scales the weights to sum to 1, which makes the
    function strict (a convex combination equals 1 only at the all-ones
    vector when every weight is positive).
    """

    def __init__(self, weights: Sequence[float], normalize: bool = False):
        weights = tuple(float(w) for w in weights)
        if not weights:
            raise AggregationError("WeightedSum requires at least one weight")
        if any(w <= 0 for w in weights):
            raise AggregationError(
                "WeightedSum weights must be strictly positive to preserve "
                f"strict monotonicity; got {weights}"
            )
        if normalize:
            total = math.fsum(weights)
            weights = tuple(w / total for w in weights)
        self._weights = weights
        self.arity = len(weights)
        self.name = f"weighted-sum{list(round(w, 4) for w in weights)}"
        self.strictly_monotone = True
        self.strictly_monotone_each_argument = True
        # judged with the same summation aggregate() uses, so the flag
        # matches the evaluated function exactly (strict <=> t(1..1) == 1)
        self.strict = self.aggregate((1.0,) * len(weights)) == 1.0

    @property
    def weights(self) -> tuple[float, ...]:
        return self._weights

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return sum(w * g for w, g in zip(self._weights, grades))

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        acc = rows[:, 0] * self._weights[0]
        for j in range(1, rows.shape[1]):
            acc += rows[:, j] * self._weights[j]
        return acc

    def heuristic_weight(self, index: int, m: int) -> float:
        return self._weights[index]


class Product(AggregationFunction):
    """``t = x1 * ... * xm`` -- the algebraic t-norm.

    Used by Aksoy and Franklin's broadcast scheduler with ``m = 2``.
    Strict and strictly monotone; not SMV on ``[0, 1]`` because a zero
    coordinate absorbs the product.
    """

    name = "product"
    strict = True
    strictly_monotone = True

    def aggregate(self, grades: tuple[float, ...]) -> float:
        result = 1.0
        for g in grades:
            result *= g
        return result

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        return ordered_rowprod(rows)


class GeometricMean(AggregationFunction):
    """``t = (x1 * ... * xm) ** (1/m)``.

    Same property profile as :class:`Product` (monotone transform of it).
    """

    name = "geometric-mean"
    strict = True
    strictly_monotone = True

    def aggregate(self, grades: tuple[float, ...]) -> float:
        product = 1.0
        for g in grades:
            product *= g
        return product ** (1.0 / len(grades))

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        exponent = 1.0 / rows.shape[1]
        # numpy's vectorized power is not bit-identical to CPython's
        # float.__pow__, so the root is taken per element
        return np.array(
            [p ** exponent for p in ordered_rowprod(rows).tolist()],
            dtype=np.float64,
        )


class HarmonicMean(AggregationFunction):
    """``t = m / (1/x1 + ... + 1/xm)``, defined as 0 if any ``xi = 0``."""

    name = "harmonic-mean"
    strict = True
    strictly_monotone = True

    def aggregate(self, grades: tuple[float, ...]) -> float:
        if any(g == 0.0 for g in grades):
            return 0.0
        return len(grades) / sum(1.0 / g for g in grades)

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore"):
            acc = 1.0 / rows[:, 0]
            for j in range(1, rows.shape[1]):
                acc += 1.0 / rows[:, j]
            out = rows.shape[1] / acc
        out[(rows == 0.0).any(axis=1)] = 0.0
        return out


class Median(AggregationFunction):
    """The median grade (average of the two middle grades for even ``m``).

    Section 8 uses the 3-ary median as the example where ``W(R)`` becomes
    informative once two fields are known.  Monotone and strictly monotone,
    not strict (``median(1, 1, 0) = 1``).
    """

    name = "median"
    strictly_monotone = True

    def aggregate(self, grades: tuple[float, ...]) -> float:
        ordered = sorted(grades)
        mid, odd = divmod(len(ordered), 2)
        if odd:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        ordered = np.sort(rows, axis=1)
        mid, odd = divmod(rows.shape[1], 2)
        if odd:
            return ordered[:, mid].copy()
        return (ordered[:, mid - 1] + ordered[:, mid]) / 2.0


class KthLargest(AggregationFunction):
    """The ``j``-th largest grade (``j = 1`` is max, ``j = m`` is min).

    A quantile-style monotone rule; strictly monotone for every ``j``.
    """

    def __init__(self, j: int):
        if j < 1:
            raise AggregationError(f"KthLargest needs j >= 1, got {j}")
        self._j = j
        self.name = f"{j}-th-largest"
        self.strictly_monotone = True

    @property
    def j(self) -> int:
        return self._j

    def check_arity(self, m: int) -> None:
        super().check_arity(m)
        if m < self._j:
            raise AggregationError(
                f"{self.name} is undefined for m={m} < j={self._j}"
            )

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return sorted(grades, reverse=True)[self._j - 1]

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        return np.sort(rows, axis=1)[:, rows.shape[1] - self._j].copy()


class Constant(AggregationFunction):
    """``t = c`` regardless of the grades.

    Degenerate but monotone; Section 3 uses it to show FA is not optimal
    for every monotone function (any ``k`` objects are a correct answer,
    with O(1) cost).
    """

    def __init__(self, value: float = 1.0):
        self._value = float(value)
        self.name = f"constant({self._value})"

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return self._value

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        return np.full(rows.shape[0], self._value, dtype=np.float64)


#: Shared stateless instances for the common cases.
MIN = Min()
MAX = Max()
SUM = Sum()
AVERAGE = Average()
PRODUCT = Product()
MEDIAN = Median()
