"""Aggregation functions built specifically for the paper's theorems and
counterexamples, plus generic combinators.

* :class:`MinOfSumFirstTwo` is the "unusual" function of Theorem 9.2,
  ``t(x1, ..., xm) = min(x1 + x2, x3, ..., xm)``, chosen there because it is
  strictly monotone yet no deterministic algorithm can beat an optimality
  ratio of ``(m-2)/2 * cR/cS`` on distinct-grade databases.
* :class:`Example73Aggregation` is the three-argument function of
  Example 7.3, ``t(x, y, z) = min(x, y)`` if ``z = 1`` else
  ``min(x, y, z) / 2`` -- strictly monotone *and* strict, used to show that
  TAZ is not instance optimal under the distinctness property.
* :class:`MinOfFirstTwo` is footnote 18's ``t(x1, ..., xm) = min(x1, x2)``
  with ``m >= 3``, for which TA is not *tightly* instance optimal.
* :class:`Transformed` composes an aggregation function with a monotone
  outer transform, a generic way to build new monotone rules.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .base import AggregationError, AggregationFunction

__all__ = [
    "MinOfSumFirstTwo",
    "Example73Aggregation",
    "MinOfFirstTwo",
    "Transformed",
]


class MinOfSumFirstTwo(AggregationFunction):
    """``t(x1, ..., xm) = min(x1 + x2, x3, ..., xm)`` (Theorem 9.2).

    Strictly monotone (every coordinate raise strictly raises both the sum
    and the other terms) but neither strict (``t = 1`` at e.g.
    ``(0.5, 0.5, 1, ..., 1)``) nor SMV (the min freezes non-active
    coordinates).  Requires ``m >= 3``.
    """

    name = "min(x1+x2, x3..xm)"
    strictly_monotone = True

    def check_arity(self, m: int) -> None:
        super().check_arity(m)
        if m < 3:
            raise AggregationError(f"{self.name} requires m >= 3, got {m}")

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return min(grades[0] + grades[1], *grades[2:])

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        acc = rows[:, 0] + rows[:, 1]
        for j in range(2, rows.shape[1]):
            acc = np.minimum(acc, rows[:, j])
        return acc


class Example73Aggregation(AggregationFunction):
    """The 3-ary function of Example 7.3.

    ``t(x, y, z) = min(x, y)`` when ``z = 1`` and ``min(x, y, z) / 2``
    otherwise.  The paper verifies it is both strictly monotone and strict;
    the discontinuity at ``z = 1`` is what makes the TA threshold "too
    conservative" for TAZ when list 3 cannot be sorted-accessed.
    """

    name = "example-7.3"
    arity = 3
    strict = True
    strictly_monotone = True

    def aggregate(self, grades: tuple[float, ...]) -> float:
        x, y, z = grades
        if z == 1.0:
            return min(x, y)
        return min(x, y, z) / 2.0

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        x, y, z = rows[:, 0], rows[:, 1], rows[:, 2]
        min_xy = np.minimum(x, y)
        return np.where(z == 1.0, min_xy, np.minimum(min_xy, z) / 2.0)


class MinOfFirstTwo(AggregationFunction):
    """``t(x1, ..., xm) = min(x1, x2)`` ignoring the remaining arguments
    (footnote 18).

    Monotone and strictly monotone, not strict for ``m >= 3`` (the ignored
    coordinates may be anything).  TA is instance optimal for it but not
    *tightly* so when ``m >= 3``.
    """

    name = "min(x1,x2)"

    def __init__(self, m: int = 3):
        if m < 2:
            raise AggregationError(f"MinOfFirstTwo requires m >= 2, got {m}")
        self.arity = m
        self.strict = m == 2
        self.strictly_monotone = True

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return min(grades[0], grades[1])

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        return np.minimum(rows[:, 0], rows[:, 1])


class Transformed(AggregationFunction):
    """``f(t(x))`` for a monotone non-decreasing outer transform ``f``.

    Monotonicity of the composition follows from monotonicity of both
    parts.  Strictness-style flags must be supplied by the caller because
    they depend on ``f`` (e.g. a constant ``f`` destroys everything, while
    a strictly increasing ``f`` with ``f(1) = 1`` preserves all flags).
    """

    def __init__(
        self,
        inner: AggregationFunction,
        transform: Callable[[float], float],
        name: str | None = None,
        strict: bool = False,
        strictly_monotone: bool = False,
        strictly_monotone_each_argument: bool = False,
    ):
        self._inner = inner
        self._transform = transform
        self.arity = inner.arity
        self.name = name or f"f({inner.name})"
        self.strict = strict
        self.strictly_monotone = (
            strictly_monotone or strictly_monotone_each_argument
        )
        self.strictly_monotone_each_argument = strictly_monotone_each_argument

    def check_arity(self, m: int) -> None:
        self._inner.check_arity(m)

    def aggregate(self, grades: tuple[float, ...]) -> float:
        return self._transform(self._inner.aggregate(grades))

    def aggregate_batch(self, rows: np.ndarray) -> np.ndarray:
        inner = self._inner.aggregate_batch(rows)
        # the outer transform is an arbitrary Python callable: apply it
        # per element so batched results match the scalar path exactly
        return np.array(
            [self._transform(v) for v in inner.tolist()], dtype=np.float64
        )

    def heuristic_weight(self, index: int, m: int) -> float:
        return self._inner.heuristic_weight(index, m)
