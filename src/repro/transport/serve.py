"""CLI entry point: serve a persisted database over the wire protocol.

This is what the subprocess harness (and a human wanting a standalone
source server) runs::

    PYTHONPATH=src python -m repro.transport.serve --npz db.npz --port 0

The child loads the ``.npz`` (tie order intact -- the order arrays are
persisted), builds one simulated service per list (plus the per-shard
run grid when the file carries a shard layout or ``--num-shards`` is
given), binds, prints one readiness line::

    LISTENING <host> <port>

to stdout (flushed), and serves until killed.  ``--latency`` /
``--jitter`` attach a seeded server-side latency model, which is how
the transport benchmark emulates per-call service time on real
sockets.

Shutdown is graceful on SIGTERM: the listener closes, in-flight
requests get up to ``--drain-timeout`` seconds to finish and flush
their responses, then the process exits 0.  SIGKILL (the chaos
harness's weapon) is, of course, not graceful.  ``--max-concurrent``
caps in-flight requests server-wide (connections stop reading frames
at the cap -- TCP backpressure instead of unbounded buffering).
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from pathlib import Path

from ..middleware.serialization import load_npz
from ..services.simulated import LatencyModel
from .server import GradedSourceServer

__all__ = ["main"]


def build_server(args: argparse.Namespace) -> GradedSourceServer:
    db = load_npz(Path(args.npz), num_shards=args.num_shards)
    latency = None
    if args.latency or args.jitter:
        latency = LatencyModel(
            base=args.latency, jitter=args.jitter, seed=args.latency_seed
        )
    return GradedSourceServer.from_database(
        db,
        include_runs=not args.no_runs,
        latency=latency,
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
    )


async def _serve(args: argparse.Namespace) -> None:
    server = build_server(args)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    loop.add_signal_handler(signal.SIGTERM, stop.set)
    host, port = server.address
    print(f"LISTENING {host} {port}", flush=True)
    try:
        await stop.wait()
        # graceful: drain in-flight requests (bounded), then close
        await server.drain(args.drain_timeout)
    finally:
        await server.aclose()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--npz", required=True, help="database written by save_npz"
    )
    parser.add_argument(
        "--num-shards",
        type=int,
        default=None,
        help="re-shard the database before serving its run grid",
    )
    parser.add_argument(
        "--no-runs",
        action="store_true",
        help="do not export the per-shard run grid of a sharded database",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    parser.add_argument(
        "--latency",
        type=float,
        default=0.0,
        help="server-side per-call latency base, seconds",
    )
    parser.add_argument(
        "--jitter",
        type=float,
        default=0.0,
        help="server-side per-call latency jitter, seconds",
    )
    parser.add_argument("--latency-seed", type=int, default=0)
    parser.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        help="server-wide cap on in-flight requests (backpressure)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="seconds SIGTERM waits for in-flight requests to drain",
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
