"""The wire-protocol client: remote graded sources over real sockets.

:class:`NetworkGradedSource` implements the
:class:`~repro.services.protocol.RemoteGradedSource` protocol against
a :class:`~repro.transport.server.GradedSourceServer`, so everything
built on that protocol -- :class:`~repro.services.session.AsyncAccessSession`,
:func:`~repro.services.assemble.assemble_remote_database`,
:func:`~repro.services.assemble.drain_columns` -- runs across a real
process boundary *unmodified*.  :class:`NetworkRunSource` mirrors
:class:`~repro.services.simulated.ShardRunService` the same way for
:func:`~repro.services.assemble.fetch_merged_orders`.

Connections
-----------

All sources created from one :class:`TransportClient` share its
connection pool.  Connections are **multiplexed**: each request frame
carries an id, a background reader task routes response frames to the
matching waiter, so any number of concurrent requests (the session's
``m`` prefetch streams, a ``S x m`` shard drain) share ``pool_size``
sockets.  Because asyncio connections are bound to the loop that
created them, the pool is kept *per running loop* -- the same client
works from ``asyncio.run`` drains and from the session's private
background loop, opening fresh sockets for each.

Failure mapping
---------------

Two failure planes, deliberately distinct:

* **server-reported** failures (the serving source's latency/failure
  models, unknown objects) arrive as error frames and re-raise as the
  exact :mod:`repro.middleware.errors` type the in-process path would
  raise.  The server-side service already spent its own retry budget;
  the client never re-retries these, so scripted failure tests count
  identical service calls over the wire.
* **connection-level** failures (refusal, reset, EOF mid-frame,
  deadline) are mapped by
  :func:`~repro.middleware.errors.connection_error_to_service_error`
  and retried under the client's
  :class:`~repro.services.simulated.RetryPolicy` -- every request is a
  stateless read, so a retry on a fresh connection is always safe.
  Exhaustion (or refusal, the permanent verdict) raises the mapped
  error, *before* anything is charged: the session's served-prefix
  charging survives a server dying mid-stream.

A corrupt or oversized frame raises
:class:`~repro.middleware.errors.WireFormatError` and is never
retried: protocol violations are bugs, not weather.
"""

from __future__ import annotations

import asyncio
import weakref
from collections.abc import AsyncIterator, Sequence
from typing import Hashable

import numpy as np

from ..middleware.access import ListCapabilities
from ..obs.metrics import NULL_INSTRUMENT
from ..middleware.errors import (
    RemoteServiceError,
    ServiceTimeoutError,
    ServiceTransientError,
    ServiceUnavailableError,
    UnknownObjectError,
    WireFormatError,
    connection_error_to_service_error,
)
from ..middleware.serialization import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    decode_message,
    decompress_frame_payload,
    encode_frame,
    frame_header_info,
)
from ..services.protocol import SortedPage
from ..services.simulated import RetryPolicy

__all__ = ["TransportClient", "NetworkGradedSource", "NetworkRunSource"]


class _Connection:
    """One multiplexed connection: a send lock, a pending-future table,
    and a reader task routing response frames by request id."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int,
        m_bytes_out=NULL_INSTRUMENT,
        m_bytes_in=NULL_INSTRUMENT,
        compress_threshold: int | None = None,
    ):
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._compress_threshold = compress_threshold
        self._m_bytes_out = m_bytes_out
        self._m_bytes_in = m_bytes_in
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._send_lock = asyncio.Lock()
        self.dead: BaseException | None = None
        self._reader_task = asyncio.create_task(self._read_loop())

    @property
    def alive(self) -> bool:
        return self.dead is None

    async def request(self, message: dict) -> dict:
        if self.dead is not None:
            raise self.dead
        rid = self._next_id
        self._next_id += 1
        message["id"] = rid
        frame = encode_frame(
            message,
            self._max_frame,
            compress_threshold=self._compress_threshold,
        )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            async with self._send_lock:
                self._writer.write(frame)
                await self._writer.drain()
            self._m_bytes_out.inc(len(frame))
            return await future
        finally:
            self._pending.pop(rid, None)

    async def _read_loop(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(FRAME_HEADER_BYTES)
                size, compressed = frame_header_info(
                    header, self._max_frame
                )
                payload = await self._reader.readexactly(size)
                self._m_bytes_in.inc(FRAME_HEADER_BYTES + size)
                if compressed:
                    payload = decompress_frame_payload(
                        payload, self._max_frame
                    )
                message = decode_message(payload)
                if not isinstance(message, dict):
                    raise WireFormatError("response must be a message dict")
                future = self._pending.get(message.get("id"))
                if future is not None and not future.done():
                    future.set_result(message)
                # a response whose waiter timed out/vanished is dropped
        except asyncio.CancelledError:
            self._fail(ConnectionResetError("client shut down"))
            raise
        except BaseException as exc:
            self._fail(exc)

    def _fail(self, exc: BaseException) -> None:
        if self.dead is None:
            self.dead = exc
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()
        self._writer.close()

    def close(self) -> None:
        self._reader_task.cancel()


class _LoopPool:
    """The connections one event loop owns, used round-robin.  Holds
    its loop only weakly so a dead loop's pool can be evicted (and the
    loop itself collected) instead of leaking across ``asyncio.run``
    boundaries."""

    __slots__ = ("loop_ref", "connections", "cursor")

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self.loop_ref = weakref.ref(loop)
        self.connections: list[_Connection] = []
        self.cursor = 0

    @property
    def dead(self) -> bool:
        loop = self.loop_ref()
        return loop is None or loop.is_closed()


class TransportClient:
    """Pooled, multiplexed access to one wire-protocol server.

    Parameters
    ----------
    host, port:
        The server's bound address (``GradedSourceServer.address``).
    retry:
        Budget for *connection-level* failures (see the module
        docstring); defaults to 3 attempts, no backoff.
    request_timeout:
        Client-side deadline per request attempt, mapped to
        :class:`~repro.middleware.errors.ServiceTimeoutError`.
    connect_timeout:
        Deadline for establishing one connection.
    pool_size:
        Sockets per event loop; 1 (multiplexed) is plenty for the
        in-tree workloads.
    compress_threshold:
        Opt in to zlib frame compression: requests at least this many
        payload bytes travel compressed (when that helps), and the
        server -- seeing a compressed frame -- compresses its large
        responses on the same connection.  ``None`` (default) keeps
        every frame raw; servers always accept either form.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        retry: RetryPolicy | None = None,
        request_timeout: float = 30.0,
        connect_timeout: float = 5.0,
        pool_size: int = 1,
        max_frame: int = MAX_FRAME_BYTES,
        compress_threshold: int | None = None,
        obs=None,
    ):
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if compress_threshold is not None and compress_threshold < 0:
            raise ValueError(
                "compress_threshold must be >= 0 or None, got "
                f"{compress_threshold}"
            )
        self.host = host
        self.port = port
        self._retry = retry or RetryPolicy()
        self._request_timeout = request_timeout
        self._connect_timeout = connect_timeout
        self._pool_size = pool_size
        self._max_frame = max_frame
        self._compress_threshold = compress_threshold
        self._pools: dict[int, _LoopPool] = {}
        self._retry_rng = self._retry.sampler()
        if obs is None:
            self._m_requests = self._m_retries = NULL_INSTRUMENT
            self._m_bytes_out = self._m_bytes_in = NULL_INSTRUMENT
        else:
            self._m_requests = obs.counter(
                "repro_client_requests_total",
                help="wire requests issued (attempts counted once)",
            )
            self._m_retries = obs.counter(
                "repro_client_retries_total",
                help="connection-level failures retried",
            )
            self._m_bytes_out = obs.counter(
                "repro_client_bytes_sent_total",
                help="request bytes (headers + payloads)",
            )
            self._m_bytes_in = obs.counter(
                "repro_client_bytes_received_total",
                help="response bytes (headers + payloads)",
            )

    # ------------------------------------------------------------------
    # connection pool (per running loop; see the module docstring)
    # ------------------------------------------------------------------
    async def _connection(self) -> _Connection:
        loop = asyncio.get_running_loop()
        # evict pools whose loops have died (their reader tasks were
        # cancelled at loop teardown, marking the connections dead);
        # this also frees an id(loop) slot for safe reuse
        for key in [k for k, p in self._pools.items() if p.dead]:
            del self._pools[key]
        pool = self._pools.get(id(loop))
        if pool is None:
            pool = self._pools[id(loop)] = _LoopPool(loop)
        pool.connections = [c for c in pool.connections if c.alive]
        if len(pool.connections) < self._pool_size:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                self._connect_timeout,
            )
            pool.connections.append(
                _Connection(
                    reader,
                    writer,
                    self._max_frame,
                    self._m_bytes_out,
                    self._m_bytes_in,
                    self._compress_threshold,
                )
            )
        pool.cursor = (pool.cursor + 1) % len(pool.connections)
        return pool.connections[pool.cursor]

    async def request(self, message: dict, *, service: str = "transport") -> dict:
        """One request/response exchange; retries connection-level
        failures within the retry policy, maps everything onto the
        service error taxonomy, raises server-reported errors as their
        in-process types."""
        attempts = 0
        self._m_requests.inc()
        while True:
            attempts += 1
            try:
                connection = await self._connection()
                response = await asyncio.wait_for(
                    connection.request(dict(message)),
                    self._request_timeout,
                )
                break
            except WireFormatError:
                raise  # protocol corruption is never retried
            except (TimeoutError, EOFError, OSError) as exc:
                mapped = connection_error_to_service_error(
                    service, exc, attempts
                )
                if (
                    isinstance(mapped, ServiceUnavailableError)
                    or attempts >= self._retry.max_attempts
                ):
                    raise mapped from exc
                self._m_retries.inc()
                pause = self._retry.delay(attempts, self._retry_rng)
                if pause:
                    await asyncio.sleep(pause)
        if response.get("ok"):
            return response
        raise self._map_server_error(response, service)

    def _map_server_error(self, response: dict, service: str) -> Exception:
        """Turn a server error frame into the exception to raise;
        subclasses serving richer protocols (e.g. the query client)
        extend the code table before falling back here."""
        return _server_error(response, service)

    async def fetch_metadata(self) -> dict:
        """The server's export manifest (``meta`` op)."""
        return await self.request({"op": "meta"})

    # ------------------------------------------------------------------
    # source construction
    # ------------------------------------------------------------------
    async def sources(self) -> "list[NetworkGradedSource]":
        """One :class:`NetworkGradedSource` per exported list."""
        meta = await self.fetch_metadata()
        return [
            NetworkGradedSource(
                self,
                index,
                entry["name"],
                int(entry["n"]),
                bool(entry["sorted"]),
                bool(entry["random"]),
            )
            for index, entry in enumerate(meta["sources"])
        ]

    async def shard_runs(self) -> "list[list[NetworkRunSource]]":
        """The exported ``[list][shard]`` run grid (empty when the
        server exports no runs)."""
        meta = await self.fetch_metadata()
        return [
            [
                NetworkRunSource(
                    self, i, s, f"list-{i}/shard-{s}", int(length)
                )
                for s, length in enumerate(row)
            ]
            for i, row in enumerate(meta["runs"])
        ]

    def close(self) -> None:
        """Close every pooled connection (best effort; idempotent).
        Connections owned by an already-dead loop were torn down with
        it."""
        for pool in self._pools.values():
            for connection in pool.connections:
                try:
                    connection.close()
                except RuntimeError:  # pragma: no cover - loop gone
                    pass
            pool.connections = []
        self._pools.clear()

    async def aclose(self) -> None:
        """Like :meth:`close`, but *awaits* the running loop's reader
        tasks so none outlives the loop that owns it -- the clean
        teardown for callers about to let their event loop die."""
        loop = asyncio.get_running_loop()
        pool = self._pools.pop(id(loop), None)
        if pool is not None:
            tasks = [c._reader_task for c in pool.connections]
            for connection in pool.connections:
                connection.close()
            pool.connections = []
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        self.close()

    def __enter__(self) -> "TransportClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TransportClient {self.host}:{self.port}>"


def _server_error(response: dict, service: str) -> Exception:
    code = response.get("error", "internal")
    attempts = int(response.get("attempts", 1))
    if code == "unknown_object":
        return UnknownObjectError(response.get("obj"))
    if code == "timeout":
        return ServiceTimeoutError(service, attempts)
    if code == "transient":
        return ServiceTransientError(service, attempts)
    if code == "unavailable":
        return ServiceUnavailableError(service, attempts)
    return RemoteServiceError(
        service, f"{code}: {response.get('message', '')}", attempts
    )


class NetworkGradedSource:
    """One remote attribute's graded list, reached over the wire.

    Satisfies :class:`~repro.services.protocol.RemoteGradedSource`:
    the sorted stream issues stateless page requests (the client keeps
    the cursor, so a retried page is idempotent) and
    ``random_access_batch`` is one request -- hence one round trip --
    for the whole batch.
    """

    def __init__(
        self,
        client: TransportClient,
        index: int,
        name: str,
        num_entries: int,
        supports_sorted: bool,
        supports_random: bool,
    ):
        self._client = client
        self._index = index
        self.name = name
        self._num_entries = num_entries
        self.supports_sorted = supports_sorted
        self.supports_random = supports_random

    @property
    def num_entries(self) -> int:
        return self._num_entries

    def capabilities(self) -> ListCapabilities:
        return ListCapabilities(
            sorted_allowed=self.supports_sorted,
            random_allowed=self.supports_random,
        )

    async def page(self, start: int, count: int) -> SortedPage:
        """One *stateless* page: entries ``[start, start + count)`` of
        the remote sorted list, one request (the wire twin of
        :meth:`~repro.services.simulated.SimulatedListService.page`).
        Exposed so replicated wrappers can keep the cursor themselves
        and resume at an exact page boundary on another replica."""
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        response = await self._client.request(
            {
                "op": "page",
                "src": self._index,
                "start": start,
                "count": count,
            },
            service=self.name,
        )
        objects = response["objects"]
        grades = response["grades"]
        if not isinstance(objects, list) or not isinstance(
            grades, np.ndarray
        ):
            raise WireFormatError(f"malformed page from {self.name!r}")
        return SortedPage(objects, grades.tolist())

    async def sorted_access_stream(
        self, batch_size: int
    ) -> AsyncIterator[SortedPage]:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        position = 0
        while position < self._num_entries:
            page = await self.page(position, batch_size)
            if not page.objects:
                break
            position += len(page.objects)
            yield page

    async def random_access_batch(
        self, objects: Sequence[Hashable]
    ) -> list[float]:
        response = await self._client.request(
            {"op": "random", "src": self._index, "ids": list(objects)},
            service=self.name,
        )
        grades = response["grades"]
        if not isinstance(grades, np.ndarray) or len(grades) != len(objects):
            raise WireFormatError(
                f"malformed random-access response from {self.name!r}"
            )
        return grades.tolist()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<NetworkGradedSource {self.name!r} n={self._num_entries} "
            f"via {self._client.host}:{self._client.port}>"
        )


class NetworkRunSource:
    """One shard's sorted run of one list, streamed over the wire --
    the network twin of
    :class:`~repro.services.simulated.ShardRunService`, accepted
    anywhere :func:`~repro.services.assemble.fetch_merged_orders`
    takes a run grid."""

    def __init__(
        self,
        client: TransportClient,
        list_index: int,
        shard_index: int,
        name: str,
        num_entries: int,
    ):
        self._client = client
        self._list = list_index
        self._shard = shard_index
        self.name = name
        self._num_entries = num_entries

    @property
    def num_entries(self) -> int:
        return self._num_entries

    async def run_stream(
        self, batch_size: int
    ) -> AsyncIterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        position = 0
        while position < self._num_entries:
            response = await self._client.request(
                {
                    "op": "run_page",
                    "list": self._list,
                    "shard": self._shard,
                    "start": position,
                    "count": batch_size,
                },
                service=self.name,
            )
            rows = response["rows"]
            grades = response["grades"]
            ties = response["ties"]
            if not all(
                isinstance(a, np.ndarray) for a in (rows, grades, ties)
            ) or not (len(rows) == len(grades) == len(ties)):
                raise WireFormatError(
                    f"malformed run page from {self.name!r}"
                )
            if not len(rows):
                break
            position += len(rows)
            yield (
                rows.astype(np.intp, copy=False),
                grades,
                ties.astype(np.int64, copy=False),
            )

    async def fetch_run(
        self, batch_size: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Drain the whole stream into one concatenated run triple."""
        rows_parts, grade_parts, tie_parts = [], [], []
        async for rows, grades, ties in self.run_stream(batch_size):
            rows_parts.append(rows)
            grade_parts.append(grades)
            tie_parts.append(ties)
        if not rows_parts:
            return (
                np.empty(0, dtype=np.intp),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        return (
            np.concatenate(rows_parts),
            np.concatenate(grade_parts),
            np.concatenate(tie_parts),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<NetworkRunSource {self.name!r} n={self._num_entries}>"
