"""The wire-protocol server: graded sources behind a real TCP socket.

:class:`GradedSourceServer` exposes a set of per-attribute services
(and, optionally, a grid of per-shard run services) over the
length-prefixed frame protocol of
:mod:`repro.middleware.serialization`.  One server process plays the
role of the paper's *autonomous subsystems*: clients reach it only
through sorted pages and random-access probes, shipped as real bytes.

The connection/lifecycle chassis (frame loop, per-request tasks,
backpressure, drain, error frames) lives in
:class:`~repro.transport.frames.FrameServer`; this module adds the
source-serving operations (all reads, all idempotent -- the client may
safely retry):

``{"op": "meta"}``
    ``{"sources": [{name, n, sorted, random}, ...], "runs": [[shard
    lengths] per list]}`` -- what the server exports.
``{"op": "page", "src": i, "start": p, "count": c}``
    entries ``[p, p + c)`` of source ``i``'s sorted list:
    ``{"objects": [...], "grades": float64 array}``.  Clients keep
    their own cursors; the server holds no stream state.
``{"op": "random", "src": i, "ids": [...]}``
    ``{"grades": float64 array}``, positionally.
``{"op": "run_page", "list": i, "shard": s, "start": p, "count": c}``
    ``{"rows", "grades", "ties"}`` array slices of that shard run.

Failures raise out of the serving source (latency/failure models run
*server-side*) and travel back as error frames; the client re-raises
the matching :mod:`repro.middleware.errors` type, so failure semantics
are identical to the in-process path.

Lifecycle: ``await start()`` / ``aclose()`` inside an event loop (the
``repro.transport.serve`` CLI), or :meth:`start_in_thread` /
:meth:`close` (context manager) to run the server on a background
thread next to synchronous test or benchmark code.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..middleware.database import Database, ShardedDatabase
from ..middleware.errors import DatabaseError, WireFormatError
from ..middleware.serialization import MAX_FRAME_BYTES
from ..middleware.sources import GradedSource
from ..services.assemble import services_for_database, shard_run_services
from ..services.simulated import (
    FailureModel,
    LatencyModel,
    RetryPolicy,
    ShardRunService,
    SimulatedListService,
)
from .frames import FrameConnection, FrameServer

__all__ = ["GradedSourceServer", "serve_sources"]


def _as_list_service(source) -> SimulatedListService:
    """Adapt one exported source: an already-wrapped service passes
    through, a :class:`GradedSource` is wrapped (keeping its name,
    entry order and capability flags)."""
    if isinstance(source, SimulatedListService):
        return source
    if isinstance(source, GradedSource):
        return SimulatedListService(
            source.name,
            source.entries,
            supports_sorted=source.supports_sorted,
            supports_random=source.supports_random,
        )
    raise DatabaseError(
        f"cannot serve {type(source).__name__}: expected a "
        "SimulatedListService or GradedSource"
    )


class GradedSourceServer(FrameServer):
    """Serve graded sources (and shard runs) over TCP.

    Parameters
    ----------
    sources:
        The per-attribute sorted lists to export, in list order --
        :class:`~repro.services.simulated.SimulatedListService` or
        :class:`~repro.middleware.sources.GradedSource` instances
        (wrapped on the fly).  Latency/failure/retry models attached to
        a service run *inside this server*, which is what makes the
        overlap benchmark honest: concurrent requests overlap their
        service time on the server's event loop exactly as concurrent
        calls to autonomous services would.
    run_grid:
        Optional ``[list][shard]`` grid of
        :class:`~repro.services.simulated.ShardRunService`.
    host, port, max_frame, max_concurrent:
        As for :class:`~repro.transport.frames.FrameServer`.
    """

    thread_name = "repro-transport-server"

    def __init__(
        self,
        sources: Sequence = (),
        run_grid: Sequence[Sequence[ShardRunService]] = (),
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = MAX_FRAME_BYTES,
        max_concurrent: int | None = None,
        obs=None,
    ):
        self._sources = [_as_list_service(s) for s in sources]
        self._run_grid = [list(row) for row in run_grid]
        if not self._sources and not self._run_grid:
            raise DatabaseError("nothing to serve: no sources, no runs")
        super().__init__(
            host=host,
            port=port,
            max_frame=max_frame,
            max_concurrent=max_concurrent,
            obs=obs,
        )

    @classmethod
    def from_database(
        cls,
        db: Database,
        *,
        include_runs: bool = True,
        latency: LatencyModel | Sequence[LatencyModel | None] | None = None,
        failures: FailureModel | Sequence[FailureModel | None] | None = None,
        retry: RetryPolicy | Sequence[RetryPolicy | None] | None = None,
        names: Sequence[str] | None = None,
        **kwargs,
    ) -> "GradedSourceServer":
        """A server exporting every list of ``db`` (exact tie order),
        plus -- for a :class:`~repro.middleware.database.ShardedDatabase`
        with ``include_runs`` -- its per-shard run grid."""
        sources = services_for_database(
            db, latency=latency, failures=failures, retry=retry, names=names
        )
        run_grid: list[list[ShardRunService]] = []
        if include_runs and isinstance(db, ShardedDatabase):
            # the run grid carries the same (possibly per-list) models
            # as the page/random sources: every shard of list i behaves
            # like one piece of list i's service
            run_grid = shard_run_services(
                db, latency=latency, failures=failures, retry=retry
            )
        return cls(sources, run_grid, **kwargs)

    # ------------------------------------------------------------------
    # the operations
    # ------------------------------------------------------------------
    async def _dispatch(self, message, conn: FrameConnection) -> dict:
        if not isinstance(message, dict):
            raise WireFormatError("request must be a message dict")
        op = message.get("op")
        if op == "meta":
            return {
                "sources": [
                    {
                        "name": s.name,
                        "n": s.num_entries,
                        "sorted": s.supports_sorted,
                        "random": s.supports_random,
                    }
                    for s in self._sources
                ],
                "runs": [
                    [run.num_entries for run in row]
                    for row in self._run_grid
                ],
                "compression": "zlib",
            }
        if op == "page":
            source = self._source(message)
            page = await source.page(
                int(message["start"]), int(message["count"])
            )
            return {
                "objects": list(page.objects),
                "grades": np.asarray(page.grades, dtype=np.float64),
            }
        if op == "random":
            source = self._source(message)
            ids = message["ids"]
            if not isinstance(ids, list):
                raise WireFormatError("'ids' must be a list")
            grades = await source.random_access_batch(ids)
            return {"grades": np.asarray(grades, dtype=np.float64)}
        if op == "run_page":
            run = self._run(message)
            rows, grades, ties = await run.run_page(
                int(message["start"]), int(message["count"])
            )
            return {"rows": rows, "grades": grades, "ties": ties}
        if op == "ping":
            return {}
        raise WireFormatError(f"unknown op {op!r}")

    def _source(self, message) -> SimulatedListService:
        index = int(message["src"])
        if not (0 <= index < len(self._sources)):
            raise WireFormatError(
                f"source index {index} out of range "
                f"(serving {len(self._sources)})"
            )
        return self._sources[index]

    def _run(self, message) -> ShardRunService:
        i = int(message["list"])
        s = int(message["shard"])
        if not (0 <= i < len(self._run_grid)) or not (
            0 <= s < len(self._run_grid[i])
        ):
            raise WireFormatError(f"run ({i}, {s}) out of range")
        return self._run_grid[i][s]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self._address or (self._host, self._requested_port)
        return (
            f"<GradedSourceServer {where[0]}:{where[1]} "
            f"m={len(self._sources)} runs={len(self._run_grid)}>"
        )


def serve_sources(
    what,
    *,
    num_shards: int | None = None,
    include_runs: bool = True,
    latency: LatencyModel | Sequence[LatencyModel | None] | None = None,
    failures: FailureModel | Sequence[FailureModel | None] | None = None,
    retry: RetryPolicy | Sequence[RetryPolicy | None] | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    max_frame: int = MAX_FRAME_BYTES,
    max_concurrent: int | None = None,
    obs=None,
) -> GradedSourceServer:
    """Serve ``what`` -- a :class:`~repro.middleware.database.Database`
    or a sequence of sources/services -- on a background thread.

    Returns the running :class:`GradedSourceServer` (a context
    manager); connect with
    :func:`repro.services.network_services(server.address)
    <repro.services.network.network_services>`.  A
    :class:`~repro.middleware.database.ShardedDatabase` additionally
    exports its per-shard run grid (``include_runs``); ``num_shards``
    re-shards a flat database first.
    """
    if isinstance(what, Database):
        if num_shards is not None:
            what = what.to_sharded(num_shards)
        server = GradedSourceServer.from_database(
            what,
            include_runs=include_runs,
            latency=latency,
            failures=failures,
            retry=retry,
            host=host,
            port=port,
            max_frame=max_frame,
            max_concurrent=max_concurrent,
            obs=obs,
        )
    else:
        if num_shards is not None:
            raise DatabaseError(
                "num_shards only applies when serving a Database"
            )
        sources = list(what)
        adapted: list[SimulatedListService] = []
        for src, lat, fail, ret in zip(
            sources,
            _broadcast(latency, len(sources)),
            _broadcast(failures, len(sources)),
            _broadcast(retry, len(sources)),
        ):
            has_models = (
                lat is not None or fail is not None or ret is not None
            )
            if isinstance(src, GradedSource):
                adapted.append(
                    SimulatedListService(
                        src.name,
                        src.entries,
                        supports_sorted=src.supports_sorted,
                        supports_random=src.supports_random,
                        latency=lat,
                        failures=fail,
                        retry=ret,
                    )
                )
            elif has_models:
                raise DatabaseError(
                    "latency/failures/retry models must be attached when "
                    f"constructing {type(src).__name__}, not in "
                    "serve_sources"
                )
            else:
                adapted.append(_as_list_service(src))
        server = GradedSourceServer(
            adapted,
            host=host,
            port=port,
            max_frame=max_frame,
            max_concurrent=max_concurrent,
            obs=obs,
        )
    return server.start_in_thread()


def _broadcast(value, m: int) -> list:
    if value is None or not isinstance(value, (list, tuple)):
        return [value] * m
    if len(value) != m:
        raise DatabaseError(f"got {len(value)} entries for m={m} sources")
    return list(value)
