"""The wire-protocol server: graded sources behind a real TCP socket.

:class:`GradedSourceServer` exposes a set of per-attribute services
(and, optionally, a grid of per-shard run services) over the
length-prefixed frame protocol of
:mod:`repro.middleware.serialization`.  One server process plays the
role of the paper's *autonomous subsystems*: clients reach it only
through sorted pages and random-access probes, shipped as real bytes.

Protocol
--------

Every request and response is one frame (4-byte little-endian payload
length + one tagged binary message, a ``dict``).  Requests carry a
client-chosen ``id``; responses echo it, which is what makes the
connection *multiplexed*: the server dispatches every request into its
own asyncio task the moment the frame is read, so slow requests
(e.g. a page from a high-latency source) never block fast ones on the
same connection, and responses are written strictly one frame at a
time under a per-connection lock.

Operations (all reads, all idempotent -- the client may safely retry):

``{"op": "meta"}``
    ``{"sources": [{name, n, sorted, random}, ...], "runs": [[shard
    lengths] per list]}`` -- what the server exports.
``{"op": "page", "src": i, "start": p, "count": c}``
    entries ``[p, p + c)`` of source ``i``'s sorted list:
    ``{"objects": [...], "grades": float64 array}``.  Clients keep
    their own cursors; the server holds no stream state.
``{"op": "random", "src": i, "ids": [...]}``
    ``{"grades": float64 array}``, positionally.
``{"op": "run_page", "list": i, "shard": s, "start": p, "count": c}``
    ``{"rows", "grades", "ties"}`` array slices of that shard run.

Failures raise out of the serving source (latency/failure models run
*server-side*) and travel back as ``{"ok": False, "error": code,
"message": str, "attempts": n}`` frames; the client re-raises the
matching :mod:`repro.middleware.errors` type, so failure semantics are
identical to the in-process path.  A malformed frame is a protocol
violation, not a service failure: the connection is closed.

Lifecycle: ``await start()`` / ``aclose()`` inside an event loop (the
``repro.transport.serve`` CLI), or :meth:`start_in_thread` /
:meth:`close` (context manager) to run the server on a background
thread next to synchronous test or benchmark code.
"""

from __future__ import annotations

import asyncio
import threading
from collections.abc import Sequence

import numpy as np

from ..middleware.database import Database, ShardedDatabase
from ..middleware.errors import (
    DatabaseError,
    RemoteServiceError,
    ServiceTimeoutError,
    ServiceTransientError,
    ServiceUnavailableError,
    UnknownObjectError,
    WireFormatError,
)
from ..middleware.serialization import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    decode_message,
    encode_frame,
    frame_payload_size,
)
from ..middleware.sources import GradedSource
from ..services.assemble import services_for_database, shard_run_services
from ..services.simulated import (
    FailureModel,
    LatencyModel,
    RetryPolicy,
    ShardRunService,
    SimulatedListService,
)

__all__ = ["GradedSourceServer", "serve_sources"]


def _as_list_service(source) -> SimulatedListService:
    """Adapt one exported source: an already-wrapped service passes
    through, a :class:`GradedSource` is wrapped (keeping its name,
    entry order and capability flags)."""
    if isinstance(source, SimulatedListService):
        return source
    if isinstance(source, GradedSource):
        return SimulatedListService(
            source.name,
            source.entries,
            supports_sorted=source.supports_sorted,
            supports_random=source.supports_random,
        )
    raise DatabaseError(
        f"cannot serve {type(source).__name__}: expected a "
        "SimulatedListService or GradedSource"
    )


class GradedSourceServer:
    """Serve graded sources (and shard runs) over TCP.

    Parameters
    ----------
    sources:
        The per-attribute sorted lists to export, in list order --
        :class:`~repro.services.simulated.SimulatedListService` or
        :class:`~repro.middleware.sources.GradedSource` instances
        (wrapped on the fly).  Latency/failure/retry models attached to
        a service run *inside this server*, which is what makes the
        overlap benchmark honest: concurrent requests overlap their
        service time on the server's event loop exactly as concurrent
        calls to autonomous services would.
    run_grid:
        Optional ``[list][shard]`` grid of
        :class:`~repro.services.simulated.ShardRunService`.
    host, port:
        Bind address; port 0 (the default) picks a free port, exposed
        as :attr:`address` after start.
    max_frame:
        Frame size limit for both directions.
    max_concurrent:
        Server-wide cap on in-flight requests.  When reached, every
        connection stops *reading* frames until a slot frees up, so a
        flood of requests backs up in the kernel's TCP buffers (and
        eventually blocks the sender) instead of ballooning server
        memory with decoded-but-unserved requests.  ``None`` (default)
        disables the cap.
    """

    def __init__(
        self,
        sources: Sequence = (),
        run_grid: Sequence[Sequence[ShardRunService]] = (),
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = MAX_FRAME_BYTES,
        max_concurrent: int | None = None,
    ):
        self._sources = [_as_list_service(s) for s in sources]
        self._run_grid = [list(row) for row in run_grid]
        if not self._sources and not self._run_grid:
            raise DatabaseError("nothing to serve: no sources, no runs")
        if max_concurrent is not None and max_concurrent < 1:
            raise DatabaseError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        self._host = host
        self._requested_port = port
        self._max_frame = max_frame
        self._max_concurrent = max_concurrent
        self._server: asyncio.Server | None = None
        self._address: tuple[str, int] | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._slot_free: asyncio.Event | None = None
        #: high-water mark of concurrently served requests
        self.peak_inflight = 0
        # background-thread mode
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._closed = False

    @classmethod
    def from_database(
        cls,
        db: Database,
        *,
        include_runs: bool = True,
        latency: LatencyModel | Sequence[LatencyModel | None] | None = None,
        failures: FailureModel | Sequence[FailureModel | None] | None = None,
        retry: RetryPolicy | Sequence[RetryPolicy | None] | None = None,
        names: Sequence[str] | None = None,
        **kwargs,
    ) -> "GradedSourceServer":
        """A server exporting every list of ``db`` (exact tie order),
        plus -- for a :class:`~repro.middleware.database.ShardedDatabase`
        with ``include_runs`` -- its per-shard run grid."""
        sources = services_for_database(
            db, latency=latency, failures=failures, retry=retry, names=names
        )
        run_grid: list[list[ShardRunService]] = []
        if include_runs and isinstance(db, ShardedDatabase):
            # the run grid carries the same (possibly per-list) models
            # as the page/random sources: every shard of list i behaves
            # like one piece of list i's service
            run_grid = shard_run_services(
                db, latency=latency, failures=failures, retry=retry
            )
        return cls(sources, run_grid, **kwargs)

    # ------------------------------------------------------------------
    # async lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._slot_free = asyncio.Event()
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._requested_port
        )
        sock = self._server.sockets[0]
        self._address = sock.getsockname()[:2]

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (valid after start)."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def drain(self, timeout: float = 5.0) -> bool:
        """Graceful shutdown, phase one: stop accepting connections,
        then wait (bounded by ``timeout`` seconds) for every in-flight
        request to finish and flush its response.  Returns ``True``
        when the server drained cleanly, ``False`` when the timeout
        expired with requests still running (the caller's
        :meth:`aclose` will then cut them off).  Open connections are
        left open so drained responses still reach their clients."""
        if self._server is not None:
            self._server.close()
        event = self._slot_free
        if event is None:
            return True
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while self._inflight > 0:
            # no await between the check and the clear, so a decrement
            # cannot slip through unnoticed (single-threaded loop)
            event.clear()
            remaining = deadline - loop.time()
            if remaining <= 0:
                return False
            try:
                await asyncio.wait_for(event.wait(), remaining)
            except asyncio.TimeoutError:
                return False
        return True

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            for writer in list(self._writers):
                writer.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # background-thread lifecycle (for synchronous callers)
    # ------------------------------------------------------------------
    def start_in_thread(self) -> "GradedSourceServer":
        """Run the server on a private event loop on a daemon thread;
        returns ``self`` once the socket is bound."""
        if self._loop is not None:
            raise RuntimeError("server thread already running")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-transport-server",
            daemon=True,
        )
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self.start(), self._loop).result(
            timeout=10.0
        )
        return self

    def close(self) -> None:
        """Stop the background-thread server (idempotent)."""
        if self._closed:
            return
        self._closed = True
        loop, thread = self._loop, self._thread
        if loop is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(self.aclose(), loop).result(
                timeout=5.0
            )
        except Exception:  # pragma: no cover - defensive teardown
            pass
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=5.0)
            if not thread.is_alive():
                loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "GradedSourceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the protocol
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        send_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        event = self._slot_free
        try:
            while True:
                header = await reader.readexactly(FRAME_HEADER_BYTES)
                size = frame_payload_size(header, self._max_frame)
                payload = await reader.readexactly(size)
                message = decode_message(payload)
                if self._max_concurrent is not None and event is not None:
                    # backpressure: at the cap, stop reading further
                    # frames -- this connection holds exactly one decoded
                    # request while the rest of the bytes pile up in
                    # kernel TCP buffers and eventually block the sender,
                    # so a slow consumer cannot balloon this process's
                    # memory.  The gate sits *after* the read so the
                    # check-and-admit below is atomic on the event loop
                    # (no await between the final check and the
                    # increment).
                    while self._inflight >= self._max_concurrent:
                        event.clear()
                        await event.wait()
                self._inflight += 1
                if self._inflight > self.peak_inflight:
                    self.peak_inflight = self._inflight
                # one task per request: responses interleave by
                # completion order, matched to requests by id
                task = asyncio.create_task(
                    self._handle(message, writer, send_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client hung up
        except WireFormatError:
            pass  # protocol violation: drop the connection
        finally:
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._writers.discard(writer)
            writer.close()

    async def _handle(
        self,
        message,
        writer: asyncio.StreamWriter,
        send_lock: asyncio.Lock,
    ) -> None:
        try:
            await self._respond(message, writer, send_lock)
        finally:
            # synchronous, so it runs even when this task is cancelled:
            # wake both backpressured readers and a pending drain()
            self._inflight -= 1
            if self._slot_free is not None:
                self._slot_free.set()

    async def _respond(
        self,
        message,
        writer: asyncio.StreamWriter,
        send_lock: asyncio.Lock,
    ) -> None:
        rid = message.get("id") if isinstance(message, dict) else None
        try:
            response = await self._dispatch(message)
            response["id"] = rid
            response["ok"] = True
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            response = _error_response(rid, exc)
        try:
            frame = encode_frame(response, self._max_frame)
        except WireFormatError as exc:  # oversized/unencodable result
            frame = encode_frame(
                _error_response(rid, exc), self._max_frame
            )
        try:
            async with send_lock:
                writer.write(frame)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass  # client hung up mid-response

    async def _dispatch(self, message) -> dict:
        if not isinstance(message, dict):
            raise WireFormatError("request must be a message dict")
        op = message.get("op")
        if op == "meta":
            return {
                "sources": [
                    {
                        "name": s.name,
                        "n": s.num_entries,
                        "sorted": s.supports_sorted,
                        "random": s.supports_random,
                    }
                    for s in self._sources
                ],
                "runs": [
                    [run.num_entries for run in row]
                    for row in self._run_grid
                ],
            }
        if op == "page":
            source = self._source(message)
            page = await source.page(
                int(message["start"]), int(message["count"])
            )
            return {
                "objects": list(page.objects),
                "grades": np.asarray(page.grades, dtype=np.float64),
            }
        if op == "random":
            source = self._source(message)
            ids = message["ids"]
            if not isinstance(ids, list):
                raise WireFormatError("'ids' must be a list")
            grades = await source.random_access_batch(ids)
            return {"grades": np.asarray(grades, dtype=np.float64)}
        if op == "run_page":
            run = self._run(message)
            rows, grades, ties = await run.run_page(
                int(message["start"]), int(message["count"])
            )
            return {"rows": rows, "grades": grades, "ties": ties}
        if op == "ping":
            return {}
        raise WireFormatError(f"unknown op {op!r}")

    def _source(self, message) -> SimulatedListService:
        index = int(message["src"])
        if not (0 <= index < len(self._sources)):
            raise WireFormatError(
                f"source index {index} out of range "
                f"(serving {len(self._sources)})"
            )
        return self._sources[index]

    def _run(self, message) -> ShardRunService:
        i = int(message["list"])
        s = int(message["shard"])
        if not (0 <= i < len(self._run_grid)) or not (
            0 <= s < len(self._run_grid[i])
        ):
            raise WireFormatError(f"run ({i}, {s}) out of range")
        return self._run_grid[i][s]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self._address or (self._host, self._requested_port)
        return (
            f"<GradedSourceServer {where[0]}:{where[1]} "
            f"m={len(self._sources)} runs={len(self._run_grid)}>"
        )


#: wire error codes, by exception type (checked in order)
_ERROR_CODES = (
    (UnknownObjectError, "unknown_object"),
    (ServiceTimeoutError, "timeout"),
    (ServiceTransientError, "transient"),
    (ServiceUnavailableError, "unavailable"),
    (RemoteServiceError, "remote"),
    (WireFormatError, "bad_request"),
    ((KeyError, TypeError, ValueError, DatabaseError), "bad_request"),
)


def _error_response(rid, exc: BaseException) -> dict:
    code = "internal"
    for types, name in _ERROR_CODES:
        if isinstance(exc, types):
            code = name
            break
    response = {
        "id": rid,
        "ok": False,
        "error": code,
        "message": str(exc),
        "attempts": int(getattr(exc, "attempts", 1)),
    }
    if isinstance(exc, UnknownObjectError):
        obj = exc.obj
        if not isinstance(obj, (int, str, float, bool, type(None))):
            obj = str(obj)
        response["obj"] = obj
    return response


def serve_sources(
    what,
    *,
    num_shards: int | None = None,
    include_runs: bool = True,
    latency: LatencyModel | Sequence[LatencyModel | None] | None = None,
    failures: FailureModel | Sequence[FailureModel | None] | None = None,
    retry: RetryPolicy | Sequence[RetryPolicy | None] | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    max_frame: int = MAX_FRAME_BYTES,
    max_concurrent: int | None = None,
) -> GradedSourceServer:
    """Serve ``what`` -- a :class:`~repro.middleware.database.Database`
    or a sequence of sources/services -- on a background thread.

    Returns the running :class:`GradedSourceServer` (a context
    manager); connect with
    :func:`repro.services.network_services(server.address)
    <repro.services.network.network_services>`.  A
    :class:`~repro.middleware.database.ShardedDatabase` additionally
    exports its per-shard run grid (``include_runs``); ``num_shards``
    re-shards a flat database first.
    """
    if isinstance(what, Database):
        if num_shards is not None:
            what = what.to_sharded(num_shards)
        server = GradedSourceServer.from_database(
            what,
            include_runs=include_runs,
            latency=latency,
            failures=failures,
            retry=retry,
            host=host,
            port=port,
            max_frame=max_frame,
            max_concurrent=max_concurrent,
        )
    else:
        if num_shards is not None:
            raise DatabaseError(
                "num_shards only applies when serving a Database"
            )
        sources = list(what)
        adapted: list[SimulatedListService] = []
        for src, lat, fail, ret in zip(
            sources,
            _broadcast(latency, len(sources)),
            _broadcast(failures, len(sources)),
            _broadcast(retry, len(sources)),
        ):
            has_models = (
                lat is not None or fail is not None or ret is not None
            )
            if isinstance(src, GradedSource):
                adapted.append(
                    SimulatedListService(
                        src.name,
                        src.entries,
                        supports_sorted=src.supports_sorted,
                        supports_random=src.supports_random,
                        latency=lat,
                        failures=fail,
                        retry=ret,
                    )
                )
            elif has_models:
                raise DatabaseError(
                    "latency/failures/retry models must be attached when "
                    f"constructing {type(src).__name__}, not in "
                    "serve_sources"
                )
            else:
                adapted.append(_as_list_service(src))
        server = GradedSourceServer(
            adapted,
            host=host,
            port=port,
            max_frame=max_frame,
            max_concurrent=max_concurrent,
        )
    return server.start_in_thread()


def _broadcast(value, m: int) -> list:
    if value is None or not isinstance(value, (list, tuple)):
        return [value] * m
    if len(value) != m:
        raise DatabaseError(f"got {len(value)} entries for m={m} sources")
    return list(value)
