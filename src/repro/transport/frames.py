"""The reusable frame-server chassis.

:class:`FrameServer` owns everything about serving the length-prefixed
frame protocol of :mod:`repro.middleware.serialization` that is *not*
specific to what is being served: the TCP lifecycle (async and
background-thread modes), per-connection read loops, one-task-per-
request dispatch, the ``max_concurrent`` backpressure gate, graceful
``drain()``, and the error-frame encoding.  Subclasses implement
``_dispatch`` (and may extend the wire error-code table or observe
connection teardown):

* :class:`~repro.transport.server.GradedSourceServer` serves stateless
  source reads (pages, random probes, shard runs);
* :class:`~repro.server.wire.QueryServer` serves whole top-k *queries*
  (submit/result/cancel), where per-connection state matters: a
  client that disconnects abandons its in-flight queries.

Protocol recap: every request and response is one frame (4-byte
little-endian payload length + one tagged binary message, a ``dict``).
Requests carry a client-chosen ``id``; responses echo it, which is
what makes a connection multiplexed -- the server dispatches every
request into its own asyncio task the moment the frame is read, so
slow requests never block fast ones, and responses are written
strictly one frame at a time under a per-connection lock.  Failures
travel back as ``{"ok": False, "error": code, "message": str,
"attempts": n}`` frames; a malformed frame is a protocol violation,
not a service failure: the connection is closed.
"""

from __future__ import annotations

import asyncio
import threading

from ..middleware.errors import (
    DatabaseError,
    RemoteServiceError,
    ServiceTimeoutError,
    ServiceTransientError,
    ServiceUnavailableError,
    UnknownObjectError,
    WireFormatError,
)
from ..middleware.serialization import (
    COMPRESS_THRESHOLD_BYTES,
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    decode_message,
    decompress_frame_payload,
    encode_frame,
    frame_header_info,
)
from ..obs.metrics import NULL_INSTRUMENT

__all__ = ["FrameServer", "FrameConnection", "BASE_ERROR_CODES"]


#: wire error codes, by exception type (checked in order); subclasses
#: prepend their own entries via the ``error_codes`` class attribute
BASE_ERROR_CODES = (
    (UnknownObjectError, "unknown_object"),
    (ServiceTimeoutError, "timeout"),
    (ServiceTransientError, "transient"),
    (ServiceUnavailableError, "unavailable"),
    (RemoteServiceError, "remote"),
    (WireFormatError, "bad_request"),
    ((KeyError, TypeError, ValueError, DatabaseError), "bad_request"),
)


class FrameConnection:
    """One accepted connection: the stream pair, the per-connection
    send lock, and whatever per-connection state a subclass hangs off
    :attr:`state` (e.g. the queries this client owns)."""

    __slots__ = ("reader", "writer", "send_lock", "state")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self.reader = reader
        self.writer = writer
        self.send_lock = asyncio.Lock()
        self.state: dict = {}


class FrameServer:
    """Serve tagged-message frames over TCP; see the module docstring.

    Parameters
    ----------
    host, port:
        Bind address; port 0 (the default) picks a free port, exposed
        as :attr:`address` after start.
    max_frame:
        Frame size limit for both directions.
    max_concurrent:
        Server-wide cap on in-flight requests.  When reached, every
        connection stops *reading* frames until a slot frees up, so a
        flood of requests backs up in the kernel's TCP buffers (and
        eventually blocks the sender) instead of ballooning server
        memory with decoded-but-unserved requests.  ``None`` (default)
        disables the cap.
    """

    #: thread name used by :meth:`start_in_thread`
    thread_name = "repro-frame-server"
    #: (exception types, wire code) pairs checked in order; subclasses
    #: override (typically prepending to ``BASE_ERROR_CODES``)
    error_codes = BASE_ERROR_CODES

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = MAX_FRAME_BYTES,
        max_concurrent: int | None = None,
        obs=None,
    ):
        if max_concurrent is not None and max_concurrent < 1:
            raise DatabaseError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        self._host = host
        self._requested_port = port
        self._max_frame = max_frame
        self._max_concurrent = max_concurrent
        self._server: asyncio.Server | None = None
        self._address: tuple[str, int] | None = None
        self._connections: set[FrameConnection] = set()
        self._inflight = 0
        self._slot_free: asyncio.Event | None = None
        #: high-water mark of concurrently served requests
        self.peak_inflight = 0
        # background-thread mode
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._closed = False
        # wire-level instruments (no-ops without an obs plane)
        if obs is None:
            self._m_frames_in = self._m_frames_out = NULL_INSTRUMENT
            self._m_bytes_in = self._m_bytes_out = NULL_INSTRUMENT
            self._m_connections = self._m_error_frames = NULL_INSTRUMENT
        else:
            self._m_frames_in = obs.counter(
                "repro_server_frames_received_total",
                help="request frames decoded",
            )
            self._m_frames_out = obs.counter(
                "repro_server_frames_sent_total",
                help="response frames written",
            )
            self._m_bytes_in = obs.counter(
                "repro_server_bytes_received_total",
                help="request bytes (headers + payloads)",
            )
            self._m_bytes_out = obs.counter(
                "repro_server_bytes_sent_total",
                help="response bytes (headers + payloads)",
            )
            self._m_connections = obs.gauge(
                "repro_server_connections", help="open connections"
            )
            self._m_error_frames = obs.counter(
                "repro_server_error_frames_total",
                help="responses that carried an error code",
            )

    # ------------------------------------------------------------------
    # async lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("server already started")
        self._slot_free = asyncio.Event()
        await self._starting()
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._requested_port
        )
        sock = self._server.sockets[0]
        self._address = sock.getsockname()[:2]

    async def _starting(self) -> None:
        """Hook: runs on the serving loop just before the socket binds
        (subclasses arm loop-affine machinery here)."""

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (valid after start)."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def drain(self, timeout: float = 5.0) -> bool:
        """Graceful shutdown, phase one: stop accepting connections,
        then wait (bounded by ``timeout`` seconds) for every in-flight
        request to finish and flush its response.  Returns ``True``
        when the server drained cleanly, ``False`` when the timeout
        expired with requests still running (the caller's
        :meth:`aclose` will then cut them off).  Open connections are
        left open so drained responses still reach their clients."""
        if self._server is not None:
            self._server.close()
        event = self._slot_free
        if event is None:
            return True
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while self._inflight > 0:
            # no await between the check and the clear, so a decrement
            # cannot slip through unnoticed (single-threaded loop)
            event.clear()
            remaining = deadline - loop.time()
            if remaining <= 0:
                return False
            try:
                await asyncio.wait_for(event.wait(), remaining)
            except asyncio.TimeoutError:
                return False
        return True

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            for conn in list(self._connections):
                conn.writer.close()
            await self._server.wait_closed()
            self._server = None
        await self._stopping()

    async def _stopping(self) -> None:
        """Hook: runs on the serving loop after the socket closed."""

    # ------------------------------------------------------------------
    # background-thread lifecycle (for synchronous callers)
    # ------------------------------------------------------------------
    def start_in_thread(self) -> "FrameServer":
        """Run the server on a private event loop on a daemon thread;
        returns ``self`` once the socket is bound."""
        if self._loop is not None:
            raise RuntimeError("server thread already running")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name=self.thread_name,
            daemon=True,
        )
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self.start(), self._loop).result(
            timeout=10.0
        )
        return self

    def close(self) -> None:
        """Stop the background-thread server (idempotent)."""
        if self._closed:
            return
        self._closed = True
        loop, thread = self._loop, self._thread
        if loop is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(self.aclose(), loop).result(
                timeout=5.0
            )
        except Exception:  # pragma: no cover - defensive teardown
            pass
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=5.0)
            if not thread.is_alive():
                loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "FrameServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the protocol
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = FrameConnection(reader, writer)
        self._connections.add(conn)
        self._m_connections.set(len(self._connections))
        tasks: set[asyncio.Task] = set()
        event = self._slot_free
        try:
            while True:
                header = await reader.readexactly(FRAME_HEADER_BYTES)
                size, compressed = frame_header_info(header, self._max_frame)
                payload = await reader.readexactly(size)
                if compressed:
                    payload = decompress_frame_payload(
                        payload, self._max_frame
                    )
                    # negotiation by use: a client that sends one
                    # compressed frame understands them, so responses
                    # on this connection may compress from here on
                    conn.state["compress"] = True
                message = decode_message(payload)
                self._m_frames_in.inc()
                self._m_bytes_in.inc(FRAME_HEADER_BYTES + size)
                if self._max_concurrent is not None and event is not None:
                    # backpressure: at the cap, stop reading further
                    # frames -- this connection holds exactly one decoded
                    # request while the rest of the bytes pile up in
                    # kernel TCP buffers and eventually block the sender,
                    # so a slow consumer cannot balloon this process's
                    # memory.  The gate sits *after* the read so the
                    # check-and-admit below is atomic on the event loop
                    # (no await between the final check and the
                    # increment).
                    while self._inflight >= self._max_concurrent:
                        event.clear()
                        await event.wait()
                self._inflight += 1
                if self._inflight > self.peak_inflight:
                    self.peak_inflight = self._inflight
                # one task per request: responses interleave by
                # completion order, matched to requests by id
                task = asyncio.create_task(self._handle(message, conn))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client hung up
        except WireFormatError:
            pass  # protocol violation: drop the connection
        finally:
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._connections.discard(conn)
            self._m_connections.set(len(self._connections))
            try:
                await self._connection_closed(conn)
            finally:
                writer.close()

    async def _connection_closed(self, conn: FrameConnection) -> None:
        """Hook: the client hung up (or the server is closing) and the
        connection's request tasks have been cancelled and drained.
        Subclasses release per-connection resources here."""

    async def _handle(self, message, conn: FrameConnection) -> None:
        try:
            await self._respond(message, conn)
        finally:
            # synchronous, so it runs even when this task is cancelled:
            # wake both backpressured readers and a pending drain()
            self._inflight -= 1
            if self._slot_free is not None:
                self._slot_free.set()

    async def _respond(self, message, conn: FrameConnection) -> None:
        rid = message.get("id") if isinstance(message, dict) else None
        try:
            response = await self._dispatch(message, conn)
            response["id"] = rid
            response["ok"] = True
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            response = self._error_response(rid, exc)
        threshold = (
            COMPRESS_THRESHOLD_BYTES if conn.state.get("compress") else None
        )
        try:
            frame = encode_frame(
                response, self._max_frame, compress_threshold=threshold
            )
        except WireFormatError as exc:  # oversized/unencodable result
            response = self._error_response(rid, exc)
            frame = encode_frame(
                response, self._max_frame, compress_threshold=threshold
            )
        if not response.get("ok"):
            self._m_error_frames.inc()
        try:
            async with conn.send_lock:
                conn.writer.write(frame)
                await conn.writer.drain()
            self._m_frames_out.inc()
            self._m_bytes_out.inc(len(frame))
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass  # client hung up mid-response

    async def _dispatch(self, message, conn: FrameConnection) -> dict:
        """Serve one decoded request message; return the response body
        (``id``/``ok`` are added by the chassis).  Raise to produce an
        error frame."""
        raise NotImplementedError

    def _error_response(self, rid, exc: BaseException) -> dict:
        code = "internal"
        for types, name in self.error_codes:
            if isinstance(exc, types):
                code = name
                break
        response = {
            "id": rid,
            "ok": False,
            "error": code,
            "message": str(exc),
            "attempts": int(getattr(exc, "attempts", 1)),
        }
        if isinstance(exc, UnknownObjectError):
            obj = exc.obj
            if not isinstance(obj, (int, str, float, bool, type(None))):
                obj = str(obj)
            response["obj"] = obj
        return response
