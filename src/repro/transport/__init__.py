"""Real transport: the wire protocol spanning actual processes.

PR 4's :mod:`repro.services` made the middleware a client of
*asynchronous* graded sources, but every source was still an
in-process simulation.  This package is the missing half of the
paper's deployment shape: the ``m`` autonomous subsystems live in
other processes, and every sorted page and random-access probe is
serialized, framed, and shipped over a TCP socket.

* :mod:`repro.transport.server` --
  :class:`GradedSourceServer` / :func:`serve_sources`: an asyncio TCP
  server exporting graded sources (and per-shard run grids) over the
  length-prefixed frame protocol, with per-connection request
  multiplexing.
* :mod:`repro.transport.client` -- :class:`TransportClient` (pooled
  multiplexed connections, connection-failure retry, error-taxonomy
  mapping), :class:`NetworkGradedSource` (a real
  :class:`~repro.services.protocol.RemoteGradedSource`), and
  :class:`NetworkRunSource` (shard runs for
  :func:`~repro.services.assemble.fetch_merged_orders`).
* :mod:`repro.transport.serve` -- the standalone server CLI
  (``python -m repro.transport.serve``).
* :mod:`repro.transport.harness` -- :class:`ServerProcess`, the
  subprocess-spawning test harness.

The wire codecs live in :mod:`repro.middleware.serialization`; the
connect-level factories mirroring ``services_for_database`` /
``shard_run_services`` live in :mod:`repro.services.network`
(:func:`~repro.services.network.network_services`,
:func:`~repro.services.network.network_shard_runs`).

The parity contract (enforced by ``tests/test_transport.py``): a
session, drain or merge whose every source lives behind a real socket
is **bit-identical** -- items, halting, tie order, ``AccessStats`` --
to the same run over in-process simulated services.
"""

from .client import NetworkGradedSource, NetworkRunSource, TransportClient
from .frames import FrameConnection, FrameServer
from .harness import ServerProcess
from .server import GradedSourceServer, serve_sources

__all__ = [
    "FrameServer",
    "FrameConnection",
    "GradedSourceServer",
    "serve_sources",
    "TransportClient",
    "NetworkGradedSource",
    "NetworkRunSource",
    "ServerProcess",
]
