"""Subprocess harness: a wire-protocol server in a *real* child
process.

The differential acceptance tests need every source to live behind an
actual process boundary -- bytes on a socket, no shared memory, no
shared event loop.  :class:`ServerProcess` provides that: it persists
a database to ``.npz`` (tie order intact), spawns
``python -m repro.transport.serve`` on it, waits for the readiness
line, and exposes the bound :attr:`address`.

Cleanup is layered because the async test modules run under a SIGALRM
deadline (see ``tests/conftest.py``): the context-manager exit
terminates the child even when the guard fires mid-test (the
``TimeoutError`` unwinds through ``with`` blocks), a module-level
registry backed by ``atexit`` reaps anything that escaped (e.g. a
test that keeps a handle across the fixture boundary), and
``terminate()`` escalates to ``SIGKILL`` when the child ignores the
polite request.
"""

from __future__ import annotations

import atexit
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from ..middleware.database import Database
from ..middleware.errors import ServiceUnavailableError
from ..middleware.serialization import save_npz

__all__ = ["ServerProcess"]

#: every live harness process, reaped at interpreter exit
_LIVE: set["ServerProcess"] = set()


def _reap_all() -> None:  # pragma: no cover - exit hook
    for harness in list(_LIVE):
        harness.terminate()


atexit.register(_reap_all)


class ServerProcess:
    """Spawn ``python -m repro.transport.serve`` over a database.

    Use as a context manager::

        with ServerProcess(db, num_shards=2) as server:
            sources = network_services(server.address)

    Parameters
    ----------
    database:
        Served lists (and, when sharded or ``num_shards`` is given,
        the per-shard run grid).
    num_shards:
        Re-shard before serving.
    latency, jitter, latency_seed:
        Server-side per-call latency model (seconds).
    startup_timeout:
        Seconds to wait for the child's readiness line before killing
        it and raising
        :class:`~repro.middleware.errors.ServiceUnavailableError`.
    """

    def __init__(
        self,
        database: Database,
        *,
        num_shards: int | None = None,
        latency: float = 0.0,
        jitter: float = 0.0,
        latency_seed: int = 0,
        startup_timeout: float = 30.0,
    ):
        self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-transport-")
        self._npz_path = Path(self._tmpdir.name) / "db.npz"
        save_npz(database, self._npz_path)
        self._num_shards = num_shards
        self._latency = latency
        self._jitter = jitter
        self._latency_seed = latency_seed
        self._startup_timeout = startup_timeout
        self._spawn(port=0, timeout=startup_timeout)

    def _spawn(self, port: int, timeout: float) -> None:
        """Start the child on ``port`` (0 picks one) and wait for its
        readiness line; sets :attr:`process` and :attr:`address`."""
        command = [
            sys.executable,
            "-m",
            "repro.transport.serve",
            "--npz",
            str(self._npz_path),
            "--port",
            str(port),
        ]
        if self._num_shards is not None:
            command += ["--num-shards", str(self._num_shards)]
        if self._latency:
            command += ["--latency", repr(self._latency)]
        if self._jitter:
            command += ["--jitter", repr(self._jitter)]
        if self._latency_seed:
            command += ["--latency-seed", str(self._latency_seed)]
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        _LIVE.add(self)
        self.address = self._await_ready(timeout)

    def _await_ready(self, timeout: float) -> tuple[str, int]:
        """Read stdout lines on a side thread until the readiness line
        (so a wedged child cannot block past the deadline)."""
        ready: list[tuple[str, int]] = []
        event = threading.Event()

        def watch() -> None:
            stream = self.process.stdout
            assert stream is not None
            for line in stream:
                parts = line.split()
                if len(parts) == 3 and parts[0] == "LISTENING":
                    ready.append((parts[1], int(parts[2])))
                    event.set()
                    return
            event.set()  # stream closed without readiness

        thread = threading.Thread(target=watch, daemon=True)
        thread.start()
        deadline = time.monotonic() + timeout
        while not event.wait(timeout=0.1):
            if time.monotonic() > deadline:
                self.terminate()
                raise ServiceUnavailableError(
                    "server-subprocess: no readiness line within "
                    f"{timeout:g}s"
                )
        if not ready:
            stderr = ""
            if self.process.stderr is not None:
                try:
                    stderr = self.process.stderr.read()
                except Exception:  # pragma: no cover - defensive
                    pass
            self.terminate()
            raise ServiceUnavailableError(
                f"server-subprocess: exited before readiness "
                f"(stderr: {stderr.strip()[-500:]!r})"
            )
        return ready[0]

    @property
    def pid(self) -> int:
        return self.process.pid

    def kill(self) -> None:
        """SIGKILL the child *without* any draining -- the tool for
        provoking genuine mid-stream connection failures in tests.

        The persisted ``.npz`` (and the registry entry, so ``atexit``
        still reaps the tempdir) survives, which is what lets
        :meth:`restart` bring the replica back on the same port."""
        self.process.kill()
        self.process.wait(timeout=10.0)
        self._close_streams()

    def restart(self, startup_timeout: float | None = None) -> None:
        """Respawn a killed (or still-running, then hard-stopped) child
        on the *same* address, serving the same persisted database.
        Clients reconnect transparently: the address in their hands
        stays valid."""
        if self.process.poll() is None:
            self.kill()
        host, port = self.address
        timeout = (
            self._startup_timeout if startup_timeout is None
            else startup_timeout
        )
        deadline = time.monotonic() + timeout
        while True:
            try:
                # asyncio sets SO_REUSEADDR on POSIX, so rebinding the
                # port works as soon as the old process is gone; retry
                # briefly in case the kernel is still releasing it
                self._spawn(port=port, timeout=timeout)
                return
            except ServiceUnavailableError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.2)

    def terminate(self) -> None:
        """Stop the child (idempotent): SIGTERM, then SIGKILL after a
        grace period."""
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.process.kill()
                self.process.wait(timeout=5.0)
        self._cleanup()

    def _close_streams(self) -> None:
        for stream in (self.process.stdout, self.process.stderr):
            if stream is not None:
                try:
                    stream.close()
                except Exception:  # pragma: no cover - defensive
                    pass

    def _cleanup(self) -> None:
        _LIVE.discard(self)
        self._close_streams()
        try:
            self._tmpdir.cleanup()
        except Exception:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "ServerProcess":
        return self

    def __exit__(self, *exc_info) -> None:
        self.terminate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "live" if self.process.poll() is None else "dead"
        return f"<ServerProcess pid={self.process.pid} {state}>"
