"""repro -- a reproduction of *Optimal Aggregation Algorithms for
Middleware* (Fagin, Lotem, Naor; PODS 2001).

The library implements the paper's model and every algorithm it
analyses:

* the middleware substrate (``m`` sorted lists, sorted/random access,
  middleware cost ``s*cS + r*cR``) -- :mod:`repro.middleware`;
* monotone aggregation functions with the paper's property taxonomy --
  :mod:`repro.aggregation`;
* TA, TA-theta, TAZ, NRA, CA, FA and the related-work baselines --
  :mod:`repro.core`;
* synthetic and adversarial workloads -- :mod:`repro.datagen`;
* the instance-optimality measurement harness -- :mod:`repro.analysis`.

Quick start::

    from repro import ThresholdAlgorithm, AVERAGE, datagen

    db = datagen.uniform(n=10_000, m=3, seed=7)
    result = ThresholdAlgorithm().run_on(db, AVERAGE, k=10)
    print(result.summary())
"""

from . import (
    aggregation,
    analysis,
    core,
    datagen,
    middleware,
    resilience,
    services,
)
from .aggregation import (
    AVERAGE,
    MAX,
    MEDIAN,
    MIN,
    PRODUCT,
    SUM,
    AggregationFunction,
    make_aggregation,
)
from .core import (
    ApproximateThresholdAlgorithm,
    CombinedAlgorithm,
    FaginAlgorithm,
    IntermittentAlgorithm,
    MaxAlgorithm,
    NaiveAlgorithm,
    NoRandomAccessAlgorithm,
    QuickCombine,
    RestrictedSortedAccessTA,
    StreamCombine,
    ThresholdAlgorithm,
    TopKResult,
)
from .middleware import (
    AccessSession,
    CostModel,
    ColumnarDatabase,
    Database,
    GradedSource,
    ListCapabilities,
    ShardedDatabase,
    assemble_database,
)
from .services import (
    AsyncAccessSession,
    LatencyModel,
    SimulatedListService,
    assemble_remote_database,
    services_for_database,
    services_for_sources,
)

__version__ = "1.0.0"

__all__ = [
    "aggregation",
    "analysis",
    "core",
    "datagen",
    "middleware",
    "resilience",
    "services",
    "AVERAGE",
    "MAX",
    "MEDIAN",
    "MIN",
    "PRODUCT",
    "SUM",
    "AggregationFunction",
    "make_aggregation",
    "ApproximateThresholdAlgorithm",
    "CombinedAlgorithm",
    "FaginAlgorithm",
    "IntermittentAlgorithm",
    "MaxAlgorithm",
    "NaiveAlgorithm",
    "NoRandomAccessAlgorithm",
    "QuickCombine",
    "RestrictedSortedAccessTA",
    "StreamCombine",
    "ThresholdAlgorithm",
    "TopKResult",
    "AccessSession",
    "CostModel",
    "Database",
    "ColumnarDatabase",
    "ShardedDatabase",
    "GradedSource",
    "ListCapabilities",
    "assemble_database",
    "AsyncAccessSession",
    "LatencyModel",
    "SimulatedListService",
    "assemble_remote_database",
    "services_for_database",
    "services_for_sources",
    "__version__",
]
