"""repro -- a reproduction of *Optimal Aggregation Algorithms for
Middleware* (Fagin, Lotem, Naor; PODS 2001).

The library implements the paper's model and every algorithm it
analyses:

* the middleware substrate (``m`` sorted lists, sorted/random access,
  middleware cost ``s*cS + r*cR``) -- :mod:`repro.middleware`;
* monotone aggregation functions with the paper's property taxonomy --
  :mod:`repro.aggregation`;
* TA, TA-theta, TAZ, NRA, CA, FA and the related-work baselines --
  :mod:`repro.core`;
* synthetic and adversarial workloads -- :mod:`repro.datagen`;
* the instance-optimality measurement harness -- :mod:`repro.analysis`;
* mutable backends and continuously-maintained top-k views --
  :mod:`repro.middleware.mutable` and :mod:`repro.views`;
* the concurrent query service and its wire client --
  :mod:`repro.server`.

Quick start::

    from repro import ThresholdAlgorithm, AVERAGE, datagen

    db = datagen.uniform(n=10_000, m=3, seed=7)
    result = ThresholdAlgorithm().run_on(db, AVERAGE, k=10)
    print(result.summary())

Standing queries::

    from repro import LiveView, MutableColumnarDatabase, MIN

    live = MutableColumnarDatabase.from_database(db)
    view = LiveView(live, ThresholdAlgorithm, MIN, k=10,
                    on_event=print)
    live.update_grade(42, 0, 0.99)   # callbacks fire iff the top-k
    live.delete(7)                   # result actually changed

The curated public surface is ``repro.__all__``; simulated-service
helpers moved to :mod:`repro.services` (importing them from ``repro``
still works but emits :class:`DeprecationWarning`).
"""

import importlib
import warnings

from . import (
    aggregation,
    analysis,
    core,
    datagen,
    middleware,
    resilience,
    server,
    services,
)
from .aggregation import (
    AVERAGE,
    MAX,
    MEDIAN,
    MIN,
    PRODUCT,
    SUM,
    AggregationFunction,
    make_aggregation,
)
from .core import (
    ApproximateThresholdAlgorithm,
    CombinedAlgorithm,
    FaginAlgorithm,
    IntermittentAlgorithm,
    MaxAlgorithm,
    NaiveAlgorithm,
    NoRandomAccessAlgorithm,
    QuickCombine,
    RestrictedSortedAccessTA,
    StreamCombine,
    ThresholdAlgorithm,
    TopKResult,
)
from .middleware import (
    AccessSession,
    CostModel,
    ColumnarDatabase,
    Database,
    GradedSource,
    ListCapabilities,
    MutableColumnarDatabase,
    MutableDatabase,
    MutableShardedDatabase,
    MutationEvent,
    ShardedDatabase,
    assemble_database,
)
from .server import (
    QueryService,
    QueryServiceClient,
    QuerySpec,
)
from .views import LiveView, ViewEvent

__version__ = "1.1.0"

__all__ = [
    "aggregation",
    "analysis",
    "core",
    "datagen",
    "middleware",
    "resilience",
    "server",
    "services",
    "AVERAGE",
    "MAX",
    "MEDIAN",
    "MIN",
    "PRODUCT",
    "SUM",
    "AggregationFunction",
    "make_aggregation",
    "ApproximateThresholdAlgorithm",
    "CombinedAlgorithm",
    "FaginAlgorithm",
    "IntermittentAlgorithm",
    "MaxAlgorithm",
    "NaiveAlgorithm",
    "NoRandomAccessAlgorithm",
    "QuickCombine",
    "RestrictedSortedAccessTA",
    "StreamCombine",
    "ThresholdAlgorithm",
    "TopKResult",
    "AccessSession",
    "CostModel",
    "Database",
    "ColumnarDatabase",
    "ShardedDatabase",
    "MutableDatabase",
    "MutableColumnarDatabase",
    "MutableShardedDatabase",
    "MutationEvent",
    "LiveView",
    "ViewEvent",
    "QueryService",
    "QueryServiceClient",
    "QuerySpec",
    "GradedSource",
    "ListCapabilities",
    "assemble_database",
    "__version__",
]

#: renamed/relocated symbols kept importable for one deprecation cycle:
#: ``from repro import services_for_database`` still works but warns,
#: pointing at the supported home.
_DEPRECATED_ALIASES = {
    "AsyncAccessSession": "repro.services",
    "LatencyModel": "repro.services",
    "SimulatedListService": "repro.services",
    "assemble_remote_database": "repro.services",
    "services_for_database": "repro.services",
    "services_for_sources": "repro.services",
}


def __getattr__(name: str):
    home = _DEPRECATED_ALIASES.get(name)
    if home is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    warnings.warn(
        f"importing {name!r} from 'repro' is deprecated; "
        f"import it from '{home}' instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(home), name)
