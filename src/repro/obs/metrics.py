"""The metrics registry: counters, gauges, and log-bucketed histograms.

The registry is the single in-process sink every instrumented layer
writes to.  Three properties drive the design:

* **near-zero cost when disabled** -- a disabled registry hands out one
  shared null instrument whose update methods are empty; call sites
  keep a plain attribute reference and never branch;
* **zero perturbation** -- instruments only ever *observe*: nothing in
  this module touches a session, a scheduler, or a cost model, so the
  differential contract (bit-identical results and ``AccessStats`` with
  instrumentation on or off) holds by construction;
* **determinism** -- the registry carries an injectable clock (shared
  with the tracer) and its exports (:meth:`MetricsRegistry.snapshot`,
  :meth:`MetricsRegistry.render_prometheus`) are sorted by name and
  labels, so two identical runs under an injected clock produce
  byte-identical output.

Updates are plain ``+=`` / assignment on instance attributes: under the
GIL a lost increment between racing threads is possible in principle but
harmless for telemetry, and the hot paths (one attribute store) stay
cheap enough for the ``bench_obs`` overhead gate (enabled within 10% of
uninstrumented, disabled within 2%).

Histograms bucket observations by power of two (``math.frexp``
exponent): one dict entry per occupied magnitude covers the full float
range -- microseconds to hours, single accesses to million-row scans --
with no preconfigured bounds to get wrong.
"""

from __future__ import annotations

import math
import re
import time
from typing import Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    """Sanitize ``name`` to the Prometheus metric-name alphabet."""
    return _NAME_RE.sub("_", name)


def _label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats render without the
    trailing ``.0`` so counters read naturally."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing sum."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = (),
                 help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    # symmetry with Gauge so call sites can swap instrument kinds freely
    def get(self) -> float:
        return self.value


class Gauge:
    """A value that goes up and down (queue depths, active queries)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = (),
                 help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def get(self) -> float:
        return self.value


class Histogram:
    """A log2-bucketed distribution.

    ``observe(v)`` files ``v`` under its binary magnitude: the bucket
    keyed by exponent ``e`` counts observations in ``(2**(e-1), 2**e]``
    (non-positive values land in a dedicated underflow bucket).  Buckets
    materialise on first use, so an idle histogram costs two floats and
    an empty dict.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "help", "count", "total",
                 "min", "max", "buckets")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = (),
                 help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets: dict[int, int] = {}

    _UNDERFLOW = -1075  # below the exponent of the smallest subnormal

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value > 0.0:
            mantissa, exponent = math.frexp(value)
            # frexp: value = mantissa * 2**exponent, mantissa in [0.5, 1)
            # -> value in [2**(e-1), 2**e); an exact power of two sits at
            # the *lower* edge, so shift it down into the (.., 2**(e-1)]
            # bucket to keep bucket upper bounds inclusive.
            if mantissa == 0.5:
                exponent -= 1
        else:
            exponent = self._UNDERFLOW
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    def bucket_bounds(self) -> list[tuple[float, int]]:
        """``(inclusive_upper_bound, count)`` per occupied bucket, sorted."""
        return [
            (0.0 if e == self._UNDERFLOW else math.ldexp(1.0, e), n)
            for e, n in sorted(self.buckets.items())
        ]


class _NullInstrument:
    """The shared instrument a disabled registry hands out: every update
    method of every instrument kind, as a no-op."""

    __slots__ = ()
    kind = "null"
    name = ""
    labels: tuple[tuple[str, str], ...] = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def get(self) -> float:
        return 0.0


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """A process-local registry of named instruments.

    Instruments are memoized by ``(name, labels)``: asking twice returns
    the same object, so layers created at different times share series.
    A disabled registry returns :data:`NULL_INSTRUMENT` from every
    factory and renders empty exports.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.enabled = enabled
        self.clock = clock
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]],
                                Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    # instrument factories
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: dict[str, str] | None,
             help: str):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = (_metric_name(name), _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(key[0], key[1], help)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {key[0]!r} already registered as "
                f"{instrument.kind}, not {cls.kind}"
            )
        return instrument

    def counter(self, name: str, labels: dict[str, str] | None = None,
                help: str = ""):
        return self._get(Counter, name, labels, help)

    def gauge(self, name: str, labels: dict[str, str] | None = None,
              help: str = ""):
        return self._get(Gauge, name, labels, help)

    def histogram(self, name: str, labels: dict[str, str] | None = None,
                  help: str = ""):
        return self._get(Histogram, name, labels, help)

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def _sorted_instruments(self):
        return [self._instruments[key] for key in sorted(self._instruments)]

    def snapshot(self) -> dict:
        """The registry as one JSON-safe dict (wire-portable: the
        ``metrics`` op returns exactly this)."""
        metrics = []
        for inst in self._sorted_instruments():
            entry: dict = {
                "name": inst.name,
                "kind": inst.kind,
                "labels": dict(inst.labels),
            }
            if isinstance(inst, Histogram):
                entry.update(
                    count=inst.count,
                    sum=inst.total,
                    min=inst.min,
                    max=inst.max,
                    buckets=[[bound, n]
                             for bound, n in inst.bucket_bounds()],
                )
            else:
                entry["value"] = inst.value
            metrics.append(entry)
        return {"enabled": self.enabled, "metrics": metrics}

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format.

        Deterministic: series sort by name then labels, and no
        timestamps are emitted, so identical runs render byte-identical
        text.
        """
        lines: list[str] = []
        last_name = None
        for inst in self._sorted_instruments():
            if inst.name != last_name:
                if inst.help:
                    lines.append(f"# HELP {inst.name} {inst.help}")
                lines.append(f"# TYPE {inst.name} {inst.kind}")
                last_name = inst.name
            label_str = ""
            if inst.labels:
                inner = ",".join(f'{k}="{v}"' for k, v in inst.labels)
                label_str = "{" + inner + "}"
            if isinstance(inst, Histogram):
                cumulative = 0
                for bound, n in inst.bucket_bounds():
                    cumulative += n
                    le = _format_value(bound)
                    extra = f'le="{le}"'
                    inner = ",".join(
                        [f'{k}="{v}"' for k, v in inst.labels] + [extra]
                    )
                    lines.append(
                        f"{inst.name}_bucket{{{inner}}} {cumulative}"
                    )
                inf_inner = ",".join(
                    [f'{k}="{v}"' for k, v in inst.labels] + ['le="+Inf"']
                )
                lines.append(f"{inst.name}_bucket{{{inf_inner}}} {inst.count}")
                lines.append(
                    f"{inst.name}_sum{label_str} {_format_value(inst.total)}"
                )
                lines.append(f"{inst.name}_count{label_str} {inst.count}")
            else:
                lines.append(
                    f"{inst.name}{label_str} {_format_value(inst.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")
