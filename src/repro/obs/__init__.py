"""The unified observability plane.

One :class:`Observability` object bundles everything a layer needs to
instrument itself:

* a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  log-bucketed histograms (Prometheus-text and JSON exports),
* a :class:`~repro.obs.tracing.Tracer` producing per-query span traces
  (admission → scheduling → engine rounds → halt),
* a :class:`~repro.obs.tracing.SlowQueryLog` retaining structured
  records -- spans plus the per-round τ/W/B bound trajectory -- for
  queries over a wall-clock threshold, and
* :class:`~repro.obs.profile.QueryProbe` factories for the engines'
  round-boundary hook.

Layers take ``obs: Observability | None = None``; with ``None`` (or a
disabled plane) every factory hands out shared no-op objects, so the
instrumented code path is identical either way and costs one attribute
load plus an empty method call.  The hard contract -- enforced by the
differential suite's instrumentation-on axis -- is **zero
perturbation**: instrumentation on or off, results, tie order,
``AccessStats`` and trace bytes stay bit-identical, and observability
reads are never charged as middleware cost.

The clock is injectable (``Observability(clock=...)``) and shared by
the registry and tracer, so tests drive a deterministic counter-clock
and assert byte-stable exports.
"""

from __future__ import annotations

import time
from typing import Callable

from .export import MetricsExporter
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
)
from .profile import QueryProbe, RoundProfile
from .tracing import NULL_TRACE, QueryTrace, SlowQueryLog, Span, Tracer

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_INSTRUMENT",
    "QueryProbe",
    "RoundProfile",
    "Tracer",
    "QueryTrace",
    "Span",
    "SlowQueryLog",
    "NULL_TRACE",
    "MetricsExporter",
]


class Observability:
    """Registry + tracer + slow-query log behind one switch."""

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.monotonic,
        slow_query_threshold: float | None = None,
        slow_query_sink: Callable[[dict], None] | None = None,
        trace_capacity: int = 128,
    ):
        self.enabled = enabled
        self.clock = clock
        self.registry = MetricsRegistry(enabled=enabled, clock=clock)
        self.tracer = Tracer(
            clock=clock, capacity=trace_capacity, enabled=enabled
        )
        self.slow_queries = SlowQueryLog(
            threshold_s=slow_query_threshold, sink=slow_query_sink
        )

    # registry passthroughs, so layers hold one handle
    def counter(self, name, labels=None, help=""):
        return self.registry.counter(name, labels, help)

    def gauge(self, name, labels=None, help=""):
        return self.registry.gauge(name, labels, help)

    def histogram(self, name, labels=None, help=""):
        return self.registry.histogram(name, labels, help)

    def probe(
        self, session, *, sample_every: int = 1
    ) -> QueryProbe | None:
        """A bound-trajectory probe for ``session`` (``None`` when the
        plane is disabled, so engines skip the hook entirely).
        ``sample_every=N`` records every Nth step -- totals stay exact
        -- keeping probes cheap on very-large-N store runs."""
        if not self.enabled:
            return None
        return QueryProbe(session, sample_every=sample_every)

    def exporter(self, host: str = "127.0.0.1",
                 port: int = 0) -> MetricsExporter:
        return MetricsExporter(self.registry, host=host, port=port)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return f"<Observability {state}>"
