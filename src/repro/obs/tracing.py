"""Query-lifecycle tracing: spans from admission to halt.

A :class:`QueryTrace` is a small, append-only record of one query's
trip through the service: ``admitted`` → (``queued``) → ``running`` →
done, each phase a :class:`Span` stamped by the tracer's injectable
clock (inject a deterministic clock and two identical runs produce
byte-identical traces -- the determinism tests do exactly that).  The
engine-level detail -- per-round depth, charged cost, and the τ/W/B
bound trajectory -- attaches as the trace's
:class:`~repro.obs.profile.QueryProbe`.

The tracer keeps the most recent completed traces in a bounded ring
and feeds the :class:`SlowQueryLog`: any query whose wall duration
crosses the threshold is retained as a structured record carrying its
full per-round bound trajectory, so "why was this query slow" is
answerable from the paper's own vocabulary (how deep did it read, what
did the threshold do, what was charged) rather than from a wall-clock
number alone.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

__all__ = ["Span", "QueryTrace", "Tracer", "SlowQueryLog", "NULL_TRACE"]


class Span:
    """One named phase of a query with start/end stamps and attributes."""

    __slots__ = ("name", "start", "end", "attrs")

    def __init__(self, name: str, start: float,
                 attrs: dict | None = None):
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attrs: dict = attrs or {}

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dur = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"<Span {self.name} {dur}>"


class QueryTrace:
    """The spans (and optional probe) of one query."""

    __slots__ = ("query_id", "spans", "probe", "attrs", "_clock", "_open")

    def __init__(self, query_id: str, clock: Callable[[], float],
                 **attrs):
        self.query_id = query_id
        self.spans: list[Span] = []
        self.probe = None
        self.attrs: dict = attrs
        self._clock = clock
        self._open: dict[str, Span] = {}

    def begin(self, name: str, **attrs) -> Span:
        span = Span(name, self._clock(), attrs)
        self.spans.append(span)
        self._open[name] = span
        return span

    def end(self, name: str, **attrs) -> None:
        span = self._open.pop(name, None)
        if span is None:
            return
        span.end = self._clock()
        if attrs:
            span.attrs.update(attrs)

    def event(self, name: str, **attrs) -> Span:
        """A zero-duration span (a point event)."""
        span = Span(name, self._clock(), attrs)
        span.end = span.start
        self.spans.append(span)
        return span

    def close(self) -> None:
        """End any span left open (crash paths)."""
        for name in list(self._open):
            self.end(name)

    @property
    def duration(self) -> float | None:
        """First span start to last span end."""
        if not self.spans:
            return None
        ends = [s.end for s in self.spans if s.end is not None]
        if not ends:
            return None
        return max(ends) - self.spans[0].start

    def as_dict(self) -> dict:
        record: dict = {
            "query_id": self.query_id,
            "attrs": dict(self.attrs),
            "spans": [span.as_dict() for span in self.spans],
        }
        if self.probe is not None:
            record["profile"] = self.probe.as_dict()
        return record


class _NullTrace:
    """The no-op trace a disabled tracer hands out."""

    __slots__ = ()
    query_id = ""
    probe = None

    def begin(self, name: str, **attrs) -> None:
        pass

    def end(self, name: str, **attrs) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass

    def close(self) -> None:
        pass

    @property
    def duration(self) -> None:
        return None

    def as_dict(self) -> dict:
        return {}


NULL_TRACE = _NullTrace()


class Tracer:
    """Creates and retains :class:`QueryTrace` objects.

    ``capacity`` bounds the completed-trace ring; a disabled tracer
    hands out :data:`NULL_TRACE` so call sites never branch.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        capacity: int = 128,
        enabled: bool = True,
    ):
        self.clock = clock
        self.enabled = enabled
        self.completed: deque[QueryTrace] = deque(maxlen=capacity)

    def trace(self, query_id: str, **attrs):
        if not self.enabled:
            return NULL_TRACE
        return QueryTrace(query_id, self.clock, **attrs)

    def finish(self, trace) -> None:
        if trace is NULL_TRACE or not self.enabled:
            return
        trace.close()
        self.completed.append(trace)

    def find(self, query_id: str):
        for trace in reversed(self.completed):
            if trace.query_id == query_id:
                return trace
        return None


class SlowQueryLog:
    """Structured retention of queries slower than a threshold.

    Records are plain dicts (JSON-safe): the query's identity, spans,
    and -- through the attached probe -- the per-round bound trajectory.
    ``sink`` (when given) receives each record as it is admitted, e.g.
    ``lambda rec: print(json.dumps(rec))`` for a log line per slow
    query.
    """

    def __init__(
        self,
        threshold_s: float | None = None,
        sink: Callable[[dict], None] | None = None,
        capacity: int = 64,
    ):
        self.threshold_s = threshold_s
        self.sink = sink
        self.records: deque[dict] = deque(maxlen=capacity)

    def consider(self, trace, duration_s: float | None = None,
                 **extra) -> bool:
        """Admit ``trace`` if it crossed the threshold; returns whether
        it was admitted."""
        if self.threshold_s is None:
            return False
        if duration_s is None:
            duration_s = trace.duration
        if duration_s is None or duration_s < self.threshold_s:
            return False
        record = trace.as_dict()
        record["duration_s"] = duration_s
        if extra:
            record.update(extra)
        self.records.append(record)
        if self.sink is not None:
            self.sink(record)
        return True
