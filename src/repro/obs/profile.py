"""Bound-trajectory profiling: the paper's cost model, per round.

A :class:`QueryProbe` rides on a session (``session.probe``) and is
fed by the engines at round boundaries -- the scalar loops after each
lockstep round, the speculative chunked engines after each charged
chunk commit.  Each :class:`RoundProfile` entry records what the paper
reasons about: how deep the sorted and random cursors moved, what the
move was charged (``s·cS + r·cR`` deltas), and where the bounds stood
-- the threshold ``τ`` (``t`` applied to the bottom values), the
worst-case floor ``W`` and best-case ceiling ``B`` when the engine has
them at hand.

The probe is strictly an *observer*: it reads the session's public
accounting (`sorted_accesses`, `random_accesses`, `middleware_cost`,
`depth`) and never issues an access, so attaching one cannot perturb
results, tie order, ``AccessStats``, or trace bytes (the differential
suite runs an instrumentation-on axis to enforce exactly that).

Charged-cost exactness: entries carry both the cumulative counters and
their per-round deltas.  :meth:`QueryProbe.total_cost` (and friends)
return the final cumulative value, so the profile's totals equal the
session's ``AccessStats`` / the service's ``QueryBill`` *bit-for-bit*;
with the integral cost models the suite uses, ``math.fsum`` of the
per-round deltas reproduces the same number exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

__all__ = ["RoundProfile", "QueryProbe"]


@dataclass(frozen=True)
class RoundProfile:
    """One charged step of a query: a single lockstep round of a scalar
    engine (``label="round"``), a committed chunk of a speculative
    engine spanning ``round_end - round_start`` rounds
    (``label="chunk"``), or the post-loop residual -- final resolution
    accesses charged after the last round (``label="final"``).

    ``sorted_n`` / ``random_n`` / ``cost`` are cumulative *after* the
    step; the ``*_delta`` fields are this step's charges.  ``tau`` is
    the threshold at the step's end; ``taus`` carries the full
    per-round trajectory inside a committed chunk; ``w`` / ``b`` are
    the worst/best-case bounds when the engine tracks them.
    """

    label: str
    round_start: int
    round_end: int
    sorted_n: int
    random_n: int
    cost: float
    sorted_delta: int
    random_delta: int
    cost_delta: float
    depth: int
    tau: float | None = None
    w: float | None = None
    b: float | None = None
    taus: tuple[float, ...] | None = None

    @property
    def rounds(self) -> int:
        return self.round_end - self.round_start

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "round_start": self.round_start,
            "round_end": self.round_end,
            "sorted": self.sorted_n,
            "random": self.random_n,
            "cost": self.cost,
            "sorted_delta": self.sorted_delta,
            "random_delta": self.random_delta,
            "cost_delta": self.cost_delta,
            "depth": self.depth,
            "tau": self.tau,
            "w": self.w,
            "b": self.b,
            "taus": None if self.taus is None else list(self.taus),
        }


class QueryProbe:
    """Accumulates :class:`RoundProfile` entries for one query.

    Attach as ``session.probe = QueryProbe(session)`` before running an
    engine; the engines feed it via :meth:`on_round` at their round /
    chunk boundaries and the runner seals it with :meth:`finish`.
    """

    __slots__ = (
        "_session", "entries", "halt_reason", "sample_every", "_steps",
        "_last_round", "_last_sorted", "_last_random", "_last_cost",
    )

    def __init__(self, session, *, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self._session = session
        self.entries: list[RoundProfile] = []
        self.halt_reason: str | None = None
        self.sample_every = sample_every
        self._steps = 0
        self._last_round = 0
        self._last_sorted = int(session.sorted_accesses)
        self._last_random = int(session.random_accesses)
        self._last_cost = float(session.middleware_cost)

    def _record(
        self,
        label: str,
        rounds_completed: int,
        tau: float | None,
        w: float | None,
        b: float | None,
        taus: tuple[float, ...] | None,
    ) -> None:
        session = self._session
        sorted_n = int(session.sorted_accesses)
        random_n = int(session.random_accesses)
        cost = float(session.middleware_cost)
        self.entries.append(
            RoundProfile(
                label=label,
                round_start=self._last_round,
                round_end=rounds_completed,
                sorted_n=sorted_n,
                random_n=random_n,
                cost=cost,
                sorted_delta=sorted_n - self._last_sorted,
                random_delta=random_n - self._last_random,
                cost_delta=cost - self._last_cost,
                depth=int(session.depth),
                tau=tau,
                w=w,
                b=b,
                taus=taus,
            )
        )
        self._last_round = rounds_completed
        self._last_sorted = sorted_n
        self._last_random = random_n
        self._last_cost = cost

    def on_round(
        self,
        rounds_completed: int,
        *,
        tau: float | None = None,
        w: float | None = None,
        b: float | None = None,
        taus: tuple[float, ...] | None = None,
    ) -> None:
        """Record the step that ended at round ``rounds_completed``.
        A multi-round step (chunked commit) passes the per-round ``taus``
        trajectory and is labelled a chunk.

        With ``sample_every=N > 1`` only every Nth step is recorded; a
        recorded entry's deltas then span the skipped steps (baselines
        advance only at record time), so the cumulative counters -- and
        hence ``total_*`` -- remain exact regardless of sampling, at
        1/N the entry volume.  Sampled spans are labelled ``sample``.
        """
        self._steps += 1
        if self._steps % self.sample_every:
            return
        if self.sample_every > 1:
            label = "sample"
        elif rounds_completed - self._last_round != 1 or taus:
            label = "chunk"
        else:
            label = "round"
        self._record(label, rounds_completed, tau, w, b, taus)

    def finish(self, halt_reason: Hashable | None = None) -> None:
        """Seal the profile.  Accesses charged since the last round
        boundary (TA-style final resolution, certificate finalization)
        become a ``final`` residual entry, so the profile's totals match
        the session's accounting exactly by construction."""
        session = self._session
        if (
            int(session.sorted_accesses) != self._last_sorted
            or int(session.random_accesses) != self._last_random
            or float(session.middleware_cost) != self._last_cost
        ):
            self._record("final", self._last_round, None, None, None, None)
        self.halt_reason = None if halt_reason is None else str(halt_reason)

    # ------------------------------------------------------------------
    # totals: cumulative, hence exactly the session's accounting
    # ------------------------------------------------------------------
    @property
    def total_sorted(self) -> int:
        return self.entries[-1].sorted_n if self.entries else self._last_sorted

    @property
    def total_random(self) -> int:
        return self.entries[-1].random_n if self.entries else self._last_random

    @property
    def total_cost(self) -> float:
        return self.entries[-1].cost if self.entries else self._last_cost

    @property
    def rounds(self) -> int:
        return self._last_round

    def as_dict(self) -> dict:
        return {
            "halt_reason": self.halt_reason,
            "rounds": self.rounds,
            "total_sorted": self.total_sorted,
            "total_random": self.total_random,
            "total_cost": self.total_cost,
            "entries": [entry.as_dict() for entry in self.entries],
        }

    def format_table(self, limit: int | None = 24) -> str:
        """Human-readable per-round profile (the example's --metrics
        output)."""
        rows = [
            "rounds      kind   s(+)      r(+)      cost(+)      depth  tau"
        ]
        entries = self.entries if limit is None else self.entries[:limit]
        for e in entries:
            span = (
                f"{e.round_start}-{e.round_end}"
                if e.rounds > 1 else f"{e.round_end}"
            )
            tau = "-" if e.tau is None else f"{e.tau:.4f}"
            rows.append(
                f"{span:>10}  {e.label:>5}  "
                + f"{e.sorted_n}(+{e.sorted_delta})".ljust(10)
                + f"{e.random_n}(+{e.random_delta})".ljust(10)
                + f"{e.cost:g}(+{e.cost_delta:g})".ljust(13)
                + f"{e.depth:>5}  {tau}"
            )
        if limit is not None and len(self.entries) > limit:
            rows.append(f"... ({len(self.entries) - limit} more entries)")
        return "\n".join(rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QueryProbe rounds={self.rounds} entries={len(self.entries)} "
            f"cost={self.total_cost:g} halt={self.halt_reason}>"
        )
