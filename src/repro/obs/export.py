"""Export surfaces: the Prometheus-text HTTP endpoint.

:class:`MetricsExporter` is a minimal asyncio HTTP/1.0 server (no
dependencies, stdlib only) answering

* ``GET /metrics`` with the registry in the Prometheus text exposition
  format (``MetricsRegistry.render_prometheus``), and
* ``GET /metrics.json`` with the same registry as a JSON snapshot
  (``MetricsRegistry.snapshot``) -- handy for humans and tests.

It binds a port of its own (``--metrics-port`` on
``python -m repro.server``) so scraping never contends with the query
wire protocol, and it reads the registry without locks: a scrape
observes each instrument at some recent instant, which is all a
monitoring system asks for.
"""

from __future__ import annotations

import asyncio
import json

__all__ = ["MetricsExporter"]

_MAX_REQUEST_BYTES = 16384


class MetricsExporter:
    """Serve a :class:`~repro.obs.metrics.MetricsRegistry` over HTTP."""

    def __init__(self, registry, host: str = "127.0.0.1", port: int = 0):
        self._registry = registry
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def astart(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            writer.close()
            return
        if len(request) > _MAX_REQUEST_BYTES:
            writer.close()
            return
        try:
            method, path, *_ = request.split(b"\r\n", 1)[0].decode(
                "latin-1"
            ).split(" ")
        except ValueError:
            method, path = "", ""
        if method != "GET":
            status, content_type, body = (
                "405 Method Not Allowed", "text/plain", b"GET only\n"
            )
        elif path in ("/metrics", "/"):
            body = self._registry.render_prometheus().encode("utf-8")
            status = "200 OK"
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = (
                json.dumps(self._registry.snapshot(), indent=2) + "\n"
            ).encode("utf-8")
            status, content_type = "200 OK", "application/json"
        else:
            status, content_type, body = (
                "404 Not Found", "text/plain", b"try /metrics\n"
            )
        writer.write(
            (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()
