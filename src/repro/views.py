"""Continuous top-k views over mutable databases.

A :class:`LiveView` registers a standing query -- algorithm,
aggregation, ``k`` -- against a :class:`~repro.middleware.mutable.
MutableDatabase` and keeps its result set current as the database
mutates, firing ``add`` / ``change`` / ``remove`` callbacks for every
observable difference (Miro's ``DynamicDatabase`` view shape).

The maintenance is *certified incremental*: alongside the result the
view maintains a **bound certificate** -- the exact overall grade of
its weakest member, computed from ground truth so it is engine-
independent (NRA-family results carry no exact grades).  A mutation
re-runs the engine only when it can possibly change the result:

* an **insert** whose overall grade reaches the floor,
* any mutation touching a current **member**,
* an **update** lifting a non-member to (or above) the floor,
* anything at all while the view holds fewer than ``k`` items.

Every other mutation -- the overwhelming majority in a skewed update
stream -- is provably below the top-k window and costs O(m) aggregate
evaluation, no engine run.  Correctness does not depend on the
certificate being tight, only sound: whenever the view skips a
refresh, its result set is *bit-identical* (items, grades, tie order)
to a from-scratch run on the post-mutation database, which the
stateful hypothesis suite asserts after every step.

The view recomputes by re-running the registered engine (its stats and
halt data are exposed through :attr:`LiveView.result`), but *presents*
the result in the database's canonical order -- overall grade
descending, ties by list-0 position, exactly
:meth:`~repro.middleware.database.Database.top_k` -- with exact
grades.  Engines are allowed to break ties arbitrarily (first-come, as
the paper permits) and their choices shift with list layout, so raw
engine tie order is not maintainable across certified skips; the
canonical order provably is.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Hashable, Optional

from .core.base import TopKAlgorithm
from .core.result import RankedItem, TopKResult
from .middleware.access import AccessStats
from .middleware.cost import CostModel, UNIT_COSTS
from .middleware.errors import DatabaseError
from .middleware.mutable import MutableDatabase, MutationEvent
from .obs.metrics import NULL_INSTRUMENT

__all__ = ["LiveView", "ViewEvent"]


@dataclass(frozen=True)
class ViewEvent:
    """One observable change of a view's result set.

    ``kind`` is ``"add"`` / ``"change"`` / ``"remove"``; ``rank`` is
    the object's position in the new result (``None`` for removes);
    ``grade`` is the exact overall grade (views always present exact
    canonical-order results, whatever the engine reports).
    ``version`` is the database version the event reflects.
    """

    kind: str
    obj: Hashable
    rank: Optional[int]
    grade: Optional[float]
    lower: float
    upper: float
    version: int

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "obj": self.obj,
            "rank": self.rank,
            "grade": self.grade,
            "lower": self.lower,
            "upper": self.upper,
            "version": self.version,
        }


Listener = Callable[[ViewEvent], None]


class LiveView:
    """A continuously-maintained top-k result over a mutable database.

    Parameters
    ----------
    database:
        Any :class:`~repro.middleware.mutable.MutableDatabase` (which
        is also a read-plane :class:`~repro.middleware.database.
        Database`).
    algorithm:
        A :class:`~repro.core.base.TopKAlgorithm` instance or a
        zero-argument factory returning one (a factory gets a fresh
        engine per refresh, which keeps stateful engines honest).
    on_add, on_change, on_remove, on_event:
        Optional callbacks; ``on_event`` receives every
        :class:`ViewEvent`, the kind-specific ones only theirs.  The
        initial computation is a *snapshot*, not a delta: it fires no
        events (read :attr:`result` for the starting state).

    Counters ``mutations_seen``, ``refreshes`` and ``events_emitted``
    expose the incremental win (the bench measures
    ``refreshes / mutations_seen``).  Pass ``obs=`` to mirror them --
    plus certified screens (mutations the bound certificate proved
    irrelevant) -- into a metrics registry.  Call :meth:`close` to
    detach from the database's listener list.
    """

    def __init__(
        self,
        database: MutableDatabase,
        algorithm,
        aggregation,
        k: int,
        *,
        cost_model: CostModel = UNIT_COSTS,
        on_add: Optional[Listener] = None,
        on_change: Optional[Listener] = None,
        on_remove: Optional[Listener] = None,
        on_event: Optional[Listener] = None,
        obs=None,
    ):
        if not isinstance(database, MutableDatabase):
            raise DatabaseError(
                "LiveView requires a MutableDatabase; build one with "
                "MutableColumnarDatabase.from_database(db)"
            )
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._db = database
        if isinstance(algorithm, TopKAlgorithm):
            self._make_algorithm = lambda: algorithm
        else:
            self._make_algorithm = algorithm
        self._aggregation = aggregation
        self._k = int(k)
        self._cost_model = cost_model
        self._on_add = on_add
        self._on_change = on_change
        self._on_remove = on_remove
        self._on_event = on_event
        self._closed = False
        self.mutations_seen = 0
        self.refreshes = 0
        self.events_emitted = 0
        if obs is None:
            self._m_mutations = self._m_refreshes = NULL_INSTRUMENT
            self._m_screens = self._m_events = NULL_INSTRUMENT
        else:
            self._m_mutations = obs.counter(
                "repro_view_mutations_seen_total",
                help="mutations observed by live views",
            )
            self._m_refreshes = obs.counter(
                "repro_view_refreshes_total",
                help="engine re-runs (certificate demanded a refresh)",
            )
            self._m_screens = obs.counter(
                "repro_view_certified_screens_total",
                help="mutations screened out by the bound certificate",
            )
            self._m_events = obs.counter(
                "repro_view_events_total",
                help="add/change/remove deltas emitted",
            )
        self._result: TopKResult | None = None
        self._members: dict[Hashable, RankedItem] = {}
        self._ranks: dict[Hashable, int] = {}
        self._floor = 0.0
        self._refresh(emit=False)
        database.add_listener(self._on_mutation)

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    @property
    def result(self) -> TopKResult:
        """The current engine result (stats are those of the *last*
        refresh, not a running total)."""
        assert self._result is not None
        return self._result

    @property
    def items(self) -> list[RankedItem]:
        return list(self.result.items)

    @property
    def k(self) -> int:
        return self._k

    @property
    def version(self) -> int:
        """Database version this view currently reflects."""
        return self._version

    @property
    def floor(self) -> float:
        """The bound certificate: exact overall grade of the weakest
        member (0.0 while the view holds fewer than ``k`` items)."""
        return self._floor

    def close(self) -> None:
        """Detach from the database; the view stops updating."""
        if not self._closed:
            self._closed = True
            self._db.remove_listener(self._on_mutation)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _overall(self, grades) -> float:
        return float(self._aggregation.aggregate(tuple(grades)))

    def _refresh(self, emit: bool) -> None:
        db = self._db
        n = db.num_objects
        if n == 0:
            result = TopKResult(
                algorithm="empty",
                k=self._k,
                items=[],
                stats=AccessStats(),
                rounds=0,
                depth=0,
                halt_reason="exhausted",
                max_buffer_size=0,
            )
        else:
            algorithm = self._make_algorithm()
            result = algorithm.run_on(
                db, self._aggregation, min(self._k, n), self._cost_model
            )
            # canonicalize the presentation: engines break ties
            # arbitrarily (first-come, paper-sanctioned) and their tie
            # choices depend on list layout, which *unrelated* mutations
            # shift -- so a stale-but-correct view and a fresh run could
            # disagree on tie placement.  The view therefore presents
            # the database's canonical order (overall grade descending,
            # ties by list-0 position, exactly ``Database.top_k``),
            # which is invariant under every certified-skip mutation.
            # The raw engine result's stats/halt data are kept.
            result = replace(
                result,
                items=[
                    RankedItem(
                        obj=obj, grade=g, lower_bound=g, upper_bound=g
                    )
                    for obj, g in db.top_k(
                        self._aggregation, min(self._k, n)
                    )
                ],
            )
        self.refreshes += 1
        old_members = self._members
        old_ranks = self._ranks
        new_members = {item.obj: item for item in result.items}
        new_ranks = {
            item.obj: rank for rank, item in enumerate(result.items)
        }
        self._result = result
        self._members = new_members
        self._ranks = new_ranks
        self._version = db.version
        # the certificate: exact ground-truth floor, engine-independent
        if len(result.items) < self._k:
            self._floor = 0.0
        elif result.items:
            self._floor = min(
                self._overall(db.grade_vector(item.obj))
                for item in result.items
            )
        else:
            self._floor = 0.0
        if not emit:
            return
        version = self._version
        # removes first (in the old result order), then adds/changes in
        # the new order
        for obj, item in old_members.items():
            if obj not in new_members:
                self._fire(
                    ViewEvent(
                        "remove",
                        obj,
                        None,
                        item.grade,
                        item.lower_bound,
                        item.upper_bound,
                        version,
                    ),
                    self._on_remove,
                )
        for rank, item in enumerate(result.items):
            old = old_members.get(item.obj)
            if old is None:
                self._fire(
                    ViewEvent(
                        "add",
                        item.obj,
                        rank,
                        item.grade,
                        item.lower_bound,
                        item.upper_bound,
                        version,
                    ),
                    self._on_add,
                )
            elif (
                old.grade != item.grade
                or old.lower_bound != item.lower_bound
                or old.upper_bound != item.upper_bound
                or old_ranks.get(item.obj) != rank
            ):
                self._fire(
                    ViewEvent(
                        "change",
                        item.obj,
                        rank,
                        item.grade,
                        item.lower_bound,
                        item.upper_bound,
                        version,
                    ),
                    self._on_change,
                )

    def _fire(self, event: ViewEvent, specific: Optional[Listener]) -> None:
        self.events_emitted += 1
        self._m_events.inc()
        if specific is not None:
            specific(event)
        if self._on_event is not None:
            self._on_event(event)

    def _needs_refresh(self, event: MutationEvent) -> bool:
        # an incomplete window means any mutation can matter (a delete
        # of a non-member still cannot, but keep the rule simple: the
        # incomplete state is transient)
        if self._result is None or len(self._result.items) < min(
            self._k, self._db.num_objects + (1 if event.kind == "delete" else 0)
        ):
            return True
        member = event.obj in self._members
        if event.kind == "delete":
            return member
        if member:
            return True
        # non-member insert/update: can only enter the window by
        # reaching the floor; below it the result set is unchanged
        value = self._overall(event.grades)
        return value >= self._floor

    def _on_mutation(self, event: MutationEvent) -> None:
        if self._closed:
            return
        self.mutations_seen += 1
        self._m_mutations.inc()
        if self._needs_refresh(event):
            self._refresh(emit=True)
            self._m_refreshes.inc()
        else:
            # the certificate proved the mutation cannot change the
            # result: no engine run, just the version stamp
            self._m_screens.inc()
            self._version = event.version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LiveView k={self._k} members={len(self._members)} "
            f"v={self._version} refreshes={self.refreshes}>"
        )
