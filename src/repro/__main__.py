"""Command-line demo: ``python -m repro [N] [m] [k]``.

Runs the paper's algorithm suite on one synthetic query and prints the
cost comparison -- a 10-second tour of what the library does.
"""

from __future__ import annotations

import sys

from . import datagen
from .aggregation import AVERAGE
from .analysis import format_table, minimal_certificate, run_algorithms
from .analysis.runner import RunRecord
from .core import (
    CombinedAlgorithm,
    FaginAlgorithm,
    NaiveAlgorithm,
    NoRandomAccessAlgorithm,
    ThresholdAlgorithm,
)
from .middleware import CostModel


def main(argv: list[str]) -> int:
    n = int(argv[1]) if len(argv) > 1 else 10_000
    m = int(argv[2]) if len(argv) > 2 else 3
    k = int(argv[3]) if len(argv) > 3 else 10
    cost_model = CostModel(sorted_cost=1.0, random_cost=5.0)

    db = datagen.uniform(n, m, seed=7)
    print(
        f"top-{k} by average grade over N={n}, m={m} "
        f"(cS={cost_model.cs:g}, cR={cost_model.cr:g})\n"
    )
    records = run_algorithms(
        [
            NaiveAlgorithm(),
            FaginAlgorithm(),
            ThresholdAlgorithm(),
            NoRandomAccessAlgorithm(),
            CombinedAlgorithm(),
        ],
        db,
        AVERAGE,
        k,
        cost_model=cost_model,
        label=f"uniform-{n}",
    )
    print(format_table(RunRecord.HEADERS, [r.row() for r in records]))

    cert = minimal_certificate(db, AVERAGE, k, cost_model, depth_step=5)
    print(f"\nshortest-proof certificate: {cert}")
    print("measured optimality ratios vs the certificate:")
    for rec in records:
        print(f"  {rec.algorithm:<8} {rec.middleware_cost / cert.cost:8.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
