"""Certified degraded-mode answers.

When a whole replica group dies mid-query (every replica gone), a
session in ``survive_list_loss`` mode absorbs the loss: the lost list's
sorted stream reports exhaustion and random access to it raises
:class:`~repro.middleware.errors.ListLostError`.  The engines then
finish over the surviving lists -- and the paper's own bound machinery
says exactly what the answer is still worth:

* every W/B bound stays *sound* after a loss: objects never popped from
  list ``i`` have ``grade_i <= bottom_i`` (the last grade seen before
  the loss), which is precisely the substitution ``B`` already uses,
  and ``W``'s 0-substitution needs nothing at all;
* therefore NRA's halting rule still certifies exactness when it fires
  (every excluded object's ``B`` is at most ``M_k``), and when it
  cannot fire the Section 6.2 approximation bound applies verbatim:
  for every returned ``y`` and excluded ``z``,
  ``t(z) <= max_outside_B <= theta * M_k <= theta * t(y)`` with
  ``theta = max(1, max_outside_B / M_k)``.

:class:`DegradedResult` carries the loss report and the certificate;
:func:`certify` computes ``theta`` from a live candidate store (dict or
array backed); :func:`complete_with_sorted_only` is the shared
completion loop TA switches to after a loss (its own buffer cannot
certify anything once random access dies); and
:func:`verify_against_oracle` checks a degraded answer against the full
ground-truth data -- the test suite's referee.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession
from ..core.bounds import ArrayCandidateStore, CandidateStore
from ..core.result import HaltReason, TopKResult

__all__ = [
    "DegradedResult",
    "certify",
    "degrade_result",
    "finalize_certificates",
    "complete_with_sorted_only",
    "verify_against_oracle",
]

#: guarantee labels carried by :class:`DegradedResult`
EXACT = "exact"
THETA = "theta-approximate"


@dataclass
class DegradedResult(TopKResult):
    """A top-``k`` answer computed after losing one or more lists.

    Everything a :class:`~repro.core.result.TopKResult` carries, plus:

    Attributes
    ----------
    lost_lists:
        Lost list index -> sorted depth consumed when the loss was
        detected (from
        :attr:`~repro.middleware.access.AccessSession.lost_lists`).
    guarantee:
        ``"exact"`` when the surviving bounds still certify the true
        top-``k`` (NRA's halting rule fired), else
        ``"theta-approximate"``.
    certified_theta:
        The certified approximation factor: ``1.0`` when exact,
        otherwise ``max(1, max_outside_B / M_k)`` (``inf`` when
        ``M_k <= 0`` certifies nothing).  Every returned item's
        ``[lower_bound, upper_bound]`` interval is carried per item as
        usual.
    """

    lost_lists: dict[int, int] = field(default_factory=dict)
    guarantee: str = EXACT
    certified_theta: float = 1.0

    @property
    def is_exact(self) -> bool:
        return self.guarantee == EXACT


def certify(
    store: CandidateStore, topk: Sequence[Hashable], num_objects: int
) -> tuple[float, bool]:
    """Certify ``topk`` against the live store: returns
    ``(theta, exact)``.

    ``theta`` is the Section 6.2 factor ``max(1, max_outside_B / M_k)``
    where ``max_outside_B`` ranges over every seen object outside
    ``topk`` plus the virtual unseen object at the threshold; ``exact``
    is true when ``max_outside_B <= M_k`` with a full ``topk`` (NRA's
    halting certificate).  Works on both the dict-backed store and the
    chunked engines' :class:`~repro.core.bounds.ArrayCandidateStore`
    (which has no per-object field dicts -- outside bounds come from
    one vectorised substitution over the field matrix).
    """
    topk = list(topk)
    topk_set = set(topk)
    if len(topk) >= store.k:
        m_k = min(store.w[obj] for obj in topk)
    else:
        m_k = float("-inf")
    outside: list[float] = []
    if isinstance(store, ArrayCandidateStore):
        matrix = store.field_matrix
        known = ~np.isnan(matrix)
        seen_rows = np.nonzero(known.any(axis=1))[0]
        if seen_rows.size:
            sub = matrix[seen_rows]
            bottoms = np.asarray(store.bottoms, dtype=np.float64)
            b_all = store.t.aggregate_batch(
                np.where(np.isnan(sub), bottoms, sub)
            )
            store.b_evaluations += int(seen_rows.size)
            in_topk = np.fromiter(
                (row in topk_set for row in seen_rows.tolist()),
                dtype=bool,
                count=seen_rows.size,
            )
            if (~in_topk).any():
                outside.append(float(b_all[~in_topk].max()))
    else:
        outside.extend(
            store.b_value(obj) for obj in store.fields if obj not in topk_set
        )
    if store.seen_count < num_objects:
        outside.append(store.threshold)
    max_outside = max(outside) if outside else float("-inf")
    exact = len(topk) >= store.k and max_outside <= m_k
    if exact:
        return 1.0, True
    if m_k <= 0:
        return float("inf"), False
    return max(1.0, max_outside / m_k), False


def degrade_result(
    result: TopKResult,
    session: AccessSession,
    store: CandidateStore,
) -> TopKResult:
    """Wrap ``result`` into a :class:`DegradedResult` when the session
    lost lists; pass it through untouched otherwise.  Called by the
    engines' result assembly, so every algorithm reports losses the
    same way."""
    lost = session.lost_lists
    if not lost:
        return result
    theta, exact = certify(
        store, [item.obj for item in result.items], session.num_objects
    )
    return DegradedResult(
        algorithm=result.algorithm,
        k=result.k,
        items=result.items,
        stats=result.stats,
        rounds=result.rounds,
        depth=result.depth,
        halt_reason=result.halt_reason,
        max_buffer_size=result.max_buffer_size,
        extras=dict(result.extras),
        lost_lists=lost,
        guarantee=EXACT if exact else THETA,
        certified_theta=theta,
    )


def finalize_certificates(
    result: TopKResult,
    session: AccessSession,
    store: CandidateStore,
    topk: Sequence[Hashable],
) -> TopKResult:
    """The engines' shared result post-pass: a ``DEADLINE`` halt gets
    its certified theta in ``extras`` (from the live store, exactly the
    Section 6.2 factor), and a session that lost lists gets its result
    wrapped into a :class:`DegradedResult`.  ``topk`` is store-keyed
    (row indices for the chunked engines, whose sessions can never lose
    lists), so the certificate is computed against the store directly.
    """
    if (
        result.halt_reason == HaltReason.DEADLINE
        and "certified_theta" not in result.extras
    ):
        theta, exact = certify(store, topk, session.num_objects)
        result.extras["certified_theta"] = theta
        result.extras["guarantee"] = EXACT if exact else THETA
    if not session.lost_lists:
        return result
    return degrade_result(result, session, store)


def complete_with_sorted_only(
    session: AccessSession,
    aggregation: AggregationFunction,
    k: int,
    store: CandidateStore,
    rounds: int,
    lists: Sequence[int] | None = None,
) -> tuple[list[Hashable], int, str]:
    """Finish a query NRA-style over the surviving lists.

    TA switches here after a list loss: its own buffer requires full
    resolution (impossible once random access to the lost list raises),
    but the shadow store it maintained from round one holds sound W/B
    bounds for everything seen so far, so NRA's sorted-only loop and
    halting rule (Theorem 8.4, unchanged) complete the query.  Returns
    ``(topk, rounds, halt_reason)``; the lost lists' streams report
    exhaustion, so the loop naturally runs over the survivors.  Honours
    the session budget like every engine loop.  ``lists`` restricts
    sorted access to the given lists (for callers whose sessions allow
    sorted access on a subset, like TAZ); default is all of them.
    """
    sorted_lists = (
        list(range(session.num_lists)) if lists is None else list(lists)
    )
    halt_reason = None
    topk: list = []
    while halt_reason is None:
        if session.budget_exceeded:
            topk, _ = store.current_topk()
            halt_reason = HaltReason.DEADLINE
            break
        rounds += 1
        progressed = False
        for i in sorted_lists:
            entry = session.sorted_access(i)
            if entry is None:
                continue
            progressed = True
            obj, grade = entry
            store.update_bottom(i, grade)
            store.record(obj, i, grade)
        if store.seen_count >= k:
            topk, m_k = store.current_topk()
            unseen_remain = store.seen_count < session.num_objects
            if not (unseen_remain and store.threshold > m_k):
                if store.find_viable_outside(topk, m_k) is None:
                    halt_reason = HaltReason.NO_VIABLE
        if halt_reason is None and not progressed:
            topk, _ = store.current_topk()
            halt_reason = HaltReason.EXHAUSTED
    return topk, rounds, halt_reason


def verify_against_oracle(
    result: TopKResult,
    true_fields: Mapping[Hashable, Sequence[float]],
    aggregation: AggregationFunction,
) -> None:
    """Referee a (possibly degraded) answer against full ground truth.

    Checks, raising ``AssertionError`` with a specific message on the
    first violation:

    * every returned item's ``[lower_bound, upper_bound]`` interval
      contains the object's true overall grade;
    * the certified factor holds: for every returned ``y`` and every
      excluded ``z``, ``theta * t(y) >= t(z)`` (with ``theta = 1`` for
      plain results);
    * a claimed-exact answer really is a true top-``k``: the smallest
      returned true grade is at least the largest excluded true grade.
    """
    truth = {
        obj: aggregation.aggregate(tuple(fields))
        for obj, fields in true_fields.items()
    }
    returned = [item.obj for item in result.items]
    returned_set = set(returned)
    for item in result.items:
        t = truth[item.obj]
        assert item.lower_bound <= t + 1e-12, (
            f"lower bound {item.lower_bound} exceeds true grade {t} "
            f"for {item.obj!r}"
        )
        assert item.upper_bound >= t - 1e-12, (
            f"upper bound {item.upper_bound} below true grade {t} "
            f"for {item.obj!r}"
        )
    if isinstance(result, DegradedResult):
        theta = result.certified_theta
        claims_exact = result.is_exact
    else:
        # plain results carry a DEADLINE certificate in extras; any
        # other plain halt claims exactness (the paper's halting rules)
        theta = float(result.extras.get("certified_theta", 1.0))
        if result.halt_reason == HaltReason.DEADLINE:
            claims_exact = result.extras.get("guarantee") == EXACT
        else:
            claims_exact = True
    if math.isinf(theta):
        return  # an infinite certificate promises nothing to check
    max_excluded = max(
        (t for obj, t in truth.items() if obj not in returned_set),
        default=float("-inf"),
    )
    for obj in returned:
        assert theta * truth[obj] >= max_excluded - 1e-12, (
            f"theta={theta} certificate violated: returned {obj!r} has "
            f"true grade {truth[obj]} but {max_excluded} was excluded"
        )
    if claims_exact and len(returned) >= result.k:
        min_returned = min(truth[obj] for obj in returned)
        assert min_returned >= max_excluded - 1e-12, (
            f"claimed-exact answer is wrong: returned grade "
            f"{min_returned} < excluded grade {max_excluded}"
        )
