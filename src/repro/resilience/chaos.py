"""Chaos harness: replicated server fleets you can SIGKILL mid-query.

:class:`ReplicaFleet` spawns ``r`` independent
:class:`~repro.transport.harness.ServerProcess` children, every one
serving the *same* persisted database (same tie order, same pages), and
assembles per-list :class:`~repro.resilience.replica.ReplicatedGradedSource`
groups whose replica ``j`` of list ``i`` is reached over the wire on
server ``j``.  Because replica streams are stateless pages, killing a
server mid-query exercises the real failure path -- a TCP connection
dying between frames -- while the group's failover keeps the query's
observable stream bit-identical.

The fleet is the referee's weapon rack: :meth:`kill` delivers SIGKILL
(no draining, no goodbye frame), :meth:`restart` brings a replica back
on the same port, and the context manager reaps everything even when
the test suite's SIGALRM deadline fires mid-test.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..middleware.database import Database
from ..middleware.errors import DatabaseError
from ..transport.harness import ServerProcess
from .breaker import CircuitBreakerPolicy
from .replica import ReplicatedGradedSource

__all__ = ["ReplicaFleet"]


class ReplicaFleet:
    """``r`` wire-protocol server processes serving one database.

    Parameters
    ----------
    database:
        The lists to serve; persisted once per replica (each child owns
        its copy -- no shared state whatsoever between replicas).
    replicas:
        Fleet size ``r >= 1``.
    latency, jitter, latency_seed:
        Server-side per-call latency model, applied to every replica
        (replica ``j`` is seeded ``latency_seed + j`` so the fleet's
        jitter is desynchronised but deterministic).
    startup_timeout:
        Per-child readiness deadline, also used by :meth:`restart`.
    """

    def __init__(
        self,
        database: Database,
        *,
        replicas: int = 2,
        latency: float = 0.0,
        jitter: float = 0.0,
        latency_seed: int = 0,
        startup_timeout: float = 30.0,
    ):
        if replicas < 1:
            raise DatabaseError(f"fleet needs >= 1 replica, got {replicas}")
        self._servers: list[ServerProcess] = []
        try:
            for j in range(replicas):
                self._servers.append(
                    ServerProcess(
                        database,
                        latency=latency,
                        jitter=jitter,
                        latency_seed=latency_seed + j,
                        startup_timeout=startup_timeout,
                    )
                )
        except BaseException:
            self.close()
            raise

    @property
    def servers(self) -> list[ServerProcess]:
        return list(self._servers)

    @property
    def num_replicas(self) -> int:
        return len(self._servers)

    def addresses(self) -> list[tuple[str, int]]:
        return [server.address for server in self._servers]

    def services(
        self,
        *,
        breaker_policy: CircuitBreakerPolicy | None = None,
        hedge_after: float | None = None,
        only_replicas: Sequence[int] | None = None,
        **client_kwargs,
    ) -> list[ReplicatedGradedSource]:
        """One replica group per served list, ready for
        :class:`~repro.services.session.AsyncAccessSession`.

        Each call opens fresh transport clients (``client_kwargs`` are
        forwarded to :func:`~repro.services.network.network_services`,
        e.g. ``retry=...``).  ``only_replicas`` restricts the groups to
        a subset of the fleet -- the way a test builds a one-replica
        group whose single server it then kills (permanent list loss).
        """
        from ..services.network import network_services

        chosen = (
            list(range(len(self._servers)))
            if only_replicas is None
            else list(only_replicas)
        )
        per_replica = [
            network_services(self._servers[j].address, **client_kwargs)
            for j in chosen
        ]
        groups = []
        for i, primary in enumerate(per_replica[0]):
            groups.append(
                ReplicatedGradedSource(
                    primary.name,
                    [sources[i] for sources in per_replica],
                    breaker_policy=breaker_policy,
                    hedge_after=hedge_after,
                )
            )
        return groups

    def kill(self, replica_index: int) -> None:
        """SIGKILL replica ``replica_index`` -- no draining, its open
        connections die mid-frame."""
        self._servers[replica_index].kill()

    def restart(self, replica_index: int) -> None:
        """Bring a killed replica back on its original port."""
        self._servers[replica_index].restart()

    def close(self) -> None:
        """Terminate every replica (idempotent)."""
        for server in self._servers:
            try:
                server.terminate()
            except Exception:  # pragma: no cover - defensive teardown
                pass

    def __enter__(self) -> "ReplicaFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        live = sum(1 for s in self._servers if s.process.poll() is None)
        return f"<ReplicaFleet r={len(self._servers)} live={live}>"
