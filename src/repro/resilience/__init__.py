"""Resilient query execution over unreliable autonomous services.

The paper's model assumes every list answers every access; this
package removes that assumption without touching the algorithms'
guarantees:

* :mod:`~repro.resilience.replica` -- replica groups with transparent
  failover, per-replica circuit breakers, and hedged requests, behind
  the ordinary single-source protocol;
* :mod:`~repro.resilience.breaker` -- the deterministic (tick-clocked,
  seeded-jitter) circuit breaker;
* :mod:`~repro.resilience.degraded` -- certified degraded-mode
  answers: when a whole list is lost, the engines finish on the
  survivors and report exactly what the answer is still worth
  (``exact`` or a certified theta), straight from the paper's W/B
  bound machinery;
* :mod:`~repro.resilience.chaos` -- the test/benchmark harness that
  SIGKILLs and restarts real server processes mid-query.

Per-query deadlines live in
:class:`~repro.middleware.cost.QueryBudget` (middleware, since the
sessions enforce them) and surface here through
:data:`~repro.core.result.HaltReason.DEADLINE` results carrying the
same certificates.
"""

from ..middleware.cost import QueryBudget
from .breaker import BreakerState, CircuitBreaker, CircuitBreakerPolicy
from .chaos import ReplicaFleet
from .degraded import (
    DegradedResult,
    certify,
    complete_with_sorted_only,
    degrade_result,
    finalize_certificates,
    verify_against_oracle,
)
from .replica import ReplicatedGradedSource

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "DegradedResult",
    "QueryBudget",
    "ReplicaFleet",
    "ReplicatedGradedSource",
    "certify",
    "complete_with_sorted_only",
    "degrade_result",
    "finalize_certificates",
    "verify_against_oracle",
]
