"""Replica groups: one logical graded list served by ``r`` replicas.

:class:`ReplicatedGradedSource` satisfies the
:class:`~repro.services.protocol.RemoteGradedSource` protocol, so it
plugs into :class:`~repro.services.session.AsyncAccessSession` exactly
like a single service -- but behind it sit any mix of
:class:`~repro.services.simulated.SimulatedListService` and
:class:`~repro.transport.client.NetworkGradedSource` replicas of the
*same* list.  Three mechanisms, all invisible to the charging model:

failover
    Every network-shaped operation is a *stateless, idempotent* page or
    batch request (the wrapper keeps the sorted-stream cursor itself,
    like the wire protocol's clients).  When the current replica fails
    with a :class:`~repro.middleware.errors.ServiceTimeoutError` /
    ``ServiceTransientError`` / ``ServiceUnavailableError``, the same
    request is re-issued verbatim against the next healthy replica --
    so a mid-stream failover resumes at the exact page boundary and the
    consumer sees a bit-identical stream.  Only when every replica has
    failed does the group raise
    :class:`~repro.middleware.errors.ReplicaGroupExhaustedError` (a
    ``ServiceUnavailableError``: the *group* is the unavailable
    service).

circuit breaking
    Each replica carries a :class:`~repro.resilience.breaker.CircuitBreaker`
    clocked by the group's request tick, so repeatedly-failing replicas
    are skipped for a deterministic cooldown instead of being retried
    on every request.  When every breaker is open, the replica whose
    cooldown expires soonest is force-probed -- the group never
    refuses to try at all.

hedging
    With ``hedge_after`` set, a request that has not completed within
    that many seconds speculatively fires the same request at the next
    candidate replica; the first success wins and the losers are
    cancelled.  A cancelled request served nothing, so nothing is
    charged -- the same speculation contract as the session's prefetch
    (and :meth:`~repro.middleware.access.AccessSession.columnar_view`
    reads).  Failures still fail over immediately, timer or not.

The charging equivalence is structural: the session charges accesses
when *it* consumes entries, and the group only ever returns data that a
single-service source would have returned for the same request.
Duplicated work on a losing replica is wall-clock, never model cost.
"""

from __future__ import annotations

import asyncio
from collections.abc import AsyncIterator, Sequence
from typing import Callable, Hashable

from ..middleware.access import ListCapabilities
from ..middleware.errors import (
    DatabaseError,
    ReplicaGroupExhaustedError,
    ServiceTimeoutError,
    ServiceTransientError,
    ServiceUnavailableError,
)
from ..obs.metrics import NULL_INSTRUMENT
from ..services.protocol import SortedPage
from .breaker import CircuitBreaker, CircuitBreakerPolicy

__all__ = ["ReplicatedGradedSource"]

#: failures that trigger failover to the next replica; anything else
#: (UnknownObjectError, WireFormatError, bugs) propagates immediately
_RETRYABLE = (
    ServiceTimeoutError,
    ServiceTransientError,
    ServiceUnavailableError,
)


class ReplicatedGradedSource:
    """``r`` replicas of one graded list behind the single-source
    protocol (see the module docstring).

    Parameters
    ----------
    name:
        The logical service name reported to the session and carried by
        raised errors.
    replicas:
        The replica sources, primary first.  All must agree on
        ``num_entries`` and on their capability vector (they claim to be
        the same list).
    breaker_policy:
        Per-replica circuit-breaker tuning; each replica's breaker is
        seeded with ``policy.seed + replica_index`` so cooldown jitter
        stays deterministic yet desynchronised.
    hedge_after:
        Seconds before a pending request speculatively hedges to the
        next candidate replica; ``None`` (default) disables hedging.
    obs:
        Optional :class:`~repro.obs.Observability` plane; failovers,
        hedges, hedge wins and breaker trips land in its registry
        (labelled by group name) in addition to the public counters.
    """

    def __init__(
        self,
        name: str,
        replicas: Sequence,
        *,
        breaker_policy: CircuitBreakerPolicy | None = None,
        hedge_after: float | None = None,
        obs=None,
    ):
        if not replicas:
            raise DatabaseError(f"replica group {name!r} has no replicas")
        if hedge_after is not None and hedge_after < 0:
            raise ValueError(
                f"hedge_after must be >= 0, got {hedge_after}"
            )
        self.name = name
        self._replicas = list(replicas)
        sizes = {int(r.num_entries) for r in self._replicas}
        if len(sizes) != 1:
            raise DatabaseError(
                f"replica group {name!r}: replicas disagree on N: "
                f"{sorted(sizes)}"
            )
        self._num_entries = sizes.pop()
        caps = {r.capabilities() for r in self._replicas}
        if len(caps) != 1:
            raise DatabaseError(
                f"replica group {name!r}: replicas disagree on capabilities"
            )
        self._capabilities = caps.pop()
        policy = breaker_policy or CircuitBreakerPolicy()
        self._breakers = [
            CircuitBreaker(
                CircuitBreakerPolicy(
                    failure_threshold=policy.failure_threshold,
                    cooldown_ticks=policy.cooldown_ticks,
                    jitter=policy.jitter,
                    seed=policy.seed + j,
                )
            )
            for j in range(len(self._replicas))
        ]
        self._hedge_after = hedge_after
        self._preferred = 0
        self._ticks = 0
        #: requests that needed at least one failover (observability)
        self.failovers = 0
        #: hedge timers that fired (a speculative duplicate was sent)
        self.hedges_fired = 0
        #: requests won by a hedged (non-first) attempt
        self.hedge_wins = 0
        if obs is None:
            self._m_failovers = self._m_hedges = NULL_INSTRUMENT
            self._m_hedge_wins = self._m_breaker_trips = NULL_INSTRUMENT
        else:
            labels = {"group": name}
            self._m_failovers = obs.counter(
                "repro_replica_failovers_total", labels,
                help="requests re-issued on another replica",
            )
            self._m_hedges = obs.counter(
                "repro_replica_hedges_total", labels,
                help="hedge timers fired (speculative duplicates)",
            )
            self._m_hedge_wins = obs.counter(
                "repro_replica_hedge_wins_total", labels,
                help="requests won by a hedged attempt",
            )
            self._m_breaker_trips = obs.counter(
                "repro_replica_breaker_trips_total", labels,
                help="circuit breakers tripped open",
            )

    # ------------------------------------------------------------------
    # protocol surface
    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def supports_sorted(self) -> bool:
        return self._capabilities.sorted_allowed

    @property
    def supports_random(self) -> bool:
        return self._capabilities.random_allowed

    def capabilities(self) -> ListCapabilities:
        return self._capabilities

    @property
    def replicas(self) -> list:
        return list(self._replicas)

    @property
    def breakers(self) -> list[CircuitBreaker]:
        return list(self._breakers)

    # ------------------------------------------------------------------
    # candidate scheduling
    # ------------------------------------------------------------------
    def _candidate_order(self, tick: int) -> list[int]:
        """Replica indices to try, preferred replica first, filtered by
        breaker state.  When every breaker refuses, force-probe the one
        whose cooldown expires soonest (ties to the lower index)."""
        r = len(self._replicas)
        order = [(self._preferred + d) % r for d in range(r)]
        allowed = [j for j in order if self._breakers[j].allow(tick)]
        if allowed:
            return allowed
        soonest = min(order, key=lambda j: (self._breakers[j].reopen_in(tick), j))
        return [soonest]

    async def _execute(self, op: Callable, kind: str):
        """Run ``op(replica)`` with failover, breakers, and optional
        hedging; returns the first successful result."""
        tick = self._ticks
        self._ticks += 1
        order = self._candidate_order(tick)
        pending: dict[asyncio.Future, int] = {}
        hedged: set[asyncio.Future] = set()
        next_candidate = 0
        attempts = 0
        last_exc: BaseException | None = None

        def spawn(as_hedge: bool = False) -> None:
            nonlocal next_candidate
            j = order[next_candidate]
            next_candidate += 1
            task = asyncio.ensure_future(op(self._replicas[j]))
            pending[task] = j
            if as_hedge:
                hedged.add(task)

        async def settle(winner_result=None, error: BaseException | None = None):
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            if error is not None:
                raise error
            return winner_result

        spawn()
        while pending:
            timeout = (
                self._hedge_after
                if (
                    self._hedge_after is not None
                    and next_candidate < len(order)
                )
                else None
            )
            done, _ = await asyncio.wait(
                set(pending),
                timeout=timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if not done:
                # hedge timer: speculatively duplicate the request on
                # the next candidate (losers are cancelled uncharged)
                self.hedges_fired += 1
                self._m_hedges.inc()
                spawn(as_hedge=True)
                continue
            for task in done:
                j = pending.pop(task)
                if task.cancelled():
                    continue
                exc = task.exception()
                if exc is None:
                    self._breakers[j].record_success()
                    self._preferred = j
                    if task in hedged:
                        self.hedge_wins += 1
                        self._m_hedge_wins.inc()
                    return await settle(winner_result=task.result())
                if isinstance(exc, _RETRYABLE):
                    attempts += getattr(exc, "attempts", 1)
                    opens_before = self._breakers[j].opens
                    self._breakers[j].record_failure(tick)
                    if self._breakers[j].opens > opens_before:
                        self._m_breaker_trips.inc()
                    last_exc = exc
                    if next_candidate < len(order):
                        self.failovers += 1
                        self._m_failovers.inc()
                        spawn()
                    continue
                # non-retryable (unknown object, wire corruption, bug):
                # propagate immediately, cancelling any hedges
                return await settle(error=exc)
        raise ReplicaGroupExhaustedError(
            self.name, max(attempts, 1)
        ) from last_exc

    # ------------------------------------------------------------------
    # the access operations
    # ------------------------------------------------------------------
    async def page(self, start: int, count: int) -> SortedPage:
        """One stateless page ``[start, start + count)`` of the sorted
        list, served by whichever replica answers first/healthily."""
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return await self._execute(
            lambda r: r.page(start, count), "page"
        )

    async def sorted_access_stream(
        self, batch_size: int
    ) -> AsyncIterator[SortedPage]:
        """Client-side cursor over stateless pages: a replica dying
        mid-stream resumes on the next one at the exact page boundary,
        so the stream is bit-identical to a failure-free run."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        position = 0
        while position < self._num_entries:
            page = await self.page(position, batch_size)
            if not page.objects:
                break
            position += len(page.objects)
            yield page

    async def random_access_batch(
        self, objects: Sequence[Hashable]
    ) -> list[float]:
        return await self._execute(
            lambda r: r.random_access_batch(list(objects)), "random"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ReplicatedGradedSource {self.name!r} "
            f"r={len(self._replicas)} n={self._num_entries} "
            f"failovers={self.failovers}>"
        )
