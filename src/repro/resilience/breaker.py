"""Deterministic circuit breaker for replica health tracking.

A breaker guards one replica inside a
:class:`~repro.resilience.replica.ReplicatedGradedSource`.  It follows
the classic three-state machine -- CLOSED (healthy), OPEN (failing;
requests are not attempted), HALF_OPEN (cooldown elapsed; one probe
request is allowed through) -- but its clock is the *group's request
tick counter*, not wall time: failure tests must be bit-reproducible,
and wall-clock cooldowns are anything but.  Ticks advance once per
logical group request, so "cooldown of 8" means "skip this replica for
the next 8 group requests", regardless of scheduling jitter.

The only randomness is an optional cooldown jitter drawn from a
per-breaker seeded RNG -- it desynchronises the half-open probes of
breakers that opened on the same tick (the retry-storm fix applied at
the replica level) while staying deterministic under a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["BreakerState", "CircuitBreakerPolicy", "CircuitBreaker"]


class BreakerState:
    """Breaker states (string constants, mirroring
    :class:`~repro.core.result.HaltReason`'s style)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Tuning knobs for one breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip CLOSED -> OPEN.  A failure while
        HALF_OPEN re-opens immediately (the probe failed).
    cooldown_ticks:
        Group request ticks an OPEN breaker waits before allowing the
        half-open probe.
    jitter:
        Fractional cooldown jitter in ``[0, 1]``: the actual cooldown is
        ``cooldown_ticks * (1 + U(0, jitter))`` with ``U`` drawn from the
        seeded per-breaker RNG.
    seed:
        Seed of the jitter RNG (deterministic schedules under a fixed
        seed).
    """

    failure_threshold: int = 3
    cooldown_ticks: int = 8
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_ticks < 1:
            raise ValueError(
                f"cooldown_ticks must be >= 1, got {self.cooldown_ticks}"
            )
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")


class CircuitBreaker:
    """One replica's health state machine (see the module docstring).

    The caller supplies the current group tick to :meth:`allow` and
    :meth:`record_failure`; :meth:`record_success` closes the breaker
    unconditionally.
    """

    def __init__(self, policy: CircuitBreakerPolicy | None = None):
        self.policy = policy or CircuitBreakerPolicy()
        self._rng = random.Random(self.policy.seed)
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self._reopen_at = 0.0
        #: total CLOSED/HALF_OPEN -> OPEN transitions (observability)
        self.opens = 0

    def allow(self, tick: int) -> bool:
        """May a request be sent to this replica at group tick ``tick``?

        An OPEN breaker whose cooldown has elapsed transitions to
        HALF_OPEN and allows exactly the probe that caused the
        transition; the probe's outcome (:meth:`record_success` /
        :meth:`record_failure`) decides what happens next.
        """
        if self.state == BreakerState.OPEN:
            if tick >= self._reopen_at:
                self.state = BreakerState.HALF_OPEN
                return True
            return False
        return True

    def reopen_in(self, tick: int) -> float:
        """Ticks until the half-open probe becomes allowed (0 when the
        breaker is not OPEN).  Used to pick the least-recently-failed
        replica when every breaker is open."""
        if self.state != BreakerState.OPEN:
            return 0.0
        return max(0.0, self._reopen_at - tick)

    def record_success(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0

    def record_failure(self, tick: int) -> None:
        """A request (or half-open probe) against this replica failed at
        group tick ``tick``."""
        self.consecutive_failures += 1
        if (
            self.state == BreakerState.HALF_OPEN
            or self.consecutive_failures >= self.policy.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opens += 1
            cooldown = float(self.policy.cooldown_ticks)
            if self.policy.jitter:
                cooldown *= 1.0 + self._rng.uniform(0.0, self.policy.jitter)
            self._reopen_at = tick + cooldown

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CircuitBreaker {self.state} "
            f"failures={self.consecutive_failures} opens={self.opens}>"
        )
