"""The intermittent algorithm -- Section 8.4's strawman for CA.

"The intermittent algorithm does random accesses in the same time order
as TA does, but simply delays them, so that it does random accesses every
``h = floor(cR/cS)`` steps."

Concretely: sorted access proceeds in lockstep like TA/NRA; the random
accesses TA would have performed (resolve every object as it is first
seen, FIFO) are queued, and every ``h`` rounds the backlog is drained in
order.  Halting uses the same bound bookkeeping as NRA/CA -- the
algorithm stops mid-drain as soon as the halting condition holds, which
is the most charitable reading of the strawman.

On the Figure 5 database this still burns ``~ 2`` random accesses on each
of the ``3(h-2)`` decoy objects that entered the backlog before the
winner, while CA jumps straight to the winner via its ``B``-greedy
choice -- the access-ordering insight the paper highlights: *when* you
random-access matters less than *whom* you random-access.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession
from .base import QueryError, TopKAlgorithm
from .bounds import CandidateStore
from .result import HaltReason, RankedItem, TopKResult

__all__ = ["IntermittentAlgorithm"]


class IntermittentAlgorithm(TopKAlgorithm):
    """TA's random accesses, delayed into batches every ``h`` rounds."""

    name = "Intermittent"

    def __init__(self, h: int | None = None):
        if h is not None and h < 1:
            raise ValueError(f"h must be >= 1, got {h}")
        self.h = h

    def _period(self, session: AccessSession) -> int:
        if self.h is not None:
            return self.h
        if session.cost_model.ratio < 1.0:
            raise QueryError(
                "the intermittent algorithm assumes cR >= cS, got "
                f"cR/cS = {session.cost_model.ratio:g}"
            )
        return session.cost_model.h

    def _run(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        m = session.num_lists
        h = self._period(session)
        store = CandidateStore(aggregation, m, k)
        backlog: deque[Hashable] = deque()
        enqueued: set[Hashable] = set()
        rounds = 0
        halt_reason = None
        topk: list = []

        def halted() -> bool:
            nonlocal topk
            if store.seen_count < k:
                return False
            current, m_k = store.current_topk()
            unseen_remain = store.seen_count < session.num_objects
            if unseen_remain and store.threshold > m_k:
                return False
            if store.find_viable_outside(current, m_k) is not None:
                return False
            topk = current
            return True

        while halt_reason is None:
            rounds += 1
            progressed = False
            for i in range(m):
                entry = session.sorted_access(i)
                if entry is None:
                    continue
                progressed = True
                obj, grade = entry
                store.update_bottom(i, grade)
                store.record(obj, i, grade)
                if obj not in enqueued:
                    enqueued.add(obj)
                    backlog.append(obj)

            if progressed and rounds % h == 0:
                # drain the TA-order backlog, but stop as soon as the
                # halting condition is reached
                while backlog and halt_reason is None:
                    obj = backlog.popleft()
                    missing = [
                        i for i in range(m) if i not in store.fields[obj]
                    ]
                    for i in missing:
                        store.record(obj, i, session.random_access(i, obj))
                    if missing and halted():
                        halt_reason = HaltReason.NO_VIABLE

            if halt_reason is None and halted():
                halt_reason = HaltReason.NO_VIABLE
            if halt_reason is None and not progressed:
                topk, _ = store.current_topk()
                halt_reason = HaltReason.EXHAUSTED

        items: list[RankedItem] = []
        for obj in topk:
            items.append(
                RankedItem(
                    obj,
                    store.exact_grade(obj),
                    store.w[obj],
                    store.b_value(obj),
                )
            )
        items.sort(key=lambda it: (-it.lower_bound, -it.upper_bound))
        return TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=halt_reason,
            max_buffer_size=store.seen_count,
            extras={"h": h, "backlog_left": len(backlog)},
        )
