"""TAZ -- TA under restricted sorted access (Section 7).

In the Bruno-Gravano-Marian restaurant scenario, only some lists (the set
``Z``) can be sorted-accessed; the rest (prices, distances) answer random
probes only.  TAZ sorted-accesses the ``Z`` lists in parallel, resolves
every seen object by random access everywhere, and uses the threshold
``tau = t(x_1, ..., x_m)`` with ``x_i = 1`` for ``i`` outside ``Z``.

Theorem 7.1: TAZ is instance optimal among no-wild-guess algorithms
restricted to sorted access on ``Z``, with (tight) ratio
``m' + m'(m-1) cR/cS`` where ``m' = |Z|``.  But Example 7.3 (our
``benchmarks/bench_fig3_taz.py``) shows the distinctness-property analogue
of Theorem 6.5 fails: the fixed ``x_i = 1`` makes the threshold
arbitrarily conservative, and TAZ may scan every list to the end
(footnote 14's halting case, reported as ``halt_reason='exhausted'``).

Implementation note: TAZ is TA with the sorted-access list set taken from
the session's capabilities, so it can be run directly on a session built
by :meth:`~repro.middleware.access.AccessSession.sorted_only_on`.  With
``|Z| = 1`` it coincides with the TA-Adapt algorithm of Bruno et al.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..middleware.access import AccessSession
from .base import QueryError
from .ta import ThresholdAlgorithm

__all__ = ["RestrictedSortedAccessTA"]


class RestrictedSortedAccessTA(ThresholdAlgorithm):
    """TA over the sorted-accessible subset ``Z`` of lists.

    ``z`` may be given explicitly (and is validated against the session's
    capabilities) or left ``None`` to use every list the session permits.
    """

    name = "TAZ"
    requires_sorted_all_lists = False

    def __init__(self, z: Sequence[int] | None = None, remember_seen: bool = False):
        super().__init__(remember_seen=remember_seen)
        self.z = tuple(sorted(set(z))) if z is not None else None
        self.name = "TAZ" if z is None else f"TAZ(Z={list(self.z)})"

    def _lists_for_sorted_access(self, session: AccessSession) -> Sequence[int]:
        allowed = session.sorted_lists
        if self.z is None:
            if not allowed:
                raise QueryError("TAZ needs at least one sorted-accessible list")
            return allowed
        allowed_set = set(allowed)
        bad = [i for i in self.z if i not in allowed_set]
        if bad:
            raise QueryError(
                f"TAZ was configured with Z={list(self.z)} but the session "
                f"forbids sorted access on {bad}"
            )
        return self.z
