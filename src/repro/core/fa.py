"""FA -- Fagin's Algorithm (Section 3).

Phase 1: sorted access in parallel to all ``m`` lists until at least ``k``
objects have been seen in *every* list ("matches").  Phase 2: random
access to fill in every missing field of every object seen in phase 1.
Return the ``k`` best by overall grade.

FA is correct for every monotone aggregation function, and on
probabilistically independent lists its middleware cost is
``O(N^{(m-1)/m} k^{1/m})`` with high probability -- the scaling that
``benchmarks/bench_fa_scaling.py`` reproduces.  Its two structural
weaknesses, which TA removes, are measured by the result's fields:

* the phase-1 buffer must remember *every* object seen so far
  (``max_buffer_size`` grows with ``N``; contrast Theorem 4.2), and
* the access pattern is oblivious to the aggregation function, so for
  e.g. ``max`` or constant functions FA does arbitrarily more work than
  necessary.
"""

from __future__ import annotations

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession
from .base import TopKAlgorithm, TopKBuffer
from .result import HaltReason, RankedItem, TopKResult

__all__ = ["FaginAlgorithm"]


class FaginAlgorithm(TopKAlgorithm):
    """The two-phase match-then-resolve algorithm."""

    name = "FA"

    def _run(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        m = session.num_lists
        fields: dict = {}
        matches = 0
        rounds = 0
        halt_reason = HaltReason.THRESHOLD

        # Phase 1: lockstep sorted access until k full matches.
        while matches < k:
            rounds += 1
            progressed = False
            for i in range(m):
                entry = session.sorted_access(i)
                if entry is None:
                    continue
                progressed = True
                obj, grade = entry
                known = fields.setdefault(obj, {})
                if i not in known:
                    known[i] = grade
                    if len(known) == m:
                        matches += 1
            if not progressed:
                halt_reason = HaltReason.EXHAUSTED
                break

        # Phase 2: resolve every seen object by random access.
        buffer = TopKBuffer(k)
        for obj, known in fields.items():
            grades: list[float] = []
            for i in range(m):
                if i in known:
                    grades.append(known[i])
                else:
                    grades.append(session.random_access(i, obj))
            buffer.offer(obj, aggregation.aggregate(tuple(grades)))

        items = [
            RankedItem(obj, grade, grade, grade)
            for obj, grade in buffer.items_desc()
        ]
        return TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=halt_reason,
            max_buffer_size=len(fields),
            extras={"matches": matches},
        )
