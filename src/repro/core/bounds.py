"""Candidate bookkeeping for the bound-based algorithms (NRA, CA,
Stream-Combine, the intermittent strawman).

Section 8 algorithms maintain, for every seen object ``R`` with known
fields ``S(R)``:

* ``W(R)`` -- the lower bound: unknown fields replaced by 0
  (Proposition 8.1), and
* ``B(R)`` -- the upper bound: unknown fields replaced by the current
  bottom values (Proposition 8.2).

Halting needs, per round: the current top-``k`` by ``W`` (ties broken by
``B``, per the paper's step 1), the value ``M_k`` (the k-th largest
``W``), and whether any *viable* object -- ``B(R) > M_k`` -- exists
outside the top-``k``.  Remark 8.7 observes a naive implementation
re-evaluates ``B`` for every candidate every round (``Omega(d^2 m)``
updates).  This store instead keeps two lazily-invalidated max-heaps:

``W``-heap
    keyed by the exact current ``W`` (pushed on every field discovery;
    stale versions dropped on pop).
``B``-heap
    keyed by a *cached* ``B``, computed when the entry was pushed.  Since
    bottoms only decrease, a cached ``B`` upper-bounds the fresh value,
    so the heap top bounds the best possible ``B``; popped entries are
    re-validated lazily.  Crucially, ``M_k`` is non-decreasing (``W``
    values only grow and the candidate set only widens) while every
    object's ``B`` is non-increasing, so a candidate whose fresh
    ``B <= M_k`` can be *discarded permanently* -- it can never become
    viable again.  This prune is what keeps per-round work near
    ``O((k + new fields) log N)`` instead of ``O(candidates)``.

``naive`` mode disables the heaps and rescans everything per check, both
as a correctness oracle for the tests and for the Remark 8.7 ablation
benchmark.

Two additions serve the chunked execution engines
(:class:`ArrayCandidateStore` below; see :mod:`repro.core.nra`,
:mod:`repro.core.ca` and :mod:`repro.core.stream_combine` for the
engines themselves):

``current_mk``
    the exact value ``M_k`` (the k-th largest ``W``), maintained
    incrementally in O(log k) per ``W`` update.  ``M_k`` as a *value*
    is tie-independent even though the *membership* of ``T_k`` is not,
    so the chunked NRA/CA loops use it to gate the per-round halting
    check: while ``t(bottoms) > M_k`` (and unseen objects remain)
    halting is impossible and neither ``current_topk`` nor the viability
    scan needs to run.  The multiset of the k largest ``W`` values is
    preserved by every update (``W`` never decreases), which makes the
    lazy min-heap below exact, not heuristic.

``_discovery``
    the order of first sorted appearance per seen object, used by
    :meth:`CandidateStore.best_random_access_target` to break ``B``
    ties *canonically*.  Heap pop order is an accident of cached values
    and refresh history (e.g. which halting checks ran), so it must not
    decide which object CA random-accesses; discovery order is a
    property of the database alone, identical across backends and
    bookkeeping modes.
"""

from __future__ import annotations

import heapq
from typing import Hashable

import numpy as np

from ..aggregation.base import AggregationFunction

__all__ = ["CandidateStore", "ArrayCandidateStore"]


class CandidateStore:
    """Lower/upper-bound bookkeeping over the seen objects."""

    def __init__(
        self,
        aggregation: AggregationFunction,
        m: int,
        k: int,
        naive: bool = False,
    ):
        self.t = aggregation
        self.m = m
        self.k = k
        self.naive = naive
        self.bottoms = [1.0] * m
        self.fields: dict[Hashable, dict[int, float]] = {}
        self.w: dict[Hashable, float] = {}
        self._version: dict[Hashable, int] = {}
        self._w_heap: list[tuple[float, int, Hashable, int]] = []
        self._b_heap: list[tuple[float, int, Hashable, int]] = []
        self._seq = 0
        self._never_viable: set[Hashable] = set()
        #: discovery index per seen object (order of first sorted
        #: appearance).  Canonical tie-break key for
        #: :meth:`best_random_access_target`; identical across backends
        #: because both consume sorted entries in the same order.
        self._discovery: dict[Hashable, int] = {}
        #: number of B evaluations performed (for the bookkeeping
        #: ablation).  NOTE: backend-dependent by design -- the columnar
        #: engines' M_k gate, witness shortcut, and lazy-heap pruning
        #: legitimately skip evaluations the scalar loop performs, so
        #: compare this metric only between runs on the same backend
        #: (results and AccessStats are backend-identical; this internal
        #: work counter is not).
        self.b_evaluations = 0
        # incremental M_k: lazy min-heap over the k largest W values
        self._mk_heap: list[tuple[float, int, Hashable]] = []
        self._mk_members: dict[Hashable, float] = {}

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update_bottom(self, list_index: int, grade: float) -> None:
        self.bottoms[list_index] = grade

    def record(self, obj: Hashable, list_index: int, grade: float) -> bool:
        """Record a discovered field; returns True if it was new."""
        known = self.fields.setdefault(obj, {})
        if list_index in known:
            return False
        if not known:
            self._discovery[obj] = len(self._discovery)
        known[list_index] = grade
        self.w[obj] = self.t.worst_case(known, self.m)
        version = self._version.get(obj, 0) + 1
        self._version[obj] = version
        if not self.naive:
            self._seq += 1
            heapq.heappush(
                self._w_heap, (-self.w[obj], self._seq, obj, version)
            )
            self._seq += 1
            heapq.heappush(
                self._b_heap, (-self.b_value(obj), self._seq, obj, version)
            )
            self._mk_note(obj, self.w[obj])
        return True

    # ------------------------------------------------------------------
    # incremental M_k (k-th largest W; see module docstring)
    # ------------------------------------------------------------------
    def _mk_note(self, obj: Hashable, w: float) -> None:
        members = self._mk_members
        current = members.get(obj)
        if current is not None:
            if w != current:
                members[obj] = w
                self._seq += 1
                heapq.heappush(self._mk_heap, (w, self._seq, obj))
        elif len(members) < self.k:
            members[obj] = w
            self._seq += 1
            heapq.heappush(self._mk_heap, (w, self._seq, obj))
        else:
            floor = self._mk_clean()
            if w > floor:
                _, _, evicted = heapq.heappop(self._mk_heap)
                del members[evicted]
                members[obj] = w
                self._seq += 1
                heapq.heappush(self._mk_heap, (w, self._seq, obj))

    def _mk_clean(self) -> float:
        """Drop stale heap roots; return the current smallest member W."""
        heap = self._mk_heap
        members = self._mk_members
        while heap:
            w, _, obj = heap[0]
            if members.get(obj) == w:
                return w
            heapq.heappop(heap)
        return float("-inf")

    def current_mk(self) -> float:
        """``M_k``, the k-th largest ``W`` over all seen objects
        (``-inf`` while fewer than ``k`` objects have been seen).

        Identical to the ``m_k`` returned by :meth:`current_topk` -- the
        value is tie-independent -- but O(log k) amortised instead of
        O(k log N) per call, so the batched loops use it to gate the
        full halting check.
        """
        if len(self._mk_members) < self.k:
            return float("-inf")
        return self._mk_clean()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def seen_count(self) -> int:
        return len(self.fields)

    @property
    def threshold(self) -> float:
        """``t(bottoms)`` -- the (virtual) ``B`` of any unseen object."""
        return self.t.threshold(self.bottoms)

    def b_value(self, obj: Hashable) -> float:
        """Fresh upper bound ``B(obj)`` under the current bottoms."""
        self.b_evaluations += 1
        return self.t.best_case(self.fields[obj], self.bottoms)

    def fully_known(self, obj: Hashable) -> bool:
        return len(self.fields[obj]) == self.m

    def exact_grade(self, obj: Hashable) -> float | None:
        """``t(obj)`` if every field is known, else ``None``."""
        if self.fully_known(obj):
            return self.w[obj]
        return None

    # ------------------------------------------------------------------
    # the per-round halting queries
    # ------------------------------------------------------------------
    def current_topk(self) -> tuple[list[Hashable], float]:
        """The current top-``k`` list ``T_k`` (by ``W``, ties by fresh
        ``B``) and ``M_k``, the k-th largest ``W``.

        When fewer than ``k`` objects have been seen, returns all of them
        with ``M_k = -inf``.
        """
        if self.naive:
            return self._current_topk_naive()
        k = self.k
        popped: list[tuple[float, int, Hashable, int]] = []
        valid: list[tuple[float, int, Hashable, int]] = []
        chosen_objs: set[Hashable] = set()
        while self._w_heap:
            entry = heapq.heappop(self._w_heap)
            neg_w, _, obj, version = entry
            if version != self._version.get(obj) or obj in chosen_objs:
                continue  # stale; drop forever
            chosen_objs.add(obj)
            valid.append(entry)
            popped.append(entry)
            if len(valid) == k:
                cutoff = -neg_w
                # pull in boundary ties (equal W) for B-based tie-breaking
                while self._w_heap and -self._w_heap[0][0] >= cutoff:
                    tie = heapq.heappop(self._w_heap)
                    if (
                        tie[3] != self._version.get(tie[2])
                        or tie[2] in chosen_objs
                    ):
                        continue
                    chosen_objs.add(tie[2])
                    valid.append(tie)
                    popped.append(tie)
                break
        for entry in popped:
            heapq.heappush(self._w_heap, entry)
        if len(valid) <= k:
            objs = [e[2] for e in valid]
            m_k = -valid[-1][0] if len(valid) == k else float("-inf")
            return objs, m_k
        cutoff = -valid[k - 1][0]
        sure = [e[2] for e in valid if -e[0] > cutoff]
        boundary = [e[2] for e in valid if -e[0] == cutoff]
        boundary.sort(key=lambda o: -self.b_value(o))
        return sure + boundary[: k - len(sure)], cutoff

    def _current_topk_naive(self) -> tuple[list[Hashable], float]:
        ranked = sorted(
            self.w, key=lambda o: (-self.w[o], -self.b_value(o))
        )
        chosen = ranked[: self.k]
        if len(chosen) < self.k:
            return chosen, float("-inf")
        return chosen, self.w[chosen[-1]]

    def find_viable_outside(
        self, topk: list[Hashable], m_k: float
    ) -> tuple[Hashable, float] | None:
        """Some seen object outside ``topk`` with fresh ``B > M_k``, or
        ``None`` (then halting condition (b) holds for seen objects).

        Permanently discards candidates whose fresh ``B <= M_k`` (see the
        module docstring for why that is sound).
        """
        if self.naive:
            topk_set = set(topk)
            for obj in self.fields:
                if obj in topk_set:
                    continue
                b = self.b_value(obj)
                if b > m_k:
                    return obj, b
            return None
        topk_set = set(topk)
        pushback: list[tuple[float, int, Hashable, int]] = []
        found: tuple[Hashable, float] | None = None
        while self._b_heap:
            neg_b, _, obj, version = self._b_heap[0]
            if version != self._version.get(obj) or obj in self._never_viable:
                heapq.heappop(self._b_heap)
                continue
            if -neg_b <= m_k:
                # cached B upper-bounds fresh B for every remaining entry
                break
            entry = heapq.heappop(self._b_heap)
            fresh = self.b_value(obj)
            if fresh <= m_k:
                self._never_viable.add(obj)
                continue
            self._seq += 1
            refreshed = (-fresh, self._seq, obj, version)
            if obj in topk_set:
                pushback.append(refreshed)
                continue
            found = (obj, fresh)
            pushback.append(refreshed)
            break
        for entry in pushback:
            heapq.heappush(self._b_heap, entry)
        return found

    def best_random_access_target(self, m_k: float) -> Hashable | None:
        """CA's step 2: the viable seen object with missing fields whose
        fresh ``B`` is largest; ``None`` triggers the escape clause.

        Viability here is over *all* seen objects (the paper does not
        exclude the current top-``k``: its members usually have missing
        fields and the largest ``B`` values).  The paper breaks ``B``
        ties arbitrarily; this store breaks them *canonically*, by
        earliest discovery (first sorted appearance, see
        :attr:`_discovery`).  Canonical matters: the chosen target
        decides which random accesses are charged, so the choice must
        not depend on incidental heap arrangement -- the naive oracle,
        the lazy scalar loop, and the chunked engines (whose
        witness-gated halting checks legitimately skip some of the
        ``find_viable_outside`` calls that refresh cached heap entries)
        must all pick the same object.
        """
        if self.naive:
            # first strict maximum in fields-iteration (= discovery) order
            best_obj, best_b = None, m_k
            for obj in self.fields:
                if self.fully_known(obj):
                    continue
                b = self.b_value(obj)
                if b > best_b:
                    best_obj, best_b = obj, b
            return best_obj
        pushback: list[tuple[float, int, Hashable, int]] = []
        best: tuple[float, int, Hashable] | None = None
        while self._b_heap:
            neg_b, _, obj, version = self._b_heap[0]
            if version != self._version.get(obj) or obj in self._never_viable:
                heapq.heappop(self._b_heap)
                continue
            cached = -neg_b
            # strict <: candidates tied with the current best at
            # cached == fresh == best must still be examined
            if cached <= m_k or (best is not None and cached < best[0]):
                break
            heapq.heappop(self._b_heap)
            fresh = self.b_value(obj)
            if fresh <= m_k:
                self._never_viable.add(obj)
                continue
            self._seq += 1
            pushback.append((-fresh, self._seq, obj, version))
            if self.fully_known(obj):
                continue
            d = self._discovery[obj]
            if (
                best is None
                or fresh > best[0]
                or (fresh == best[0] and d < best[1])
            ):
                best = (fresh, d, obj)
        for entry in pushback:
            heapq.heappush(self._b_heap, entry)
        return best[2] if best is not None else None


class ArrayCandidateStore(CandidateStore):
    """Row-keyed, array-backed candidate store for the chunked engines
    of NRA, CA and Stream-Combine.

    Candidates are row indices into an ``(N, m)`` float64 field matrix
    (NaN = unknown) that the engines fill with one vectorised scatter per
    chunk instead of per-entry dict updates.  Only the members the
    halting machinery reads (``b_value`` / ``fully_known`` /
    ``exact_grade`` / ``seen_count``) are overridden; the lazy heaps,
    the incremental ``M_k`` tracker and ``find_viable_outside`` work
    unchanged because they only ever touch candidates through those
    hooks.  ``fields`` dicts and ``_discovery`` are *not* maintained --
    the scalar reference loops keep the dict store, and the chunked CA
    engine selects its phase targets through its own discovery-ordered
    candidate array (the vectorised equivalent of
    :meth:`CandidateStore.best_random_access_target`; see
    :mod:`repro.core.ca`) rather than through the heap scan.

    :meth:`resolve_row_fields` serves CA's random-access phase: it
    replays, against the field matrix, the exact per-field ``record``
    sequence the scalar loop performs when it resolves the chosen
    target (intermediate ``W`` recomputations, version bumps, heap
    pushes, ``M_k`` notes), so every later heap decision is
    order-identical to the scalar run.
    """

    def __init__(
        self,
        aggregation: AggregationFunction,
        m: int,
        k: int,
        num_rows: int,
    ):
        super().__init__(aggregation, m, k, naive=False)
        self.field_matrix = np.full((num_rows, m), np.nan, dtype=np.float64)
        self.seen_count_value = 0
        #: first-block size for the blocked viability scan (adapted to
        #: what the previous scan needed; see find_viable_outside)
        self._viable_scan_hint = k + 1

    @property
    def seen_count(self) -> int:
        return self.seen_count_value

    def b_value(self, row) -> float:
        """Fresh ``B`` from the field matrix (bitwise equal to the dict
        store's ``best_case`` substitution)."""
        self.b_evaluations += 1
        bottoms = self.bottoms
        vec = self.field_matrix[row].tolist()
        return self.t.aggregate(
            tuple(
                bottoms[j] if g != g else g  # NaN check via g != g
                for j, g in enumerate(vec)
            )
        )

    def fully_known(self, row) -> bool:
        vec = self.field_matrix[row]
        return not np.isnan(vec).any()

    def exact_grade(self, row) -> float | None:
        if self.fully_known(row):
            return self.w[row]
        return None

    def find_viable_outside(
        self, topk: list, m_k: float
    ) -> tuple | None:
        """Blocked-vectorised form of the lazy ``B``-heap scan.

        The scalar scan pops one heap entry at a time and re-evaluates
        its fresh ``B`` through a per-row :meth:`b_value` call -- for
        the chunked engines, that is one Python-level aggregation per
        top-k member per full halting check.  Here live entries whose
        cached ``B`` exceeds ``M_k`` are popped in blocks and
        re-evaluated with one ``aggregate_batch`` over the field matrix
        (bottoms substituted for NaN), exactly like CA's phase-target
        selection.  Heap pop order is preserved, so the first fresh-
        viable row outside ``topk`` -- the returned witness -- is the
        same entry the scalar scan would have found; entries past it in
        the same block are merely refreshed (their cached keys only
        tighten, which is always sound) and the ``fresh <= M_k``
        discard is identical.  Outputs, halting decisions and
        ``AccessStats`` are unchanged (differential-tested); only the
        per-check Python work shrinks.

        Block sizing is adaptive: the first block matches what the
        *previous* scan needed (NRA's rare full checks wade through
        thousands of cached-viable entries; CA's witness-gated checks
        typically need a few dozen; over-evaluating would add work, not
        remove it), and subsequent blocks grow geometrically when the
        guess falls short.
        """
        heap = self._b_heap
        versions = self._version
        never = self._never_viable
        topk_set = set(topk)
        matrix = self.field_matrix
        bottoms_row = np.asarray(self.bottoms, dtype=np.float64)
        pushback: list[tuple[float, int, object, int]] = []
        found: tuple | None = None
        block_size = max(self._viable_scan_hint, 1)
        examined = 0
        while found is None:
            block: list[tuple[float, int, object, int]] = []
            while heap and len(block) < block_size:
                neg_b, _, row, version = heap[0]
                if version != versions.get(row) or row in never:
                    heapq.heappop(heap)
                    continue
                if -neg_b <= m_k:
                    break
                block.append(heapq.heappop(heap))
            if not block:
                break
            rows = np.fromiter(
                (entry[2] for entry in block),
                dtype=np.intp,
                count=len(block),
            )
            sub = matrix[rows]
            fresh = self.t.aggregate_batch(
                np.where(np.isnan(sub), bottoms_row, sub)
            )
            self.b_evaluations += len(block)
            for j, (_neg_b, _, row, version) in enumerate(block):
                fresh_b = float(fresh[j])
                if fresh_b <= m_k:
                    never.add(row)
                    continue
                self._seq += 1
                pushback.append((-fresh_b, self._seq, row, version))
                if found is None and row not in topk_set:
                    found = (row, fresh_b)
                    self._viable_scan_hint = examined + j + 1
            examined += len(block)
            block_size = min(block_size * 4, 4096)
        if found is None:
            self._viable_scan_hint = max(examined, 1)
        for entry in pushback:
            heapq.heappush(heap, entry)
        return found

    def resolve_row_fields(
        self, row, list_indices: list[int], grades: list[float]
    ) -> None:
        """Record random-access resolutions of ``row``'s missing fields.

        Bit-for-bit equivalent to the scalar loop's per-field
        ``record(row, i, grade)`` calls: after each field the lower
        bound ``W`` is recomputed (0-substitution in argument order),
        the version bumped, one ``W``-heap and one freshly-evaluated
        ``B``-heap entry pushed, and the incremental ``M_k`` tracker
        notified -- so heap pop order in later phases and halting
        checks matches the scalar run exactly.
        """
        matrix = self.field_matrix
        aggregate = self.t.aggregate
        for i, g in zip(list_indices, grades):
            matrix[row, i] = g
            vec = matrix[row].tolist()
            w = aggregate(
                tuple(0.0 if x != x else x for x in vec)  # NaN -> 0
            )
            self.w[row] = w
            version = self._version.get(row, 0) + 1
            self._version[row] = version
            self._seq += 1
            heapq.heappush(self._w_heap, (-w, self._seq, row, version))
            self._seq += 1
            heapq.heappush(
                self._b_heap, (-self.b_value(row), self._seq, row, version)
            )
            self._mk_note(row, w)
