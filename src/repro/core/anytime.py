"""Anytime top-k: stream NRA's evolving answer instead of waiting for
the halt.

Section 4 frames every algorithm in the paper as an implementation of
the knowledge-based program "gather information until you *know* the top
k".  Before that point the algorithm still has a best current guess --
``T_k`` with certified bounds ``W <= t <= B`` per member -- and many
middleware deployments (interactive search, progressive UIs) want
exactly that stream.

:func:`anytime_topk` is a generator over rounds of lockstep sorted
access: each yielded :class:`AnytimeView` carries the current top-k with
bounds, the threshold, and ``is_final``; the generator ends after the
first final view (NRA's halting rule, Section 8.1).  The caller may stop
consuming at any time and use the last view's ``certified_theta`` as an
approximation guarantee (cf. Section 6.2): every excluded object's grade
is at most ``max_outside_b``, so the view is a
``max_outside_b / m_k``-approximation whenever ``m_k > 0``.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Hashable

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession
from .base import QueryError
from .bounds import CandidateStore

__all__ = ["AnytimeView", "anytime_topk"]


@dataclass(frozen=True)
class AnytimeView:
    """One round's snapshot of the evolving answer."""

    round: int
    depth: int
    items: tuple[tuple[Hashable, float, float], ...]  # (obj, W, B)
    m_k: float
    threshold: float
    max_outside_b: float
    is_final: bool
    sorted_accesses: int

    @property
    def objects(self) -> list[Hashable]:
        return [obj for obj, _, _ in self.items]

    @property
    def certified_theta(self) -> float:
        """The view is a ``certified_theta``-approximation to the true
        top-k (``1.0`` exactly when final)."""
        if self.is_final:
            return 1.0
        if self.m_k <= 0:
            return float("inf")
        return max(1.0, self.max_outside_b / self.m_k)


def anytime_topk(
    session: AccessSession,
    aggregation: AggregationFunction,
    k: int,
) -> Iterator[AnytimeView]:
    """Yield an :class:`AnytimeView` after every lockstep round until
    NRA's halting rule fires (the last view has ``is_final=True``)."""
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if k > session.num_objects:
        raise QueryError(
            f"k={k} exceeds the database size N={session.num_objects}"
        )
    aggregation.check_arity(session.num_lists)
    m = session.num_lists
    store = CandidateStore(aggregation, m, k, naive=True)
    rounds = 0
    while True:
        rounds += 1
        progressed = False
        for i in range(m):
            entry = session.sorted_access(i)
            if entry is None:
                continue
            progressed = True
            obj, grade = entry
            store.update_bottom(i, grade)
            store.record(obj, i, grade)

        topk, m_k = store.current_topk()
        topk_set = set(topk)
        outside = [
            store.b_value(obj)
            for obj in store.fields
            if obj not in topk_set
        ]
        if store.seen_count < session.num_objects:
            outside.append(store.threshold)
        max_outside = max(outside) if outside else float("-inf")
        is_final = (
            store.seen_count >= k and max_outside <= m_k
        ) or not progressed
        yield AnytimeView(
            round=rounds,
            depth=session.depth,
            items=tuple(
                (obj, store.w[obj], store.b_value(obj)) for obj in topk
            ),
            m_k=m_k,
            threshold=store.threshold,
            max_outside_b=max_outside,
            is_final=is_final,
            sorted_accesses=session.sorted_accesses,
        )
        if is_final:
            return
