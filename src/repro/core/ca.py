"""CA -- the Combined Algorithm (Section 8.2).

CA is "NRA plus carefully chosen random accesses": it runs NRA's lockstep
sorted access and bound bookkeeping, but every ``h = floor(cR/cS)`` rounds
it spends one random-access *phase* -- resolving **all** missing fields of
the single viable object with the largest upper bound ``B`` (ties
arbitrary).  If every viable object is already fully known, the phase is
skipped (the escape clause of footnote 15).  Halting is NRA's rule.

The ``B``-greedy choice is the algorithm's whole point: Section 8.4 shows
the *intermittent* algorithm (same accesses as TA, merely delayed) can be
``3(h-2)`` times worse on the Figure 5 database, and Theorem 8.9/8.10 show
CA's optimality ratio (``4m + k``; ``5m`` for ``min``) is independent of
``cR/cS`` when the aggregation function is strictly monotone in each
argument (or ``min``) and the database has distinct grades.  By design:

* ``h`` very large  ->  CA degenerates to NRA (no random access fires);
* ``h = 1``         ->  CA resembles TA but resolves only the single most
  promising object per round instead of every object seen.

Like NRA, CA returns the top-``k`` objects with bound information; exact
grades are reported when CA happened to resolve the object.
"""

from __future__ import annotations

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession
from .base import QueryError, TopKAlgorithm
from .bounds import CandidateStore
from .result import HaltReason, RankedItem, TopKResult

__all__ = ["CombinedAlgorithm"]


class CombinedAlgorithm(TopKAlgorithm):
    """CA: NRA's bookkeeping + one B-greedy random-access phase every
    ``h`` rounds."""

    name = "CA"

    def __init__(
        self,
        h: int | None = None,
        naive_bookkeeping: bool = False,
        halt_check_interval: int = 1,
    ):
        """``h`` overrides the period; by default it is taken from the
        session's cost model as ``floor(cR/cS)`` (requires ``cR >= cS``,
        as Section 8.2 assumes)."""
        if h is not None and h < 1:
            raise ValueError(f"h must be >= 1, got {h}")
        if halt_check_interval < 1:
            raise ValueError(
                f"halt_check_interval must be >= 1, got {halt_check_interval}"
            )
        self.h = h
        self.naive_bookkeeping = naive_bookkeeping
        self.halt_check_interval = halt_check_interval

    def _period(self, session: AccessSession) -> int:
        if self.h is not None:
            return self.h
        if session.cost_model.ratio < 1.0:
            raise QueryError(
                "CA assumes cR >= cS (h = floor(cR/cS) >= 1); got "
                f"cR/cS = {session.cost_model.ratio:g}.  Use TA when random "
                "accesses are cheap."
            )
        return session.cost_model.h

    def _run(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        m = session.num_lists
        h = self._period(session)
        store = CandidateStore(aggregation, m, k, naive=self.naive_bookkeeping)
        rounds = 0
        random_phases = 0
        escape_clauses = 0
        halt_reason = None
        topk: list = []
        # like NRA: the naive oracle keeps the scalar loop (current_mk
        # relies on the heap bookkeeping)
        batched = session.supports_batches and not self.naive_bookkeeping

        while halt_reason is None:
            rounds += 1
            if batched:
                rb = session.sorted_access_round()
                progressed = bool(rb)
                if progressed:
                    store.record_round(rb.objects, rb.lists, rb.grades)
            else:
                progressed = False
                for i in range(m):
                    entry = session.sorted_access(i)
                    if entry is None:
                        continue
                    progressed = True
                    obj, grade = entry
                    store.update_bottom(i, grade)
                    store.record(obj, i, grade)

            if progressed and rounds % h == 0:
                # random-access phase: fully resolve the most promising
                # viable object that still has missing fields.  The
                # B-greedy choice needs only the value M_k, which the
                # batched path reads from the O(log k) incremental
                # tracker instead of a full top-k recomputation.
                if batched:
                    m_k = store.current_mk()
                else:
                    _, m_k = store.current_topk()
                target = store.best_random_access_target(m_k)
                if target is None:
                    escape_clauses += 1
                else:
                    random_phases += 1
                    missing = [
                        i for i in range(m) if i not in store.fields[target]
                    ]
                    for i in missing:
                        grade = session.random_access(i, target)
                        store.record(target, i, grade)

            check_now = (
                rounds % self.halt_check_interval == 0 or not progressed
            )
            if check_now and store.seen_count >= k:
                unseen_remain = store.seen_count < session.num_objects
                if batched:
                    m_k = store.current_mk()
                    if not (unseen_remain and store.threshold > m_k):
                        topk, m_k = store.current_topk()
                        if store.find_viable_outside(topk, m_k) is None:
                            halt_reason = HaltReason.NO_VIABLE
                else:
                    topk, m_k = store.current_topk()
                    if not (unseen_remain and store.threshold > m_k):
                        if store.find_viable_outside(topk, m_k) is None:
                            halt_reason = HaltReason.NO_VIABLE
            if halt_reason is None and not progressed:
                topk, _ = store.current_topk()
                halt_reason = HaltReason.EXHAUSTED

        items = []
        for obj in topk:
            items.append(
                RankedItem(
                    obj,
                    store.exact_grade(obj),
                    store.w[obj],
                    store.b_value(obj),
                )
            )
        items.sort(key=lambda it: (-it.lower_bound, -it.upper_bound))
        return TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=halt_reason,
            max_buffer_size=store.seen_count,
            extras={
                "h": h,
                "random_phases": random_phases,
                "escape_clauses": escape_clauses,
                "b_evaluations": store.b_evaluations,
            },
        )
