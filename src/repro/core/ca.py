"""CA -- the Combined Algorithm (Section 8.2).

CA is "NRA plus carefully chosen random accesses": it runs NRA's lockstep
sorted access and bound bookkeeping, but every ``h = floor(cR/cS)`` rounds
it spends one random-access *phase* -- resolving **all** missing fields of
the single viable object with the largest upper bound ``B`` (ties
arbitrary).  If every viable object is already fully known, the phase is
skipped (the escape clause of footnote 15).  Halting is NRA's rule.

The ``B``-greedy choice is the algorithm's whole point: Section 8.4 shows
the *intermittent* algorithm (same accesses as TA, merely delayed) can be
``3(h-2)`` times worse on the Figure 5 database, and Theorem 8.9/8.10 show
CA's optimality ratio (``4m + k``; ``5m`` for ``min``) is independent of
``cR/cS`` when the aggregation function is strictly monotone in each
argument (or ``min``) and the database has distinct grades.  By design:

* ``h`` very large  ->  CA degenerates to NRA (no random access fires);
* ``h = 1``         ->  CA resembles TA but resolves only the single most
  promising object per round instead of every object seen.

Like NRA, CA returns the top-``k`` objects with bound information; exact
grades are reported when CA happened to resolve the object.

Execution backends: on a columnar session
(:attr:`~repro.middleware.access.AccessSession.supports_batches`) CA runs
a *speculative chunked engine* that is bit-for-bit equivalent to the
scalar reference loop (differential-tested: same top-k, same halting
round and reason, same access accounting).  The design is the
speculate -> replay -> charge-prefix scheme NRA uses, with the paper's
per-``h``-rounds random-access phase spliced into the replay:

speculate
    read the next chunk of lockstep rounds through the uncharged
    ``columnar_view``; one ``aggregate_batch`` each yields every entry's
    ``W`` (Proposition 8.1), its cached ``B`` under the exact mid-round
    bottoms (Proposition 8.2), and every round's threshold
    ``t(bottoms)``.
replay
    ingest the rounds in scalar order against an
    :class:`~repro.core.bounds.ArrayCandidateStore`.  At every global
    round divisible by ``h`` the phase runs *on the real store*: the
    ``B``-greedy target comes from the same lazy-heap scan
    (:meth:`~repro.core.bounds.CandidateStore.best_random_access_target`)
    the scalar loop uses -- tie order included -- because the target
    choice, not just the halting round, decides which random accesses
    the paper's algorithm pays for (the Theorem 8.9 cost ratio counts
    exactly these).  The consumed sorted prefix is charged *before* the
    phase's random accesses, preserving scalar charging order and the
    no-wild-guess certificate of Theorem 6.1; the resolution then
    replays the scalar per-field ``record`` sequence
    (:meth:`~repro.core.bounds.ArrayCandidateStore.resolve_row_fields`),
    and later sorted re-discoveries of the resolved object are
    suppressed exactly where the scalar ``record`` is a no-op.
charge prefix
    halting (NRA's rule, Theorem 8.4 applied as in Section 8.2) is
    located by the replay and only the consumed prefix is charged
    through the session's batched access methods.

Three decision-neutral gates keep the sequential part small, inherited
from NRA (sound because ``M_k`` never decreases while every ``B`` is
non-increasing): the ``t(bottoms) > M_k`` skip, the lazy-heap floor
pruning, and the *viability witness* -- a seen object outside every
possible ``T_k`` (``W < M_k``) still viable (``B > M_k``) whose standing
proves the full top-k/viability scan would not halt, letting it be
skipped until the witness falls (or is itself resolved by a phase).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession
from ..middleware.errors import ListLostError
from .base import QueryError, TopKAlgorithm
from .bounds import ArrayCandidateStore, CandidateStore
from .chunks import ChunkReplay, ChunkWitness, assemble_sorted_chunk
from .result import HaltReason, RankedItem, TopKResult

__all__ = ["CombinedAlgorithm"]


class CombinedAlgorithm(TopKAlgorithm):
    """CA: NRA's bookkeeping + one B-greedy random-access phase every
    ``h`` rounds."""

    name = "CA"

    def __init__(
        self,
        h: int | None = None,
        naive_bookkeeping: bool = False,
        halt_check_interval: int = 1,
    ):
        """``h`` overrides the period; by default it is taken from the
        session's cost model as ``floor(cR/cS)`` (requires ``cR >= cS``,
        as Section 8.2 assumes)."""
        if h is not None and h < 1:
            raise ValueError(f"h must be >= 1, got {h}")
        if halt_check_interval < 1:
            raise ValueError(
                f"halt_check_interval must be >= 1, got {halt_check_interval}"
            )
        self.h = h
        self.naive_bookkeeping = naive_bookkeeping
        self.halt_check_interval = halt_check_interval

    def _period(self, session: AccessSession) -> int:
        if self.h is not None:
            return self.h
        if session.cost_model.ratio < 1.0:
            raise QueryError(
                "CA assumes cR >= cS (h = floor(cR/cS) >= 1); got "
                f"cR/cS = {session.cost_model.ratio:g}.  Use TA when random "
                "accesses are cheap."
            )
        return session.cost_model.h

    def _run(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        # the chunked engine needs the heap bookkeeping, so the
        # Remark 8.7 naive oracle always runs the scalar loop
        if session.supports_batches and not self.naive_bookkeeping:
            return self._run_columnar(session, aggregation, k)
        m = session.num_lists
        h = self._period(session)
        store = CandidateStore(aggregation, m, k, naive=self.naive_bookkeeping)
        probe = getattr(session, "probe", None)
        rounds = 0
        random_phases = 0
        escape_clauses = 0
        halt_reason = None
        topk: list = []

        while halt_reason is None:
            if session.budget_exceeded:
                topk, _ = store.current_topk()
                halt_reason = HaltReason.DEADLINE
                break
            rounds += 1
            progressed = False
            for i in range(m):
                entry = session.sorted_access(i)
                if entry is None:
                    continue
                progressed = True
                obj, grade = entry
                store.update_bottom(i, grade)
                store.record(obj, i, grade)

            if progressed and rounds % h == 0:
                # random-access phase: fully resolve the most promising
                # viable object that still has missing fields
                _, m_k = store.current_topk()
                target = store.best_random_access_target(m_k)
                if target is None:
                    escape_clauses += 1
                else:
                    random_phases += 1
                    lost = session.lost_lists
                    missing = [
                        i
                        for i in range(m)
                        if i not in store.fields[target] and i not in lost
                    ]
                    # one overlapped cross-list fetch on remote
                    # sessions, the plain per-list loop locally --
                    # identical charging either way
                    try:
                        fetched = session.random_access_across(
                            target, missing
                        )
                    except ListLostError:
                        # the list died inside the phase: its bound
                        # contribution stays at the (sound) bottom
                        fetched = []
                        missing = []
                    for i, grade in zip(missing, fetched):
                        store.record(target, i, grade)

            if probe is not None:
                probe.on_round(rounds, tau=store.threshold)
            check_now = (
                rounds % self.halt_check_interval == 0 or not progressed
            )
            if check_now and store.seen_count >= k:
                unseen_remain = store.seen_count < session.num_objects
                topk, m_k = store.current_topk()
                if not (unseen_remain and store.threshold > m_k):
                    if store.find_viable_outside(topk, m_k) is None:
                        halt_reason = HaltReason.NO_VIABLE
            if halt_reason is None and not progressed:
                topk, _ = store.current_topk()
                halt_reason = HaltReason.EXHAUSTED

        return self._finish(
            session,
            store,
            k,
            h,
            rounds,
            random_phases,
            escape_clauses,
            halt_reason,
            topk,
        )

    def _run_columnar(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        """The speculative chunked engine (see the module docstring).

        Differences from NRA's replay: at every global round divisible
        by ``h`` the random-access phase executes against the live
        store state (fields synced, bottoms set), charging the
        speculated sorted prefix first so the accounting -- including
        wild-guess certification -- interleaves exactly as the scalar
        loop's does; resolved objects join ``resolved`` so their later
        sorted re-discoveries are skipped (scalar ``record`` no-ops);
        and the witness is dropped if a phase resolves it.
        """
        db = session.columnar_view()
        order_rows = db._order_rows
        order_grades = db._order_grades
        n = db.num_objects
        m = session.num_lists
        h = self._period(session)
        store = ArrayCandidateStore(aggregation, m, k, n)
        field_matrix = store.field_matrix
        seen_rows = np.zeros(n, dtype=bool)
        resolved: set[int] = set()  # rows fully resolved by a phase
        w_map = store.w
        versions = store._version
        w_heap = store._w_heap
        b_heap = store._b_heap
        mk_members = store._mk_members
        mk_note = store._mk_note
        heappush = heapq.heappush
        interval = self.halt_check_interval
        check_every_round = interval == 1
        bottoms = store.bottoms
        positions = [session.position(i) for i in range(m)]
        probe = getattr(session, "probe", None)
        rounds = 0
        random_phases = 0
        escape_clauses = 0
        halt_reason = None
        topk: list = []
        witness = None
        chunk_rounds = 32
        # candidate rows for the B-greedy phase, kept in discovery order
        # (array position = order of first sorted appearance) so that
        # "first position among maxima" IS the canonical tie-break of
        # best_random_access_target.  cand_b carries each row's last
        # evaluated B (initially the ingestion-time cached B): since B
        # never increases, it upper-bounds the fresh value -- the
        # vectorised analogue of the lazy B-heap's cached keys.  Rows
        # whose bound falls to M_k or below are pruned permanently (the
        # _never_viable discard, vectorised).
        cand = np.empty(0, dtype=np.intp)
        cand_b = np.empty(0, dtype=np.float64)

        while halt_reason is None:
            if session.budget_exceeded:
                # chunk boundary: the store is committed and consistent
                topk, _ = store.current_topk()
                halt_reason = HaltReason.DEADLINE
                break
            if all(positions[i] >= n for i in range(m)):
                # zero-progress round: no phase fires; full check, then
                # EXHAUSTED
                rounds += 1
                if probe is not None:
                    probe.on_round(rounds, tau=store.threshold)
                if store.seen_count_value >= k:
                    topk, m_k = store.current_topk()
                    if not (
                        store.seen_count_value < n and store.threshold > m_k
                    ):
                        if store.find_viable_outside(topk, m_k) is None:
                            halt_reason = HaltReason.NO_VIABLE
                if halt_reason is None:
                    topk, _ = store.current_topk()
                    halt_reason = HaltReason.EXHAUSTED
                break
            # ---- chunk assembly (uncharged view reads) ----
            chunk = assemble_sorted_chunk(
                order_rows,
                order_grades,
                positions,
                range(m),
                (1,) * m,
                chunk_rounds,
                n,
                m,
                bottoms,
            )
            rep = ChunkReplay(
                chunk,
                aggregation,
                store,
                seen_rows,
                bottoms,
                m,
                track_new_entries=True,
            )
            c_eff = rep.c_eff
            round_ends = rep.round_ends
            w_list = rep.w_list
            b_arr = rep.b_arr
            b_list = rep.b_list
            tau_list = rep.tau_list
            bott = rep.bott
            bott_rows = rep.bott_rows
            new_entries = rep.new_entries
            seen_cum = rep.seen_cum
            seen_base = rep.seen_base
            rows_list = rep.rows_list
            rounds_list = rep.rounds_list
            # newly seen rows in discovery order; absorbed into the
            # phase candidate array as the replay reaches their rounds
            new_rows_chunk = chunk.rows[new_entries]
            absorbed = 0
            # ---- lazy-store floors (sound: M_k never decreases) ----
            if len(mk_members) < k:
                w_keep = b_keep = None
                kept = list(range(chunk.total))
            else:
                floor = store._mk_clean()
                w_keep_arr = rep.w_arr >= floor
                b_keep_arr = b_arr > floor
                w_keep = w_keep_arr.tolist()
                b_keep = b_keep_arr.tolist()
                kept = np.nonzero(w_keep_arr | b_keep_arr)[0].tolist()
            witness = rep.carry(witness)
            # ---- sequential replay: kept entries, phases, checks ----
            seq = store._seq
            ki = 0
            klen = len(kept)
            r_halt = None
            for r in range(c_eff):
                while ki < klen:
                    e = kept[ki]
                    if rounds_list[e] != r:
                        break
                    row = rows_list[e]
                    if row in resolved:
                        # sorted re-discovery of a random-access-resolved
                        # field: scalar record() is a no-op
                        ki += 1
                        continue
                    version = versions.get(row, 0) + 1
                    versions[row] = version
                    if w_keep is None or w_keep[e]:
                        w = w_list[e]
                        w_map[row] = w
                        seq += 1
                        heappush(w_heap, (-w, seq, row, version))
                        store._seq = seq
                        mk_note(row, w)
                        seq = store._seq
                    if b_keep is None or b_keep[e]:
                        seq += 1
                        heappush(b_heap, (-b_list[e], seq, row, version))
                    ki += 1
                gr = rounds + r + 1
                if gr % h == 0:
                    # random-access phase on the live store (every round
                    # inside a chunk progresses, so the phase always
                    # fires).  Target selection is the vectorised form
                    # of best_random_access_target: same candidate set
                    # (seen, missing fields, fresh B > M_k), same
                    # canonical max-fresh-B / discovery-order choice.
                    # Blocks of the highest-bounded rows are re-evaluated
                    # until no unevaluated bound can beat the best found
                    # -- the lazy-heap scan, vectorised.
                    rep.sync_fields(round_ends[r] + 1)
                    bottoms[:] = bott_rows[r]
                    store.seen_count_value = seen_base + seen_cum[r]
                    m_k = store.current_mk()
                    upto_new = seen_cum[r]
                    if upto_new > absorbed:
                        cand = np.concatenate(
                            [cand, new_rows_chunk[absorbed:upto_new]]
                        )
                        cand_b = np.concatenate(
                            [cand_b, b_arr[new_entries[absorbed:upto_new]]]
                        )
                        absorbed = upto_new
                    target = None
                    if cand.size:
                        evaluated = np.zeros(cand.size, dtype=bool)
                        has_missing = np.zeros(cand.size, dtype=bool)
                        best_b = m_k
                        while True:
                            mask = (
                                ~evaluated
                                & (cand_b > m_k)
                                & (cand_b >= best_b)
                            )
                            idxs = np.nonzero(mask)[0]
                            if idxs.size == 0:
                                break
                            if idxs.size > 256:
                                idxs = idxs[
                                    np.argpartition(-cand_b[idxs], 255)[
                                        :256
                                    ]
                                ]
                            sub = field_matrix[cand[idxs]]
                            unknown_c = np.isnan(sub)
                            fresh = aggregation.aggregate_batch(
                                np.where(unknown_c, bott[r], sub)
                            )
                            store.b_evaluations += idxs.size
                            cand_b[idxs] = fresh
                            evaluated[idxs] = True
                            miss = unknown_c.any(axis=1)
                            has_missing[idxs] = miss
                            good = miss & (fresh > m_k)
                            if good.any():
                                mx = fresh[good].max()
                                if mx > best_b:
                                    best_b = mx
                        if best_b > m_k:
                            sel = (
                                evaluated
                                & has_missing
                                & (cand_b == best_b)
                            )
                            first = int(np.nonzero(sel)[0][0])
                            target = int(cand[first])
                            missing = np.nonzero(
                                np.isnan(field_matrix[target])
                            )[0].tolist()
                        keep = cand_b > m_k
                        if not keep.all():
                            cand = cand[keep]
                            cand_b = cand_b[keep]
                    if target is None:
                        escape_clauses += 1
                    else:
                        random_phases += 1
                        # scalar charging order: the consumed sorted
                        # prefix lands before the phase's randoms, and
                        # the wild-guess certificate needs the target's
                        # sorted appearance realised first
                        rep.charge_sorted(session, positions, r + 1)
                        row_arr = np.asarray([target], dtype=np.intp)
                        fetched = [
                            float(
                                session.random_access_batch(
                                    j, None, rows=row_arr
                                )[0]
                            )
                            for j in missing
                        ]
                        store._seq = seq
                        store.resolve_row_fields(target, missing, fetched)
                        seq = store._seq
                        resolved.add(target)
                        if witness is not None and witness.row == target:
                            # the witness is now fully known: it may
                            # enter the top-k, so it proves nothing
                            witness = None
                if check_every_round or gr % interval == 0:
                    seen_r = seen_base + seen_cum[r]
                    if seen_r >= k:
                        if len(mk_members) < k:
                            m_k = float("-inf")
                        else:
                            m_k = store._mk_clean()
                        skip = seen_r < n and tau_list[r] > m_k
                        if not skip and witness is not None:
                            # outside every possible T_k needs W < M_k;
                            # viability needs fresh B > M_k
                            w_wit = w_map.get(witness.row)
                            if w_wit is not None and w_wit < m_k:
                                if rep.witness_bound(witness, r) > m_k:
                                    skip = True
                        if not skip:
                            rep.sync_fields(round_ends[r] + 1)
                            bottoms[:] = bott_rows[r]
                            store.seen_count_value = seen_r
                            store._seq = seq
                            topk, m_k = store.current_topk()
                            if not (seen_r < n and store.threshold > m_k):
                                found = store.find_viable_outside(topk, m_k)
                                if found is None:
                                    halt_reason = HaltReason.NO_VIABLE
                                    r_halt = r
                                else:
                                    witness = ChunkWitness(
                                        found[0], chunk, after_round=r
                                    )
                            else:
                                witness = None
                            seq = store._seq
                            if r_halt is not None:
                                break
            store._seq = seq
            consumed = r_halt + 1 if r_halt is not None else c_eff
            upto_new = seen_cum[consumed - 1]
            if upto_new > absorbed:
                # consumed rows not yet absorbed become candidates for
                # the next chunk's phases
                cand = np.concatenate(
                    [cand, new_rows_chunk[absorbed:upto_new]]
                )
                cand_b = np.concatenate(
                    [cand_b, b_arr[new_entries[absorbed:upto_new]]]
                )
            rep.commit(session, positions, consumed)
            rounds += consumed
            if probe is not None and consumed:
                taus = tuple(float(t) for t in tau_list[:consumed])
                probe.on_round(rounds, tau=taus[-1], taus=taus)
            chunk_rounds = min(chunk_rounds * 2, 2048)

        return self._finish(
            session,
            store,
            k,
            h,
            rounds,
            random_phases,
            escape_clauses,
            halt_reason,
            topk,
            ids=db._ids,
        )

    def _finish(
        self,
        session: AccessSession,
        store: CandidateStore,
        k: int,
        h: int,
        rounds: int,
        random_phases: int,
        escape_clauses: int,
        halt_reason,
        topk: list,
        ids: list | None = None,
    ) -> TopKResult:
        """Assemble the result; ``ids`` translates row-keyed candidates
        (the columnar engine's store) back to object ids."""
        items: list[RankedItem] = []
        for obj in topk:
            items.append(
                RankedItem(
                    obj if ids is None else ids[obj],
                    store.exact_grade(obj),
                    store.w[obj],
                    store.b_value(obj),
                )
            )
        items.sort(key=lambda it: (-it.lower_bound, -it.upper_bound))
        # imported lazily: repro.resilience builds on repro.core
        from ..resilience.degraded import finalize_certificates

        result = TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=halt_reason,
            max_buffer_size=store.seen_count,
            extras={
                "h": h,
                "random_phases": random_phases,
                "escape_clauses": escape_clauses,
                "b_evaluations": store.b_evaluations,
            },
        )
        return finalize_certificates(result, session, store, topk)
