"""NRA -- the No Random Access algorithm (Section 8.1).

When random access is impossible (web search engines, Section 2), the
output requirement is weakened to the top-``k`` *objects* without grades
-- Example 8.3 shows identifying a winner can be arbitrarily cheaper than
grading it.  NRA does lockstep sorted access, maintains the bound pair
``W(R) <= t(R) <= B(R)`` for every seen object, keeps the current top-``k``
``T_k`` by ``W`` (ties by ``B``), and halts when at least ``k`` distinct
objects have been seen and no *viable* object (``B(R) > M_k``) remains
outside ``T_k`` -- counting the virtual unseen object, whose ``B`` is the
threshold ``t(bottoms)``.

Correctness is Theorem 8.4; instance optimality over all no-random-access
algorithms, with (tight, for strict ``t``) ratio ``m``, is Theorem 8.5 /
Corollary 8.6 / Theorem 9.5.

``naive_bookkeeping=True`` switches the candidate store to the
``Omega(d^2 m)`` rescan-everything mode of Remark 8.7 (same answers; used
as an oracle in tests and measured in the bookkeeping ablation).
``halt_check_interval`` trades halting-check work for (slightly) late
stops -- checking every ``c`` rounds can overshoot the paper's halting
depth by at most ``c - 1`` rounds.
"""

from __future__ import annotations

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession, ListCapabilities
from ..middleware.cost import UNIT_COSTS, CostModel
from ..middleware.database import Database
from .base import TopKAlgorithm
from .bounds import CandidateStore
from .result import HaltReason, RankedItem, TopKResult

__all__ = ["NoRandomAccessAlgorithm"]


class NoRandomAccessAlgorithm(TopKAlgorithm):
    """NRA: top-``k`` objects using sorted access only."""

    name = "NRA"
    uses_random_access = False

    def __init__(
        self,
        naive_bookkeeping: bool = False,
        halt_check_interval: int = 1,
        theta: float = 1.0,
    ):
        """``theta > 1`` enables the approximation variant (an extension
        in the spirit of Section 6.2 applied to Section 8.1): halt once
        no object outside ``T_k`` has ``B(R) > theta * M_k``.  Then for
        every returned ``y`` and excluded ``z``,
        ``t(z) <= B(z) <= theta * M_k <= theta * W(y) <= theta * t(y)``,
        i.e. the output is a theta-approximation -- still with zero
        random accesses."""
        if halt_check_interval < 1:
            raise ValueError(
                f"halt_check_interval must be >= 1, got {halt_check_interval}"
            )
        if theta < 1.0:
            raise ValueError(f"theta must be >= 1, got {theta}")
        self.naive_bookkeeping = naive_bookkeeping
        self.halt_check_interval = halt_check_interval
        self.theta = theta
        if naive_bookkeeping:
            self.name = "NRA(naive)"
        if theta > 1.0:
            self.name = f"NRA(theta={theta:g})"

    def make_session(
        self,
        database: Database,
        cost_model: CostModel = UNIT_COSTS,
        **session_kwargs,
    ) -> AccessSession:
        session_kwargs.setdefault(
            "capabilities", ListCapabilities(random_allowed=False)
        )
        return AccessSession(database, cost_model, **session_kwargs)

    def _run(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        m = session.num_lists
        store = CandidateStore(aggregation, m, k, naive=self.naive_bookkeeping)
        rounds = 0
        halt_reason = None
        topk: list = []

        while halt_reason is None:
            rounds += 1
            progressed = False
            for i in range(m):
                entry = session.sorted_access(i)
                if entry is None:
                    continue
                progressed = True
                obj, grade = entry
                store.update_bottom(i, grade)
                store.record(obj, i, grade)
            check_now = (
                rounds % self.halt_check_interval == 0 or not progressed
            )
            if check_now and store.seen_count >= k:
                topk, m_k = store.current_topk()
                cutoff = m_k if self.theta == 1.0 else self.theta * m_k
                unseen_remain = store.seen_count < session.num_objects
                if not (unseen_remain and store.threshold > cutoff):
                    if store.find_viable_outside(topk, cutoff) is None:
                        halt_reason = HaltReason.NO_VIABLE
            if halt_reason is None and not progressed:
                # exhausted everything: every bound is exact, so the
                # current top-k is final
                topk, _ = store.current_topk()
                halt_reason = HaltReason.EXHAUSTED

        items = []
        for obj in topk:
            items.append(
                RankedItem(
                    obj,
                    store.exact_grade(obj),
                    store.w[obj],
                    store.b_value(obj),
                )
            )
        items.sort(key=lambda it: (-it.lower_bound, -it.upper_bound))
        return TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=halt_reason,
            max_buffer_size=store.seen_count,
            extras={"b_evaluations": store.b_evaluations},
        )
