"""NRA -- the No Random Access algorithm (Section 8.1).

When random access is impossible (web search engines, Section 2), the
output requirement is weakened to the top-``k`` *objects* without grades
-- Example 8.3 shows identifying a winner can be arbitrarily cheaper than
grading it.  NRA does lockstep sorted access, maintains the bound pair
``W(R) <= t(R) <= B(R)`` for every seen object, keeps the current top-``k``
``T_k`` by ``W`` (ties by ``B``), and halts when at least ``k`` distinct
objects have been seen and no *viable* object (``B(R) > M_k``) remains
outside ``T_k`` -- counting the virtual unseen object, whose ``B`` is the
threshold ``t(bottoms)``.

Correctness is Theorem 8.4; instance optimality over all no-random-access
algorithms, with (tight, for strict ``t``) ratio ``m``, is Theorem 8.5 /
Corollary 8.6 / Theorem 9.5.

``naive_bookkeeping=True`` switches the candidate store to the
``Omega(d^2 m)`` rescan-everything mode of Remark 8.7 (same answers; used
as an oracle in tests and measured in the bookkeeping ablation).
``halt_check_interval`` trades halting-check work for (slightly) late
stops -- checking every ``c`` rounds can overshoot the paper's halting
depth by at most ``c - 1`` rounds.

Execution backends: on a columnar session
(:attr:`~repro.middleware.access.AccessSession.supports_batches`) NRA
runs a speculative chunked engine that is bit-for-bit equivalent to
the scalar loop (differential-tested: same top-k, same halting round
and reason, same access accounting).  Per chunk of lockstep rounds,
read ahead through the uncharged ``columnar_view``: every entry's
``W`` and cached ``B`` and every round's threshold come from one
``aggregate_batch`` each, the rounds are then replayed in scalar
order against an :class:`~repro.core.bounds.ArrayCandidateStore`
(fields committed with one vectorised scatter), and only the consumed
prefix is charged through ``sorted_access_batch``.  Three
decision-neutral gates keep the sequential part tiny: while
``t(bottoms) > theta * M_k`` (with unseen objects remaining) no
halting check can succeed, so none runs; entries whose ``W``/cached
``B`` sit below the non-decreasing ``M_k`` floor skip the lazy heaps
entirely; and each failed halting check yields a *viability witness*
-- a seen object outside every possible ``T_k`` (``W < M_k``) that is
still viable (``B > theta * M_k``) -- whose standing proves
``find_viable_outside`` would return non-``None``, letting the full
top-k/viability scan be skipped until the witness falls.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession, ListCapabilities
from ..middleware.cost import UNIT_COSTS, CostModel
from ..middleware.database import Database
from .base import TopKAlgorithm
from .bounds import ArrayCandidateStore, CandidateStore
from .chunks import ChunkReplay, ChunkWitness, assemble_sorted_chunk
from .result import HaltReason, RankedItem, TopKResult

__all__ = ["NoRandomAccessAlgorithm"]


class NoRandomAccessAlgorithm(TopKAlgorithm):
    """NRA: top-``k`` objects using sorted access only."""

    name = "NRA"
    uses_random_access = False

    def __init__(
        self,
        naive_bookkeeping: bool = False,
        halt_check_interval: int = 1,
        theta: float = 1.0,
    ):
        """``theta > 1`` enables the approximation variant (an extension
        in the spirit of Section 6.2 applied to Section 8.1): halt once
        no object outside ``T_k`` has ``B(R) > theta * M_k``.  Then for
        every returned ``y`` and excluded ``z``,
        ``t(z) <= B(z) <= theta * M_k <= theta * W(y) <= theta * t(y)``,
        i.e. the output is a theta-approximation -- still with zero
        random accesses."""
        if halt_check_interval < 1:
            raise ValueError(
                f"halt_check_interval must be >= 1, got {halt_check_interval}"
            )
        if theta < 1.0:
            raise ValueError(f"theta must be >= 1, got {theta}")
        self.naive_bookkeeping = naive_bookkeeping
        self.halt_check_interval = halt_check_interval
        self.theta = theta
        if naive_bookkeeping:
            self.name = "NRA(naive)"
        if theta > 1.0:
            self.name = f"NRA(theta={theta:g})"

    def make_session(
        self,
        database: Database,
        cost_model: CostModel = UNIT_COSTS,
        **session_kwargs,
    ) -> AccessSession:
        session_kwargs.setdefault(
            "capabilities", ListCapabilities(random_allowed=False)
        )
        return AccessSession(database, cost_model, **session_kwargs)

    def _run(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        # the chunked engine needs the heap bookkeeping (for current_mk),
        # so the Remark 8.7 naive oracle always runs the scalar loop
        if session.supports_batches and not self.naive_bookkeeping:
            return self._run_columnar(session, aggregation, k)
        m = session.num_lists
        store = CandidateStore(aggregation, m, k, naive=self.naive_bookkeeping)
        probe = getattr(session, "probe", None)
        rounds = 0
        halt_reason = None
        topk: list = []

        while halt_reason is None:
            if session.budget_exceeded:
                topk, _ = store.current_topk()
                halt_reason = HaltReason.DEADLINE
                break
            rounds += 1
            progressed = False
            for i in range(m):
                entry = session.sorted_access(i)
                if entry is None:
                    continue
                progressed = True
                obj, grade = entry
                store.update_bottom(i, grade)
                store.record(obj, i, grade)
            if probe is not None:
                probe.on_round(rounds, tau=store.threshold)
            check_now = (
                rounds % self.halt_check_interval == 0 or not progressed
            )
            if check_now and store.seen_count >= k:
                topk, m_k = store.current_topk()
                cutoff = m_k if self.theta == 1.0 else self.theta * m_k
                unseen_remain = store.seen_count < session.num_objects
                if not (unseen_remain and store.threshold > cutoff):
                    if store.find_viable_outside(topk, cutoff) is None:
                        halt_reason = HaltReason.NO_VIABLE
            if halt_reason is None and not progressed:
                # exhausted everything: every bound is exact, so the
                # current top-k is final
                topk, _ = store.current_topk()
                halt_reason = HaltReason.EXHAUSTED

        return self._finish(session, store, k, rounds, halt_reason, topk)

    def _run_columnar(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        """The speculative chunked engine (see the module docstring).

        Candidates are row indices into an
        :class:`~repro.core.bounds.ArrayCandidateStore`: per chunk, every
        entry's ``W`` and cached ``B`` and every round's threshold come
        from one ``aggregate_batch`` each; the field matrix is committed
        with a single vectorised scatter (synced early only at the rare
        full halting checks); and the sequential part of the scan visits
        only the entries that actually touch the lazy heaps.

        Decision-neutral lazy-store refinements (sound because ``M_k``
        never decreases and ``W`` per object never decreases):

        * an entry whose ``W`` is below the chunk-start ``M_k`` floor can
          never enter the top-``k``, so its ``W``-heap push (and, if its
          ``B`` is also pruned, its version bump) is skipped;
        * an entry whose cached ``B`` is at or below the floor can never
          be viable again, so its ``B``-heap push is skipped -- the same
          permanent discard ``find_viable_outside`` would apply later;
        * each failed halting check yields a *viability witness*: an
          object outside every possible ``T_k`` (``W < M_k``) that is
          still viable (``B > theta * M_k``).  While it stands --
          checked against a per-chunk vectorised ``B`` trajectory --
          ``find_viable_outside`` would certainly return non-``None``,
          so the full top-k/viability scan is skipped.
        """
        db = session.columnar_view()
        order_rows = db._order_rows
        order_grades = db._order_grades
        n = db.num_objects
        m = session.num_lists
        probe = getattr(session, "probe", None)
        store = ArrayCandidateStore(aggregation, m, k, n)
        seen_rows = np.zeros(n, dtype=bool)
        w_map = store.w
        versions = store._version
        w_heap = store._w_heap
        b_heap = store._b_heap
        mk_members = store._mk_members
        mk_note = store._mk_note
        heappush = heapq.heappush
        interval = self.halt_check_interval
        check_every_round = interval == 1
        theta = self.theta
        bottoms = store.bottoms
        positions = [session.position(i) for i in range(m)]
        rounds = 0
        halt_reason = None
        topk: list = []
        witness = None
        chunk_rounds = 32

        while halt_reason is None:
            if session.budget_exceeded:
                # chunk boundary: the store is committed and consistent
                topk, _ = store.current_topk()
                halt_reason = HaltReason.DEADLINE
                break
            if all(positions[i] >= n for i in range(m)):
                # zero-progress round: full check, then EXHAUSTED
                rounds += 1
                if probe is not None:
                    probe.on_round(rounds, tau=store.threshold)
                if store.seen_count_value >= k:
                    topk, m_k = store.current_topk()
                    cutoff = m_k if theta == 1.0 else theta * m_k
                    if not (
                        store.seen_count_value < n and store.threshold > cutoff
                    ):
                        if store.find_viable_outside(topk, cutoff) is None:
                            halt_reason = HaltReason.NO_VIABLE
                if halt_reason is None:
                    topk, _ = store.current_topk()
                    halt_reason = HaltReason.EXHAUSTED
                break
            # ---- chunk assembly (uncharged view reads) ----
            chunk = assemble_sorted_chunk(
                order_rows,
                order_grades,
                positions,
                range(m),
                (1,) * m,
                chunk_rounds,
                n,
                m,
                bottoms,
            )
            rep = ChunkReplay(chunk, aggregation, store, seen_rows, bottoms, m)
            c_eff = rep.c_eff
            round_ends = rep.round_ends
            w_list = rep.w_list
            b_list = rep.b_list
            tau_list = rep.tau_list
            bott_rows = rep.bott_rows
            seen_cum = rep.seen_cum
            seen_base = rep.seen_base
            rows_list = rep.rows_list
            rounds_list = rep.rounds_list
            # ---- lazy-store floors (sound: M_k never decreases) ----
            if len(mk_members) < k:
                w_keep = b_keep = None
                kept = list(range(chunk.total))
            else:
                floor = store._mk_clean()
                w_keep_arr = rep.w_arr >= floor
                b_keep_arr = rep.b_arr > floor
                w_keep = w_keep_arr.tolist()
                b_keep = b_keep_arr.tolist()
                kept = np.nonzero(w_keep_arr | b_keep_arr)[0].tolist()
            witness = rep.carry(witness)
            # ---- sequential replay: kept entries + per-round checks ----
            seq = store._seq
            ki = 0
            klen = len(kept)
            r_halt = None
            for r in range(c_eff):
                while ki < klen:
                    e = kept[ki]
                    if rounds_list[e] != r:
                        break
                    row = rows_list[e]
                    version = versions.get(row, 0) + 1
                    versions[row] = version
                    if w_keep is None or w_keep[e]:
                        w = w_list[e]
                        w_map[row] = w
                        seq += 1
                        heappush(w_heap, (-w, seq, row, version))
                        store._seq = seq
                        mk_note(row, w)
                        seq = store._seq
                    if b_keep is None or b_keep[e]:
                        seq += 1
                        heappush(b_heap, (-b_list[e], seq, row, version))
                    ki += 1
                if check_every_round or (rounds + r + 1) % interval == 0:
                    seen_r = seen_base + seen_cum[r]
                    if seen_r >= k:
                        if len(mk_members) < k:
                            m_k = float("-inf")
                        else:
                            m_k = store._mk_clean()
                        cutoff = m_k if theta == 1.0 else theta * m_k
                        skip = seen_r < n and tau_list[r] > cutoff
                        if not skip and witness is not None:
                            # outside every possible T_k needs W < M_k;
                            # viability needs fresh B > theta * M_k
                            w_wit = w_map.get(witness.row)
                            if w_wit is not None and w_wit < m_k:
                                if rep.witness_bound(witness, r) > cutoff:
                                    skip = True
                        if not skip:
                            rep.sync_fields(round_ends[r] + 1)
                            bottoms[:] = bott_rows[r]
                            store.seen_count_value = seen_r
                            store._seq = seq
                            topk, m_k = store.current_topk()
                            cutoff = m_k if theta == 1.0 else theta * m_k
                            if not (seen_r < n and store.threshold > cutoff):
                                found = store.find_viable_outside(
                                    topk, cutoff
                                )
                                if found is None:
                                    halt_reason = HaltReason.NO_VIABLE
                                    r_halt = r
                                else:
                                    witness = ChunkWitness(
                                        found[0], chunk, after_round=r
                                    )
                            else:
                                witness = None
                            seq = store._seq
                            if r_halt is not None:
                                break
            store._seq = seq
            consumed = r_halt + 1 if r_halt is not None else c_eff
            rep.commit(session, positions, consumed)
            rounds += consumed
            if probe is not None and consumed:
                taus = tuple(float(t) for t in tau_list[:consumed])
                probe.on_round(rounds, tau=taus[-1], taus=taus)
            chunk_rounds = min(chunk_rounds * 2, 2048)

        return self._finish(
            session, store, k, rounds, halt_reason, topk, ids=db._ids
        )

    def _finish(
        self,
        session: AccessSession,
        store: CandidateStore,
        k: int,
        rounds: int,
        halt_reason,
        topk: list,
        ids: list | None = None,
    ) -> TopKResult:
        """Assemble the result; ``ids`` translates row-keyed candidates
        (the columnar engine's store) back to object ids."""
        # imported lazily: repro.resilience builds on repro.core
        from ..resilience.degraded import finalize_certificates

        items: list[RankedItem] = []
        for obj in topk:
            items.append(
                RankedItem(
                    obj if ids is None else ids[obj],
                    store.exact_grade(obj),
                    store.w[obj],
                    store.b_value(obj),
                )
            )
        items.sort(key=lambda it: (-it.lower_bound, -it.upper_bound))
        result = TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=halt_reason,
            max_buffer_size=store.seen_count,
            extras={"b_evaluations": store.b_evaluations},
        )
        return finalize_certificates(result, session, store, topk)
