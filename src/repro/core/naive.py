"""The naive algorithm: read everything, aggregate, sort.

Section 1's baseline: under sorted access it looks at every entry in each
of the ``m`` sorted lists, computes the overall grade of every object, and
returns the top ``k``.  Its middleware cost is ``m * N * cS`` -- linear in
the database size -- but it needs no random access at all, which makes it
the (degenerate) optimum when ``cS = 0`` is approached (Section 6's
"random access cost only" remark).

It doubles as the ground-truth oracle for the test-suite.
"""

from __future__ import annotations

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession
from .base import TopKAlgorithm, TopKBuffer
from .result import HaltReason, RankedItem, TopKResult

__all__ = ["NaiveAlgorithm"]


class NaiveAlgorithm(TopKAlgorithm):
    """Exhaustive scan via sorted access; zero random accesses."""

    name = "Naive"
    uses_random_access = False

    def _run(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        m = session.num_lists
        fields: dict = {}
        rounds = 0
        while True:
            rounds += 1
            progressed = False
            for i in range(m):
                entry = session.sorted_access(i)
                if entry is None:
                    continue
                progressed = True
                obj, grade = entry
                fields.setdefault(obj, {})[i] = grade
            if not progressed:
                break
        buffer = TopKBuffer(k)
        overall: dict = {}
        for obj, known in fields.items():
            grades = tuple(known[i] for i in range(m))
            overall[obj] = aggregation.aggregate(grades)
            buffer.offer(obj, overall[obj])
        items = [
            RankedItem(obj, grade, grade, grade)
            for obj, grade in buffer.items_desc()
        ]
        return TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=HaltReason.EXHAUSTED,
            max_buffer_size=len(fields),
        )
