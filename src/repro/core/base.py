"""Shared algorithm machinery: the base class, run validation, and the
bounded top-k buffer of Theorem 4.2.

Every algorithm consumes an :class:`~repro.middleware.access.AccessSession`
(never a raw database), so its reported costs are exactly the accesses it
performed.  ``run`` validates the query (arity, ``k <= N``, capability
requirements), delegates to the subclass ``_run``, and never inspects
ground truth.
"""

from __future__ import annotations

import asyncio
import heapq
from abc import ABC, abstractmethod
from concurrent.futures import Executor
from typing import Hashable

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession
from ..middleware.cost import UNIT_COSTS, CostModel
from ..middleware.database import Database
from .result import TopKResult

__all__ = ["TopKAlgorithm", "TopKBuffer", "QueryError"]


class QueryError(ValueError):
    """The query is invalid for this database/session/algorithm."""


class TopKBuffer:
    """The constant-size buffer of TA (Theorem 4.2): the best ``k``
    *distinct* objects seen so far, by overall grade.

    ``offer`` is idempotent per object (re-seeing an object under sorted
    access in another list recomputes the same grade and must not occupy a
    second slot).  Ties at the boundary are broken arbitrarily
    (first-come), exactly as the paper allows.
    """

    def __init__(self, k: int):
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self._k = k
        self._heap: list[tuple[float, int, Hashable]] = []
        self._grades: dict[Hashable, float] = {}
        self._counter = 0

    def offer(self, obj: Hashable, grade: float) -> bool:
        """Consider ``obj`` for the buffer; return True if it is (still)
        among the best ``k``."""
        if obj in self._grades:
            return True
        self._counter += 1
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, (grade, self._counter, obj))
            self._grades[obj] = grade
            return True
        if grade > self._heap[0][0]:
            _, __, evicted = heapq.heapreplace(
                self._heap, (grade, self._counter, obj)
            )
            del self._grades[evicted]
            self._grades[obj] = grade
            return True
        return False

    @property
    def full(self) -> bool:
        return len(self._heap) >= self._k

    @property
    def min_grade(self) -> float:
        """Grade of the worst buffered object (``-inf`` when empty)."""
        return self._heap[0][0] if self._heap else float("-inf")

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self._grades

    def __len__(self) -> int:
        return len(self._heap)

    def items_desc(self) -> list[tuple[Hashable, float]]:
        """Buffered ``(object, grade)`` pairs, best first."""
        return sorted(
            self._grades.items(), key=lambda item: -item[1]
        )


class TopKAlgorithm(ABC):
    """Base class for middleware top-k algorithms.

    Subclasses set the class attributes describing their access needs
    (checked against the session's capabilities before running) and
    implement ``_run``.
    """

    name: str = "abstract"
    #: must every list allow sorted access?  (TAZ and the certificate
    #: searcher tolerate restricted sorted access; TA, FA, NRA, CA do not.)
    requires_sorted_all_lists: bool = True
    #: does the algorithm ever random-access?
    uses_random_access: bool = True

    def run(
        self,
        session: AccessSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        """Find the top-``k`` through ``session``; returns a
        :class:`~repro.core.result.TopKResult`."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if k > session.num_objects:
            raise QueryError(
                f"k={k} exceeds the database size N={session.num_objects}; "
                "the paper's model assumes N >= k"
            )
        aggregation.check_arity(session.num_lists)
        self._check_capabilities(session)
        return self._run_sealed(session, aggregation, k)

    def _run_sealed(
        self,
        session: AccessSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        """``_run``, sealing any attached bound-trajectory probe with
        the halt reason (residual post-loop charges -- TA's final
        resolution, certificate finalization -- become the probe's
        ``final`` entry, so its totals match the result's AccessStats
        exactly)."""
        result = self._run(session, aggregation, k)
        probe = getattr(session, "probe", None)
        if probe is not None:
            probe.finish(result.halt_reason)
        return result

    def run_on(
        self,
        database: Database,
        aggregation: AggregationFunction,
        k: int,
        cost_model: CostModel = UNIT_COSTS,
        **session_kwargs,
    ) -> TopKResult:
        """Convenience: build a fresh session over ``database`` and run."""
        session = self.make_session(database, cost_model, **session_kwargs)
        return self.run(session, aggregation, k)

    async def run_on_loop(
        self,
        session: AccessSession,
        aggregation: AggregationFunction,
        k: int,
        *,
        executor: Executor | None = None,
    ) -> TopKResult:
        """Run this query without blocking the calling event loop.

        The engines are deliberately synchronous -- the paper's
        algorithms are sequential access schedules, and keeping one
        scalar reference loop is what makes the differential parity
        suites meaningful -- so a server hosting many queries on one
        asyncio loop runs each engine on an executor thread and awaits
        it here.  The *session* is where concurrency lives: service-
        and scan-backed sessions block their worker thread on remote
        or shared pages while the loop keeps scheduling everyone else.

        Validation (``k``, arity, capabilities) happens eagerly on the
        loop so invalid queries fail at submission, not inside a
        worker.
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if k > session.num_objects:
            raise QueryError(
                f"k={k} exceeds the database size N={session.num_objects}; "
                "the paper's model assumes N >= k"
            )
        aggregation.check_arity(session.num_lists)
        self._check_capabilities(session)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            executor, self._run_sealed, session, aggregation, k
        )

    def make_session(
        self,
        database: Database,
        cost_model: CostModel = UNIT_COSTS,
        **session_kwargs,
    ) -> AccessSession:
        """Build the session this algorithm expects (subclasses override
        to restrict capabilities, e.g. NRA forbids random access)."""
        return AccessSession(database, cost_model, **session_kwargs)

    def _check_capabilities(self, session: AccessSession) -> None:
        if self.requires_sorted_all_lists:
            missing = [
                i
                for i in range(session.num_lists)
                if not session.capabilities(i).sorted_allowed
            ]
            if missing:
                raise QueryError(
                    f"{self.name} needs sorted access on every list; "
                    f"lists {missing} forbid it (use TAZ for that scenario)"
                )
        if self.uses_random_access:
            missing = [
                i
                for i in range(session.num_lists)
                if not session.capabilities(i).random_allowed
            ]
            if missing:
                raise QueryError(
                    f"{self.name} needs random access on every list; "
                    f"lists {missing} forbid it (use NRA for that scenario)"
                )

    @abstractmethod
    def _run(
        self,
        session: AccessSession,
        aggregation: AggregationFunction,
        k: int,
    ) -> TopKResult:
        ...

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
