"""Stream-Combine (Guentzer, Balke, Kiessling) -- the upper-bounds-only
no-random-access baseline (Section 10 of the paper).

Stream-Combine, like NRA, uses sorted access only, but differs in two
ways the paper calls out to explain why it is *not* instance optimal:

1. it considers only **upper bounds** on overall grades (no ``W``
   bookkeeping), and
2. it must report exact grades, so it "cannot say that an object is in
   the top k unless that object has been seen in every sorted list".

It therefore halts only when ``k`` *fully seen* objects have (exact)
grades at least as large as every other object's upper bound ``B``
(including the virtual unseen object at the threshold).  On Example 8.3's
database NRA halts at depth 2 while Stream-Combine must scan essentially
all of ``L2`` to see the winner's last field -- an unbounded separation
measured in ``benchmarks/bench_related_heuristics.py``.

This is the *basic* (lockstep) version; the original paper adds a
list-scheduling heuristic orthogonal to the comparison made here.
"""

from __future__ import annotations

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession, ListCapabilities
from ..middleware.cost import UNIT_COSTS, CostModel
from ..middleware.database import Database
from .base import TopKAlgorithm, TopKBuffer
from .bounds import CandidateStore
from .result import HaltReason, RankedItem, TopKResult

__all__ = ["StreamCombine"]


class StreamCombine(TopKAlgorithm):
    """Upper-bounds-only, grades-required, no-random-access top-k."""

    name = "StreamCombine"
    uses_random_access = False

    def make_session(
        self,
        database: Database,
        cost_model: CostModel = UNIT_COSTS,
        **session_kwargs,
    ) -> AccessSession:
        session_kwargs.setdefault(
            "capabilities", ListCapabilities(random_allowed=False)
        )
        return AccessSession(database, cost_model, **session_kwargs)

    def _run(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        m = session.num_lists
        store = CandidateStore(aggregation, m, k)
        full = TopKBuffer(k)  # fully-seen objects by exact grade
        rounds = 0
        halt_reason = None

        while halt_reason is None:
            rounds += 1
            progressed = False
            for i in range(m):
                entry = session.sorted_access(i)
                if entry is None:
                    continue
                progressed = True
                obj, grade = entry
                store.update_bottom(i, grade)
                if store.record(obj, i, grade) and store.fully_known(obj):
                    full.offer(obj, store.w[obj])

            if full.full:
                m_k = full.min_grade
                topk_objs = [obj for obj, _ in full.items_desc()]
                unseen_remain = store.seen_count < session.num_objects
                threshold_ok = (
                    not unseen_remain or store.threshold <= m_k
                )
                if threshold_ok and (
                    store.find_viable_outside(topk_objs, m_k) is None
                ):
                    halt_reason = HaltReason.NO_VIABLE
            if halt_reason is None and not progressed:
                halt_reason = HaltReason.EXHAUSTED

        items = [
            RankedItem(obj, grade, grade, grade)
            for obj, grade in full.items_desc()
        ]
        return TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=halt_reason,
            max_buffer_size=store.seen_count,
            extras={"fully_seen": len(items)},
        )
