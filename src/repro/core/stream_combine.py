"""Stream-Combine (Guentzer, Balke, Kiessling) -- the upper-bounds-only
no-random-access baseline (Section 10 of the paper).

Stream-Combine, like NRA, uses sorted access only, but differs in two
ways the paper calls out to explain why it is *not* instance optimal:

1. it considers only **upper bounds** on overall grades (no ``W``
   bookkeeping), and
2. it must report exact grades, so it "cannot say that an object is in
   the top k unless that object has been seen in every sorted list".

It therefore halts only when ``k`` *fully seen* objects have (exact)
grades at least as large as every other object's upper bound ``B``
(including the virtual unseen object at the threshold).  On Example 8.3's
database NRA halts at depth 2 while Stream-Combine must scan essentially
all of ``L2`` to see the winner's last field -- an unbounded separation
measured in ``benchmarks/bench_related_heuristics.py``.

This is the *basic* (lockstep) version; the original paper adds a
list-scheduling heuristic orthogonal to the comparison made here.

Execution backends: on a columnar session
(:attr:`~repro.middleware.access.AccessSession.supports_batches`) the
algorithm runs a *speculative chunked engine*, bit-for-bit equivalent to
the scalar reference loop (differential-tested: same items, halting
round and reason, and access accounting), following the
speculate -> replay -> charge-prefix scheme of NRA and CA:

speculate
    read the next chunk of lockstep rounds through the uncharged
    ``columnar_view``; one ``aggregate_batch`` each yields every entry's
    cached ``B`` under the exact mid-round bottoms (Proposition 8.2),
    every round's threshold, and -- where an entry completes its object
    -- the exact overall grade (the 0-substituted row has no unknowns
    left, so it *is* ``t``'s value; Stream-Combine never uses partial
    ``W`` bounds, matching difference (1) above).
replay
    ingest the rounds in scalar order against an
    :class:`~repro.core.bounds.ArrayCandidateStore`: only the ``B``-heap
    is fed (upper-bounds-only bookkeeping needs no ``W``-heap and no
    ``M_k`` tracker), and entries that complete an object offer its
    exact grade to the fully-seen top-``k`` buffer, preserving the
    scalar offer order (tie placement included).
charge prefix
    the replay locates the exact halting round and only the consumed
    prefix is charged through ``sorted_access_batch``.

Two decision-neutral gates keep the sequential part small, sound
because the fully-seen floor ``M_k`` (the buffer's k-th exact grade)
never decreases while every ``B`` is non-increasing: entries whose
cached ``B`` sits at or below the chunk-start floor skip the lazy heap
(the same permanent discard ``find_viable_outside`` would apply), and
each failed halting check yields a *viability witness* -- a not yet
fully seen object (hence outside the buffer) with ``B > M_k`` -- whose
standing, checked against a per-chunk vectorised ``B`` trajectory,
proves the full viability scan would not halt, letting it be skipped
until the witness falls or is fully seen.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession, ListCapabilities
from ..middleware.cost import UNIT_COSTS, CostModel
from ..middleware.database import Database
from .base import TopKAlgorithm, TopKBuffer
from .bounds import ArrayCandidateStore, CandidateStore
from .chunks import ChunkReplay, ChunkWitness, assemble_sorted_chunk
from .result import HaltReason, RankedItem, TopKResult

__all__ = ["StreamCombine"]


class StreamCombine(TopKAlgorithm):
    """Upper-bounds-only, grades-required, no-random-access top-k."""

    name = "StreamCombine"
    uses_random_access = False

    def make_session(
        self,
        database: Database,
        cost_model: CostModel = UNIT_COSTS,
        **session_kwargs,
    ) -> AccessSession:
        session_kwargs.setdefault(
            "capabilities", ListCapabilities(random_allowed=False)
        )
        return AccessSession(database, cost_model, **session_kwargs)

    def _run(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        if session.supports_batches:
            return self._run_columnar(session, aggregation, k)
        m = session.num_lists
        store = CandidateStore(aggregation, m, k)
        full = TopKBuffer(k)  # fully-seen objects by exact grade
        probe = getattr(session, "probe", None)
        rounds = 0
        halt_reason = None

        while halt_reason is None:
            if session.budget_exceeded:
                halt_reason = HaltReason.DEADLINE
                break
            rounds += 1
            progressed = False
            for i in range(m):
                entry = session.sorted_access(i)
                if entry is None:
                    continue
                progressed = True
                obj, grade = entry
                store.update_bottom(i, grade)
                if store.record(obj, i, grade) and store.fully_known(obj):
                    full.offer(obj, store.w[obj])

            if probe is not None:
                probe.on_round(
                    rounds, tau=store.threshold, w=full.min_grade
                )
            if full.full:
                m_k = full.min_grade
                topk_objs = [obj for obj, _ in full.items_desc()]
                unseen_remain = store.seen_count < session.num_objects
                threshold_ok = (
                    not unseen_remain or store.threshold <= m_k
                )
                if threshold_ok and (
                    store.find_viable_outside(topk_objs, m_k) is None
                ):
                    halt_reason = HaltReason.NO_VIABLE
            if halt_reason is None and not progressed:
                halt_reason = HaltReason.EXHAUSTED

        fully_seen = len(full.items_desc())
        if not full.full and (
            halt_reason == HaltReason.DEADLINE or session.lost_lists
        ):
            # a deadline (or a lost list starving the exact-grade
            # buffer) forfeits the exact-grades-only contract: report
            # the store's current top-k with its bound intervals, so
            # the certificate machinery still has something to certify
            topk, _ = store.current_topk()
            items = [
                RankedItem(
                    obj,
                    store.exact_grade(obj),
                    store.w[obj],
                    store.b_value(obj),
                )
                for obj in topk
            ]
            items.sort(key=lambda it: (-it.lower_bound, -it.upper_bound))
            cert_topk = topk
        else:
            items = [
                RankedItem(obj, grade, grade, grade)
                for obj, grade in full.items_desc()
            ]
            cert_topk = [obj for obj, _ in full.items_desc()]
        return self._result(
            session, k, items, rounds, halt_reason, store, cert_topk,
            fully_seen,
        )

    def _run_columnar(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        """The speculative chunked engine (see the module docstring).

        Candidates are row indices into an
        :class:`~repro.core.bounds.ArrayCandidateStore`; the buffer of
        fully seen objects is keyed by row and translated back to object
        ids at the end.  Only the ``B``-heap is maintained (plus the
        version map its staleness checks need): Stream-Combine's halting
        machinery touches candidates exclusively through
        ``find_viable_outside``.
        """
        db = session.columnar_view()
        order_rows = db._order_rows
        order_grades = db._order_grades
        n = db.num_objects
        m = session.num_lists
        store = ArrayCandidateStore(aggregation, m, k, n)
        seen_rows = np.zeros(n, dtype=bool)
        w_map = store.w
        versions = store._version
        b_heap = store._b_heap
        heappush = heapq.heappush
        full = TopKBuffer(k)
        offer = full.offer
        bottoms = store.bottoms
        positions = [session.position(i) for i in range(m)]
        probe = getattr(session, "probe", None)
        rounds = 0
        halt_reason = None
        witness = None
        chunk_rounds = 32

        while halt_reason is None:
            if session.budget_exceeded:
                # chunk boundary: the store is committed and consistent
                halt_reason = HaltReason.DEADLINE
                break
            if all(positions[i] >= n for i in range(m)):
                # zero-progress round: full check, then EXHAUSTED
                rounds += 1
                if probe is not None:
                    probe.on_round(
                        rounds, tau=store.threshold, w=full.min_grade
                    )
                if full.full:
                    m_k = full.min_grade
                    topk_objs = [obj for obj, _ in full.items_desc()]
                    if not (
                        store.seen_count_value < n and store.threshold > m_k
                    ):
                        if (
                            store.find_viable_outside(topk_objs, m_k)
                            is None
                        ):
                            halt_reason = HaltReason.NO_VIABLE
                if halt_reason is None:
                    halt_reason = HaltReason.EXHAUSTED
                break
            # ---- chunk assembly (uncharged view reads) ----
            chunk = assemble_sorted_chunk(
                order_rows,
                order_grades,
                positions,
                range(m),
                (1,) * m,
                chunk_rounds,
                n,
                m,
                bottoms,
            )
            rep = ChunkReplay(chunk, aggregation, store, seen_rows, bottoms, m)
            c_eff = rep.c_eff
            round_ends = rep.round_ends
            # for complete entries the 0-substituted row has no unknowns:
            # w_list[e] is the exact overall grade
            complete = ~rep.unknown.any(axis=1)
            w_list = rep.w_list
            b_list = rep.b_list
            tau_list = rep.tau_list
            bott_rows = rep.bott_rows
            seen_cum = rep.seen_cum
            seen_base = rep.seen_base
            rows_list = rep.rows_list
            rounds_list = rep.rounds_list
            # ---- lazy-heap floor (sound: the fully-seen M_k never
            # decreases, every B is non-increasing) ----
            complete_list = complete.tolist()
            if full.full:
                floor = full.min_grade
                b_keep_arr = rep.b_arr > floor
                b_keep = b_keep_arr.tolist()
                kept = np.nonzero(b_keep_arr | complete)[0].tolist()
            else:
                b_keep = None
                kept = list(range(chunk.total))
            witness = rep.carry(witness)
            # ---- sequential replay: kept entries + per-round checks ----
            seq = store._seq
            ki = 0
            klen = len(kept)
            r_halt = None
            for r in range(c_eff):
                while ki < klen:
                    e = kept[ki]
                    if rounds_list[e] != r:
                        break
                    row = rows_list[e]
                    version = versions.get(row, 0) + 1
                    versions[row] = version
                    if b_keep is None or b_keep[e]:
                        seq += 1
                        heappush(b_heap, (-b_list[e], seq, row, version))
                    if complete_list[e]:
                        w = w_list[e]
                        w_map[row] = w
                        offer(row, w)
                        if witness is not None and witness.row == row:
                            # a fully seen witness may enter the buffer;
                            # it no longer proves the check fails
                            witness = None
                    ki += 1
                if full.full:
                    m_k = full.min_grade
                    seen_r = seen_base + seen_cum[r]
                    skip = seen_r < n and tau_list[r] > m_k
                    if not skip and witness is not None:
                        # not fully seen => outside the buffer; viability
                        # needs fresh B > M_k
                        if rep.witness_bound(witness, r) > m_k:
                            skip = True
                    if not skip:
                        rep.sync_fields(round_ends[r] + 1)
                        bottoms[:] = bott_rows[r]
                        store.seen_count_value = seen_r
                        store._seq = seq
                        topk_objs = [obj for obj, _ in full.items_desc()]
                        if not (seen_r < n and store.threshold > m_k):
                            found = store.find_viable_outside(
                                topk_objs, m_k
                            )
                            if found is None:
                                halt_reason = HaltReason.NO_VIABLE
                                r_halt = r
                            else:
                                witness = ChunkWitness(
                                    found[0], chunk, after_round=r
                                )
                        else:
                            witness = None
                        seq = store._seq
                        if r_halt is not None:
                            break
            store._seq = seq
            consumed = r_halt + 1 if r_halt is not None else c_eff
            rep.commit(session, positions, consumed)
            rounds += consumed
            if probe is not None and consumed:
                taus = tuple(float(t) for t in tau_list[:consumed])
                probe.on_round(
                    rounds, tau=taus[-1], w=full.min_grade, taus=taus
                )
            chunk_rounds = min(chunk_rounds * 2, 2048)

        ids = db._ids
        fully_seen = len(full.items_desc())
        if halt_reason == HaltReason.DEADLINE and not full.full:
            # the W-heap is never fed here (upper-bounds-only
            # bookkeeping), so rank the committed field matrix by the
            # 0-substituted lower bound directly
            matrix = store.field_matrix
            known = ~np.isnan(matrix)
            seen_idx = np.nonzero(known.any(axis=1))[0]
            topk_rows: list[int] = []
            items = []
            if seen_idx.size:
                w_all = aggregation.aggregate_batch(
                    np.where(known[seen_idx], matrix[seen_idx], 0.0)
                )
                best = np.argsort(-w_all, kind="stable")[:k]
                topk_rows = seen_idx[best].tolist()
                for row, w in zip(topk_rows, w_all[best].tolist()):
                    w_map.setdefault(row, w)
                items = [
                    RankedItem(
                        ids[row],
                        store.exact_grade(row),
                        w_map[row],
                        store.b_value(row),
                    )
                    for row in topk_rows
                ]
                items.sort(
                    key=lambda it: (-it.lower_bound, -it.upper_bound)
                )
            cert_topk: list = topk_rows
        else:
            items = [
                RankedItem(ids[row], grade, grade, grade)
                for row, grade in full.items_desc()
            ]
            cert_topk = [row for row, _ in full.items_desc()]
        return self._result(
            session, k, items, rounds, halt_reason, store, cert_topk,
            fully_seen,
        )

    def _result(
        self,
        session: AccessSession,
        k: int,
        items: list[RankedItem],
        rounds: int,
        halt_reason,
        store: CandidateStore,
        cert_topk: list,
        fully_seen: int,
    ) -> TopKResult:
        # imported lazily: repro.resilience builds on repro.core
        from ..resilience.degraded import finalize_certificates

        result = TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=halt_reason,
            max_buffer_size=store.seen_count,
            extras={"fully_seen": fully_seen},
        )
        return finalize_certificates(result, session, store, cert_topk)
