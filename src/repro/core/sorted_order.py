"""Top-k *in sorted order* without grades (Section 8.1's remark).

NRA returns the top-``k`` objects with no information about their
relative order (sorted by grade).  The paper observes the order can be
recovered by running the top-1, top-2, ..., top-``k`` queries and
diffing: the object added by the top-``i`` run ranks ``i``-th.  Since the
costs ``C_i`` of the sub-queries are *not* monotone in ``i``
(Example 8.3: sometimes ``C_2 < C_1``), the total cost is bounded by
``k * max_i C_i``, and because ``k`` is a constant this preserves
instance optimality.

Each sub-query runs on a *fresh* session (sorted access cannot rewind),
so the middleware pays the sum of the sub-query costs; the combined
accounting is returned alongside the ranking.

A subtlety the paper glosses over: with grade ties the top-``i`` and
top-``(i-1)`` object sets may differ in more than one object (any tied
object is a valid answer).  In that case the new rank is assigned to an
arbitrary member of the difference, which is still a correct sorted
order under tie-equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..aggregation.base import AggregationFunction
from ..middleware.cost import UNIT_COSTS, CostModel
from ..middleware.database import Database
from .base import QueryError
from .nra import NoRandomAccessAlgorithm
from .result import TopKResult

__all__ = ["SortedOrderResult", "sorted_topk_without_grades"]


@dataclass
class SortedOrderResult:
    """The ranked top-``k`` objects plus combined accounting."""

    ranking: list[Hashable]  # best first
    sub_results: list[TopKResult]  # the top-1 .. top-k runs
    total_sorted_accesses: int
    total_random_accesses: int
    total_cost: float

    @property
    def per_level_costs(self) -> list[float]:
        """``C_1, ..., C_k`` -- not necessarily monotone (Example 8.3)."""
        return [res.middleware_cost for res in self.sub_results]


def sorted_topk_without_grades(
    database: Database,
    aggregation: AggregationFunction,
    k: int,
    cost_model: CostModel = UNIT_COSTS,
    algorithm: NoRandomAccessAlgorithm | None = None,
) -> SortedOrderResult:
    """Recover the sorted top-``k`` order using only sorted access.

    Runs NRA for each prefix size 1..k on fresh sessions and derives the
    ranking from the set differences.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if k > database.num_objects:
        raise QueryError(
            f"k={k} exceeds the database size N={database.num_objects}"
        )
    algorithm = algorithm or NoRandomAccessAlgorithm()
    ranking: list[Hashable] = []
    placed: set[Hashable] = set()
    sub_results: list[TopKResult] = []
    for i in range(1, k + 1):
        result = algorithm.run_on(database, aggregation, i, cost_model)
        sub_results.append(result)
        new = [obj for obj in result.objects if obj not in placed]
        # exactly one genuinely new rank; ties may swap members, in which
        # case any new object is a valid occupant of rank i
        if not new:  # pragma: no cover - only reachable via ties
            continue
        ranking.append(new[0])
        placed.add(new[0])
        # under ties the earlier prefix may have contained an object the
        # top-i run dropped; the ranking remains grade-correct because
        # swapped objects tie exactly
    total_s = sum(res.sorted_accesses for res in sub_results)
    total_r = sum(res.random_accesses for res in sub_results)
    return SortedOrderResult(
        ranking=ranking,
        sub_results=sub_results,
        total_sorted_accesses=total_s,
        total_random_accesses=total_r,
        total_cost=cost_model.cost(total_s, total_r),
    )
