"""TA-theta -- the approximation variant of TA, and interactive early
stopping (Section 6.2).

For ``theta > 1``, a *theta-approximation* to the top-``k`` is a set of
``k`` objects such that ``theta * t(y) >= t(z)`` for every returned ``y``
and non-returned ``z``.  TA-theta changes TA's stopping rule to "halt as
soon as ``k`` objects have grade ``>= tau / theta``"; Theorem 6.6 shows
this is correct, and Theorem 6.7 that it is instance optimal among
no-wild-guess approximation algorithms.  (Theorem 6.9 shows the
distinctness-property analogue *fails*: Example 6.8 /
``benchmarks/bench_fig2_approx_wild_guess.py``.)

:meth:`ApproximateThresholdAlgorithm.run_interactive` implements the
user-facing protocol at the end of Section 6.2: after every round the user
sees the current top-``k`` and the live guarantee ``theta = tau / beta``
(``beta`` = the k-th buffered grade), and may stop whenever the guarantee
is good enough.
"""

from __future__ import annotations

from collections.abc import Callable

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession
from .base import QueryError, TopKBuffer
from .result import TopKResult
from .ta import EarlyStopView, ThresholdAlgorithm

__all__ = ["ApproximateThresholdAlgorithm"]


class ApproximateThresholdAlgorithm(ThresholdAlgorithm):
    """TA with the relaxed stopping rule ``min-grade >= tau / theta``."""

    def __init__(self, theta: float, remember_seen: bool = False):
        if theta <= 1.0:
            raise QueryError(
                f"theta must be > 1 (theta = 1 is exact TA), got {theta}"
            )
        super().__init__(remember_seen=remember_seen)
        self.theta = theta
        self.name = f"TA(theta={theta:g})"

    def _halt_on_threshold(self, buffer: TopKBuffer, tau: float) -> bool:
        return buffer.full and buffer.min_grade >= tau / self.theta

    def run_interactive(
        self,
        session: AccessSession,
        aggregation: AggregationFunction,
        k: int,
        stop_when: Callable[[EarlyStopView], bool],
    ) -> TopKResult:
        """Run TA but let ``stop_when`` end the run early.

        ``stop_when`` receives an :class:`~repro.core.ta.EarlyStopView`
        after every round once ``k`` objects are buffered; returning True
        stops the run, and the result's ``extras['guarantee']`` certifies
        the returned list as a ``guarantee``-approximation.  The built-in
        ``theta`` still applies (whichever halt fires first wins).
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if k > session.num_objects:
            raise QueryError(
                f"k={k} exceeds the database size N={session.num_objects}"
            )
        aggregation.check_arity(session.num_lists)
        self._check_capabilities(session)
        return self._execute(session, aggregation, k, observer=stop_when)
