"""The aggregation algorithms: the paper's contributions and baselines.

===================  ======================================  =============
Algorithm            Paper section                           Class
===================  ======================================  =============
TA                   4 (threshold algorithm)                 :class:`ThresholdAlgorithm`
TA-theta             6.2 (approximation / early stopping)    :class:`ApproximateThresholdAlgorithm`
TAZ                  7 (restricted sorted access)            :class:`RestrictedSortedAccessTA`
NRA                  8.1 (no random access)                  :class:`NoRandomAccessAlgorithm`
CA                   8.2 (combined algorithm)                :class:`CombinedAlgorithm`
FA                   3 (Fagin's algorithm)                   :class:`FaginAlgorithm`
Naive                1                                       :class:`NaiveAlgorithm`
max special case     3, 6 (mk sorted accesses)               :class:`MaxAlgorithm`
Intermittent         8.4 (CA strawman)                       :class:`IntermittentAlgorithm`
Quick-Combine        10 (related work)                       :class:`QuickCombine`
Stream-Combine       10 (related work)                       :class:`StreamCombine`
===================  ======================================  =============
"""

from .anytime import AnytimeView, anytime_topk
from .base import QueryError, TopKAlgorithm, TopKBuffer
from .bounds import CandidateStore
from .ca import CombinedAlgorithm
from .fa import FaginAlgorithm
from .intermittent import IntermittentAlgorithm
from .max_algorithm import MaxAlgorithm
from .naive import NaiveAlgorithm
from .nra import NoRandomAccessAlgorithm
from .quick_combine import QuickCombine
from .result import HaltReason, RankedItem, TopKResult
from .sorted_order import SortedOrderResult, sorted_topk_without_grades
from .stream_combine import StreamCombine
from .ta import EarlyStopView, ThresholdAlgorithm
from .ta_approx import ApproximateThresholdAlgorithm
from .ta_z import RestrictedSortedAccessTA

__all__ = [
    "AnytimeView",
    "anytime_topk",
    "QueryError",
    "TopKAlgorithm",
    "TopKBuffer",
    "CandidateStore",
    "CombinedAlgorithm",
    "FaginAlgorithm",
    "IntermittentAlgorithm",
    "MaxAlgorithm",
    "NaiveAlgorithm",
    "NoRandomAccessAlgorithm",
    "QuickCombine",
    "HaltReason",
    "RankedItem",
    "TopKResult",
    "SortedOrderResult",
    "sorted_topk_without_grades",
    "StreamCombine",
    "EarlyStopView",
    "ThresholdAlgorithm",
    "ApproximateThresholdAlgorithm",
    "RestrictedSortedAccessTA",
]
