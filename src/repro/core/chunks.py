"""Shared chunk assembly for the speculative columnar engines.

The chunked engines (TA's ``_execute_columnar`` and the
``_run_columnar`` engines of NRA, CA and Stream-Combine) speculate the
next ``chunk_rounds`` rounds' worth of sorted entries through the
uncharged columnar view.  The delicate conventions live here, once:

* entries are ordered exactly as the scalar loops consume them -- a
  stable sort by (round, list index), with within-list slice order
  preserved (``np.lexsort`` is stable);
* list ``i`` contributes ``batches[i]`` entries per round (entry ``e``
  of a list belongs to round ``e // batches[i]``), thinning out as the
  list nears exhaustion but never producing an empty round before
  ``c_eff``;
* the per-round bottoms matrix carries each list's last seen grade past
  its exhaustion (and the caller's current bottom before the list's
  first entry), so row ``r`` is exactly the scalar loop's bottom vector
  after round ``r``.

The engines must charge whatever prefix of the chunk they consume via
the session's batched access methods; nothing here touches accounting.

Besides assembly, this module holds the per-entry derivations the
bound-based engines (NRA, CA, Stream-Combine) share: the mid-round
bottom vectors each entry's cached ``B`` must see
(:func:`entry_bottoms`), the cumulative known-field rows feeding the
vectorised ``W``/``B`` computations (:func:`known_rows`), the index of
each round's last entry (:func:`round_last_entries`), and the running
distinct-object count per round (:func:`new_seen_cum`).  Each mirrors,
vectorised, exactly what the scalar reference loops observe entry by
entry -- the bit-for-bit differential tests depend on that.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "SortedChunk",
    "assemble_sorted_chunk",
    "entry_bottoms",
    "known_rows",
    "round_last_entries",
    "first_new_entries",
    "new_seen_cum",
    "witness_trajectory",
    "ChunkWitness",
    "ChunkReplay",
]


@dataclass
class SortedChunk:
    """One speculated run of lockstep rounds, in scalar consumption
    order."""

    #: entries available per list (aligned with the caller's list set)
    counts: list[int]
    #: backing row index per entry
    rows: np.ndarray
    #: grade per entry
    grades: np.ndarray
    #: round index per entry (non-decreasing)
    rounds: np.ndarray
    #: source list index per entry
    lists: np.ndarray
    #: number of entries
    total: int
    #: number of rounds present (max round index + 1)
    c_eff: int
    #: ``(c_eff, m)`` bottoms after each round, exhaustion-carried
    bottoms_matrix: np.ndarray

    def consumed_upto(self, consumed_rounds: int) -> int:
        """Number of entries in rounds ``< consumed_rounds``."""
        if consumed_rounds >= self.c_eff:
            return self.total
        return int(
            np.searchsorted(self.rounds, consumed_rounds, side="left")
        )


def assemble_sorted_chunk(
    order_rows: Sequence[np.ndarray],
    order_grades: Sequence[np.ndarray],
    positions: Sequence[int],
    sorted_lists: Sequence[int],
    batches: Sequence[int],
    chunk_rounds: int,
    num_objects: int,
    m: int,
    bottoms: Sequence[float],
) -> SortedChunk | None:
    """Slice the next ``chunk_rounds`` rounds from the columnar view.

    Returns ``None`` when every list in ``sorted_lists`` is already
    exhausted (the zero-progress round).
    """
    counts: list[int] = []
    rows_parts: list[np.ndarray] = []
    grade_parts: list[np.ndarray] = []
    round_parts: list[np.ndarray] = []
    list_parts: list[np.ndarray] = []
    for idx, i in enumerate(sorted_lists):
        b = batches[idx]
        c = min(chunk_rounds * b, num_objects - positions[i])
        counts.append(c)
        if c == 0:
            continue
        pos = positions[i]
        rows_parts.append(order_rows[i][pos : pos + c])
        grade_parts.append(order_grades[i][pos : pos + c])
        round_parts.append(np.arange(c, dtype=np.intp) // b)
        list_parts.append(np.full(c, i, dtype=np.intp))
    if not rows_parts:
        return None
    rows_all = np.concatenate(rows_parts)
    grades_all = np.concatenate(grade_parts)
    rounds_all = np.concatenate(round_parts)
    lists_all = np.concatenate(list_parts)
    if len(rows_parts) > 1:
        # stable: primary key round, secondary key list index -- the
        # scalar loops' exact consumption order
        order = np.lexsort((lists_all, rounds_all))
        rows_all = rows_all[order]
        grades_all = grades_all[order]
        rounds_all = rounds_all[order]
        lists_all = lists_all[order]
    c_eff = int(rounds_all[-1]) + 1
    bott = np.empty((c_eff, m), dtype=np.float64)
    for j in range(m):
        bott[:, j] = bottoms[j]
    part = 0
    for idx, i in enumerate(sorted_lists):
        c = counts[idx]
        if c == 0:
            continue
        b = batches[idx]
        idxs = np.minimum((np.arange(c_eff, dtype=np.intp) + 1) * b, c) - 1
        bott[:, i] = grade_parts[part][idxs]
        part += 1
    return SortedChunk(
        counts=counts,
        rows=rows_all,
        grades=grades_all,
        rounds=rounds_all,
        lists=lists_all,
        total=rows_all.shape[0],
        c_eff=c_eff,
        bottoms_matrix=bott,
    )


def round_last_entries(chunk: SortedChunk) -> np.ndarray:
    """Index of the last entry of each round ``r`` (rounds may thin out
    near the end of a list, but never vanish before ``c_eff``)."""
    return (
        np.searchsorted(
            chunk.rounds, np.arange(1, chunk.c_eff + 1, dtype=np.intp)
        )
        - 1
    )


def entry_bottoms(
    chunk: SortedChunk, bottoms: Sequence[float], m: int
) -> np.ndarray:
    """``(total, m)`` matrix: row ``e`` is the bottom vector the scalar
    loop holds immediately after consuming entry ``e`` -- the exact
    mid-round bottoms a cached ``B`` pushed at that point would see.

    Column ``j`` carries the grade of list ``j``'s most recent entry at
    or before ``e`` (the caller's current ``bottoms[j]`` before the
    list's first entry of the chunk).
    """
    total = chunk.total
    lists_all = chunk.lists
    grades_all = chunk.grades
    entry_range = np.arange(total, dtype=np.intp)
    out = np.empty((total, m), dtype=np.float64)
    for j in range(m):
        ej = np.nonzero(lists_all == j)[0]
        if ej.size == 0:
            out[:, j] = bottoms[j]
            continue
        ff = np.searchsorted(ej, entry_range, side="right")
        col = grades_all[ej[np.maximum(ff - 1, 0)]]
        out[:, j] = np.where(ff == 0, bottoms[j], col)
    return out


def known_rows(chunk: SortedChunk, field_matrix: np.ndarray) -> np.ndarray:
    """``(total, m)`` matrix: row ``e`` is entry ``e``'s object's known
    fields *just after* recording entry ``e`` (NaN = unknown).

    Starts from the chunk-start state in ``field_matrix`` plus each
    entry's own field, then overlays, in consumption order, the earlier
    in-chunk discoveries of objects that appear more than once in the
    chunk.  ``field_matrix`` is read, never written.
    """
    rows_all = chunk.rows
    lists_all = chunk.lists
    grades_all = chunk.grades
    entry_range = np.arange(chunk.total, dtype=np.intp)
    k_matrix = field_matrix[rows_all]
    k_matrix[entry_range, lists_all] = grades_all
    group = np.lexsort((entry_range, rows_all))
    prev_e = group[:-1]
    next_e = group[1:]
    same = rows_all[prev_e] == rows_all[next_e]
    dup_pairs = np.stack([prev_e[same], next_e[same]], axis=1).tolist()
    lists_list = lists_all.tolist()
    grades_list = grades_all.tolist()
    for prev_p, cur_p in dup_pairs:
        own = grades_list[cur_p]
        k_matrix[cur_p] = k_matrix[prev_p]
        k_matrix[cur_p, lists_list[cur_p]] = own
    return k_matrix


def first_new_entries(
    chunk: SortedChunk, seen_rows: np.ndarray
) -> np.ndarray:
    """Ascending entry indices at which an object *new to this run*
    makes its first appearance (``seen_rows`` marks rows seen in earlier
    chunks).  The order is the scalar loop's discovery order."""
    first_in_chunk = np.zeros(chunk.total, dtype=bool)
    first_in_chunk[np.unique(chunk.rows, return_index=True)[1]] = True
    return np.nonzero(first_in_chunk & ~seen_rows[chunk.rows])[0]


def new_seen_cum(
    chunk: SortedChunk,
    seen_rows: np.ndarray,
    ends: np.ndarray,
    new_entries: np.ndarray | None = None,
) -> list[int]:
    """Per round ``r``: how many objects *new to this run* appear in the
    chunk at rounds ``<= r``.  Adding the chunk-start seen count gives
    the scalar loop's ``seen_count`` after round ``r``.  Callers that
    need the first-appearance entries themselves (CA's candidate
    absorption) pass the precomputed ``first_new_entries`` array."""
    if new_entries is None:
        new_entries = first_new_entries(chunk, seen_rows)
    return np.searchsorted(new_entries, ends, side="right").tolist()


def witness_trajectory(
    aggregation, bottoms_matrix: np.ndarray, field_row: np.ndarray
) -> list[float]:
    """Per round ``r``: the viability witness's fresh upper bound ``B``
    under round ``r``'s bottoms -- ``bottoms_matrix`` rows with the
    witness's known fields (non-NaN entries of ``field_row``)
    substituted in.  Valid until the witness gains a field; the engines
    invalidate at its gain rounds (see :class:`ChunkWitness`)."""
    wit_rows = bottoms_matrix.copy()
    for j, g in enumerate(field_row.tolist()):
        if g == g:  # NaN check
            wit_rows[:, j] = g
    return aggregation.aggregate_batch(wit_rows).tolist()


class ChunkWitness:
    """Per-chunk bookkeeping for one viability witness.

    A witness skips a halting check only while its upper bound ``B``
    still clears the cutoff, and its cached per-round ``B`` trajectory
    is valid only until the witness gains a field.  This object owns
    the delicate part all three witness-gated engines (NRA, CA,
    Stream-Combine) share: the witness's in-chunk gain rounds and the
    trajectory invalidation at them.  The engine-specific standing
    predicates (``W < M_k`` for NRA/CA, not-fully-seen for
    Stream-Combine) and the witness's *retirement* (falling at a check,
    being resolved by a CA phase, completing in Stream-Combine) stay in
    the engines.
    """

    __slots__ = ("row", "_gains", "_ptr", "_trajectory")

    def __init__(self, row, chunk: SortedChunk, after_round: int = -1):
        """Track ``row`` through ``chunk``; with ``after_round >= 0``
        (a witness found mid-chunk at that round), gains at or before
        it are already reflected in the fields used for the first
        trajectory computation."""
        self.row = row
        self._gains: list[int] = chunk.rounds[
            np.nonzero(chunk.rows == row)[0]
        ].tolist()
        self._ptr = (
            int(np.searchsorted(self._gains, after_round, side="right"))
            if after_round >= 0
            else 0
        )
        self._trajectory: list[float] | None = None

    def bound_at(self, r: int, compute) -> float:
        """The witness's ``B`` after round ``r``; ``compute(r)`` builds
        the trajectory (via :func:`witness_trajectory`, after syncing
        fields to round ``r``) when no valid cache exists."""
        gains = self._gains
        ptr = self._ptr
        while ptr < len(gains) and gains[ptr] <= r:
            self._trajectory = None
            ptr += 1
        self._ptr = ptr
        if self._trajectory is None:
            self._trajectory = compute(r)
        return self._trajectory[r]


class ChunkReplay:
    """One chunk's derived state and commit bookkeeping, shared by the
    bound-based chunked engines (NRA, CA, Stream-Combine).

    Owns, once, the per-chunk scaffolding the three replays used to
    duplicate: the vectorised derivations (per-entry ``W`` and cached
    ``B``, per-round thresholds and bottoms, the cumulative new-seen
    counts), the lazy field-matrix sync, the witness-bound trajectory
    plumbing, the incremental charging of the consumed sorted prefix,
    and the end-of-chunk commit.  The engine-specific parts -- lazy-heap
    floors, CA's random-access phases, the halting-check bodies -- stay
    in the engines.

    The engines all run lockstep over every list (``sorted_lists =
    range(m)``, one entry per list per round), which is what
    :meth:`charge_sorted` assumes; TA's engine (arbitrary list subsets
    and batch sizes) keeps its own charging.
    """

    __slots__ = (
        "chunk",
        "aggregation",
        "field_matrix",
        "rows_all",
        "lists_all",
        "grades_all",
        "c_eff",
        "round_ends",
        "unknown",
        "w_arr",
        "w_list",
        "b_arr",
        "b_list",
        "bott",
        "bott_rows",
        "tau_list",
        "rows_list",
        "rounds_list",
        "new_entries",
        "seen_cum",
        "seen_base",
        "_store",
        "_seen_rows",
        "_bottoms",
        "_synced",
        "_charged_rounds",
    )

    def __init__(
        self,
        chunk: SortedChunk,
        aggregation,
        store,
        seen_rows: np.ndarray,
        bottoms,
        m: int,
        track_new_entries: bool = False,
    ):
        self.chunk = chunk
        self.aggregation = aggregation
        self.field_matrix = store.field_matrix
        self.rows_all = chunk.rows
        self.lists_all = chunk.lists
        self.grades_all = chunk.grades
        self.c_eff = chunk.c_eff
        self.round_ends = round_last_entries(chunk)
        k_matrix = known_rows(chunk, self.field_matrix)
        self.unknown = np.isnan(k_matrix)
        self.w_arr = aggregation.aggregate_batch(
            np.where(self.unknown, 0.0, k_matrix)
        )
        self.w_list = self.w_arr.tolist()
        self.bott = chunk.bottoms_matrix
        self.tau_list = aggregation.aggregate_batch(self.bott).tolist()
        self.bott_rows = self.bott.tolist()
        self.b_arr = aggregation.aggregate_batch(
            np.where(self.unknown, entry_bottoms(chunk, bottoms, m), k_matrix)
        )
        self.b_list = self.b_arr.tolist()
        self.rows_list = chunk.rows.tolist()
        self.rounds_list = chunk.rounds.tolist()
        self.new_entries = (
            first_new_entries(chunk, seen_rows) if track_new_entries else None
        )
        self.seen_cum = new_seen_cum(
            chunk, seen_rows, self.round_ends, self.new_entries
        )
        self.seen_base = int(store.seen_count_value)
        self._store = store
        self._seen_rows = seen_rows
        self._bottoms = bottoms
        self._synced = 0
        self._charged_rounds = 0

    def sync_fields(self, upto: int) -> None:
        """Scatter entries ``< upto`` into the store's field matrix
        (idempotent per prefix; called lazily before any state read that
        needs fields current)."""
        if upto > self._synced:
            s = self._synced
            self.field_matrix[
                self.rows_all[s:upto], self.lists_all[s:upto]
            ] = self.grades_all[s:upto]
            self._synced = upto

    def carry(self, witness: ChunkWitness | None) -> ChunkWitness | None:
        """Re-anchor a witness carried over from an earlier chunk to
        this chunk's gain rounds (``None`` passes through)."""
        if witness is None:
            return None
        return ChunkWitness(witness.row, self.chunk)

    def witness_bound(self, witness: ChunkWitness, r: int) -> float:
        """The witness's fresh ``B`` after round ``r``, via its cached
        per-round trajectory (fields synced to round ``r`` first when
        the trajectory must be rebuilt)."""

        def compute(rr: int) -> list[float]:
            self.sync_fields(self.round_ends[rr] + 1)
            return witness_trajectory(
                self.aggregation, self.bott, self.field_matrix[witness.row]
            )

        return witness.bound_at(r, compute)

    def charge_sorted(self, session, positions, upto_rounds: int) -> None:
        """Charge the consumed sorted prefix through ``upto_rounds``
        rounds, incrementally: only the delta beyond what this chunk
        already charged is issued, in list order -- the scalar loops'
        exact charging order (CA calls this before each phase's random
        accesses; the commit charges whatever remains)."""
        if upto_rounds > self._charged_rounds:
            counts = self.chunk.counts
            charged = self._charged_rounds
            for i in range(len(counts)):
                c_new = min(upto_rounds, counts[i])
                c_old = min(charged, counts[i])
                if c_new > c_old:
                    session.sorted_access_batch(i, c_new - c_old)
                    positions[i] += c_new - c_old
            self._charged_rounds = upto_rounds

    def commit(self, session, positions, consumed: int) -> int:
        """End-of-chunk bookkeeping once the replay fixed the number of
        ``consumed`` rounds: field scatter, seen set and count, the
        per-entry ``b_evaluations`` accounting, the caller's bottoms,
        and the remaining sorted charges.  Returns the number of entries
        consumed."""
        upto = self.chunk.consumed_upto(consumed)
        self.sync_fields(upto)
        self._seen_rows[self.rows_all[:upto]] = True
        self._store.seen_count_value = (
            self.seen_base + self.seen_cum[consumed - 1]
        )
        self._store.b_evaluations += upto
        self._bottoms[:] = self.bott_rows[consumed - 1]
        self.charge_sorted(session, positions, consumed)
        return upto
