"""Shared chunk assembly for the speculative columnar engines.

Both chunked engines (TA's ``_execute_columnar`` and NRA's
``_run_columnar``) speculate the next ``chunk_rounds`` rounds' worth of
sorted entries through the uncharged columnar view.  The delicate
conventions live here, once:

* entries are ordered exactly as the scalar loops consume them -- a
  stable sort by (round, list index), with within-list slice order
  preserved (``np.lexsort`` is stable);
* list ``i`` contributes ``batches[i]`` entries per round (entry ``e``
  of a list belongs to round ``e // batches[i]``), thinning out as the
  list nears exhaustion but never producing an empty round before
  ``c_eff``;
* the per-round bottoms matrix carries each list's last seen grade past
  its exhaustion (and the caller's current bottom before the list's
  first entry), so row ``r`` is exactly the scalar loop's bottom vector
  after round ``r``.

The engines must charge whatever prefix of the chunk they consume via
the session's batched access methods; nothing here touches accounting.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["SortedChunk", "assemble_sorted_chunk"]


@dataclass
class SortedChunk:
    """One speculated run of lockstep rounds, in scalar consumption
    order."""

    #: entries available per list (aligned with the caller's list set)
    counts: list[int]
    #: backing row index per entry
    rows: np.ndarray
    #: grade per entry
    grades: np.ndarray
    #: round index per entry (non-decreasing)
    rounds: np.ndarray
    #: source list index per entry
    lists: np.ndarray
    #: number of entries
    total: int
    #: number of rounds present (max round index + 1)
    c_eff: int
    #: ``(c_eff, m)`` bottoms after each round, exhaustion-carried
    bottoms_matrix: np.ndarray

    def consumed_upto(self, consumed_rounds: int) -> int:
        """Number of entries in rounds ``< consumed_rounds``."""
        if consumed_rounds >= self.c_eff:
            return self.total
        return int(
            np.searchsorted(self.rounds, consumed_rounds, side="left")
        )


def assemble_sorted_chunk(
    order_rows: Sequence[np.ndarray],
    order_grades: Sequence[np.ndarray],
    positions: Sequence[int],
    sorted_lists: Sequence[int],
    batches: Sequence[int],
    chunk_rounds: int,
    num_objects: int,
    m: int,
    bottoms: Sequence[float],
) -> SortedChunk | None:
    """Slice the next ``chunk_rounds`` rounds from the columnar view.

    Returns ``None`` when every list in ``sorted_lists`` is already
    exhausted (the zero-progress round).
    """
    counts: list[int] = []
    rows_parts: list[np.ndarray] = []
    grade_parts: list[np.ndarray] = []
    round_parts: list[np.ndarray] = []
    list_parts: list[np.ndarray] = []
    for idx, i in enumerate(sorted_lists):
        b = batches[idx]
        c = min(chunk_rounds * b, num_objects - positions[i])
        counts.append(c)
        if c == 0:
            continue
        pos = positions[i]
        rows_parts.append(order_rows[i][pos : pos + c])
        grade_parts.append(order_grades[i][pos : pos + c])
        round_parts.append(np.arange(c, dtype=np.intp) // b)
        list_parts.append(np.full(c, i, dtype=np.intp))
    if not rows_parts:
        return None
    rows_all = np.concatenate(rows_parts)
    grades_all = np.concatenate(grade_parts)
    rounds_all = np.concatenate(round_parts)
    lists_all = np.concatenate(list_parts)
    if len(rows_parts) > 1:
        # stable: primary key round, secondary key list index -- the
        # scalar loops' exact consumption order
        order = np.lexsort((lists_all, rounds_all))
        rows_all = rows_all[order]
        grades_all = grades_all[order]
        rounds_all = rounds_all[order]
        lists_all = lists_all[order]
    c_eff = int(rounds_all[-1]) + 1
    bott = np.empty((c_eff, m), dtype=np.float64)
    for j in range(m):
        bott[:, j] = bottoms[j]
    part = 0
    for idx, i in enumerate(sorted_lists):
        c = counts[idx]
        if c == 0:
            continue
        b = batches[idx]
        idxs = np.minimum((np.arange(c_eff, dtype=np.intp) + 1) * b, c) - 1
        bott[:, i] = grade_parts[part][idxs]
        part += 1
    return SortedChunk(
        counts=counts,
        rows=rows_all,
        grades=grades_all,
        rounds=rounds_all,
        lists=lists_all,
        total=rows_all.shape[0],
        c_eff=c_eff,
        bottoms_matrix=bott,
    )
