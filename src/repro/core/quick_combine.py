"""Quick-Combine (Guentzer, Balke, Kiessling) -- TA with a heuristic
sorted-access schedule (Section 10 of the paper).

The basic version of Quick-Combine is equivalent to TA; the full version
replaces lockstep sorted access with a greedy rule: prefer the list whose
grades are declining fastest, weighted by the aggregation function's
sensitivity to that list,

    Delta_i  =  w_i * ( x_i(d_i - p) - x_i(d_i) )

where ``x_i(d)`` is the grade at depth ``d`` of list ``i``, ``p`` a
look-back window, and ``w_i`` a stand-in for ``dt/dx_i`` (uniform for
functions like ``min`` that have no useful derivative -- the paper's first
criticism).  Skewed lists pull the threshold down quickly, so TA can halt
sooner on skewed data.

The paper's second criticism is that the pure heuristic is **not instance
optimal**: a list can be starved forever (see
``tests/test_quick_combine.py`` for a concrete starvation family), and
remarks that forcing every list to be accessed at least once every ``u``
steps restores instance optimality.  The ``fairness`` parameter implements
exactly that patch; ``fairness=None`` is the pure heuristic.

Everything else (resolve each newly seen object by random access, halt
when ``k`` buffered objects reach the threshold ``t`` of the current
bottoms) is TA; correctness for monotone ``t`` follows from footnote 6
(TA's proof never uses lockstep).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession
from .base import TopKAlgorithm, TopKBuffer
from .result import HaltReason, RankedItem, TopKResult

__all__ = ["QuickCombine"]


class QuickCombine(TopKAlgorithm):
    """TA with grade-decline-greedy list scheduling."""

    name = "QuickCombine"

    def __init__(
        self,
        window: int = 5,
        fairness: int | None = None,
        remember_seen: bool = False,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if fairness is not None and fairness < 1:
            raise ValueError(f"fairness must be >= 1, got {fairness}")
        self.window = window
        self.fairness = fairness
        self.remember_seen = remember_seen
        if fairness is not None:
            self.name = f"QuickCombine(u={fairness})"

    def _run(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        m = session.num_lists
        buffer = TopKBuffer(k)
        bottoms = [1.0] * m
        history: list[deque[float]] = [
            deque(maxlen=self.window + 1) for _ in range(m)
        ]
        staleness = [0] * m
        alive = [True] * m
        cache: dict[Hashable, dict[int, float]] | None = (
            {} if self.remember_seen else None
        )
        weights = [aggregation.heuristic_weight(i, m) for i in range(m)]
        steps = 0
        max_buffer = 0
        halt_reason = None

        def delta(i: int) -> float:
            """Estimated grade decline of list i over the window."""
            h = history[i]
            if len(h) < 2:
                return float("inf")  # force initial exploration
            return weights[i] * (h[0] - h[-1])

        def choose_list() -> int | None:
            live = [i for i in range(m) if alive[i]]
            if not live:
                return None
            if self.fairness is not None:
                overdue = [i for i in live if staleness[i] >= self.fairness]
                if overdue:
                    return max(overdue, key=lambda i: staleness[i])
            return max(live, key=delta)

        while halt_reason is None:
            i = choose_list()
            if i is None:
                halt_reason = HaltReason.EXHAUSTED
                break
            entry = session.sorted_access(i)
            if entry is None:
                alive[i] = False
                # every object has been seen via this exhausted list
                halt_reason = HaltReason.EXHAUSTED
                break
            steps += 1
            for j in range(m):
                staleness[j] = 0 if j == i else staleness[j] + 1
            obj, grade = entry
            bottoms[i] = grade
            history[i].append(grade)
            overall = self._resolve(session, aggregation, obj, i, grade, m, cache)
            buffer.offer(obj, overall)
            max_buffer = max(
                max_buffer,
                len(buffer) + (len(cache) if cache is not None else 0),
            )
            tau = aggregation.aggregate(tuple(bottoms))
            if buffer.full and buffer.min_grade >= tau:
                halt_reason = HaltReason.THRESHOLD

        items = [
            RankedItem(obj, grade, grade, grade)
            for obj, grade in buffer.items_desc()
        ]
        return TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=steps,
            depth=session.depth,
            halt_reason=halt_reason,
            max_buffer_size=max_buffer,
            extras={
                "per_list_depth": {
                    i: session.position(i) for i in range(m)
                },
            },
        )

    def _resolve(
        self,
        session: AccessSession,
        aggregation: AggregationFunction,
        obj: Hashable,
        seen_list: int,
        seen_grade: float,
        m: int,
        cache: dict[Hashable, dict[int, float]] | None,
    ) -> float:
        if cache is None:
            grades = tuple(
                seen_grade if j == seen_list else session.random_access(j, obj)
                for j in range(m)
            )
            return aggregation.aggregate(grades)
        known = cache.setdefault(obj, {})
        known[seen_list] = seen_grade
        for j in range(m):
            if j not in known:
                known[j] = session.random_access(j, obj)
        return aggregation.aggregate(tuple(known[j] for j in range(m)))
