"""TA -- the Threshold Algorithm (Section 4), the paper's central object.

The loop is exactly the paper's:

1. Sorted access in parallel to each list.  Every object seen under
   sorted access is immediately resolved by random access to the other
   ``m - 1`` lists, its overall grade computed, and offered to a
   ``k``-slot buffer.
2. After each round, the *threshold* ``tau = t(bottom_1, ..., bottom_m)``
   is recomputed from the last grades seen under sorted access.  Halt as
   soon as the buffer holds ``k`` objects with grade ``>= tau``.

Correctness for every monotone ``t`` is Theorem 4.1 (an unseen object has
every field at or below the bottoms, so its grade is at most ``tau``).
Instance optimality over no-wild-guess algorithms is Theorem 6.1, with
ratio ``m + m(m-1) cR/cS`` tight for strict ``t`` (Corollary 6.2).

Two implementation switches:

``remember_seen=False`` (default)
    The paper's bounded-buffer TA (Theorem 4.2): grades learned earlier
    are deliberately *not* cached, so re-seeing an object re-pays
    ``m - 1`` random accesses.  Buffer = ``k`` objects + ``m`` bottoms.
``remember_seen=True``
    The practical variant with an unbounded seen-cache that skips
    duplicate random accesses -- the memory/cost trade-off the paper
    discusses after Theorem 4.2, measurable via ``max_buffer_size``.

Execution backends: when the session reports
:attr:`~repro.middleware.access.AccessSession.supports_batches` (columnar
database, no trace), TA runs on a *speculative chunked engine*: it scans
a chunk of upcoming rounds through the uncharged
:meth:`~repro.middleware.access.AccessSession.columnar_view`, computes
every candidate overall grade and every round's threshold in one
``aggregate_batch`` each, replays the paper's per-round loop (buffer
offers, threshold test, exhaustion test -- all via the same hooks the
scalar loop uses) to locate the exact halting round, then charges
exactly the consumed prefix through ``sorted_access_batch`` /
``random_access_batch``.  Results, halting reason, rounds, and every
access count are identical to the scalar reference loop -- the
differential test suite holds the two paths equal bit for bit; the
speculative read-ahead is an engine-level device that never influences
the output (see ``columnar_view``'s contract).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession
from ..middleware.errors import ListLostError
from .base import QueryError, TopKAlgorithm, TopKBuffer
from .bounds import CandidateStore
from .chunks import assemble_sorted_chunk
from .result import HaltReason, RankedItem, TopKResult

__all__ = ["ThresholdAlgorithm", "EarlyStopView"]


@dataclass(frozen=True)
class EarlyStopView:
    """Snapshot shown to an interactive user after each round
    (Section 6.2's early-stopping protocol).

    ``guarantee`` is the paper's ``theta = tau / beta``: the current top-k
    list is a ``theta``-approximation to the true top-k.  It is ``1`` (or
    less) exactly when TA's stopping rule has fired.
    """

    round: int
    depth: int
    items: tuple[tuple[Hashable, float], ...]
    tau: float
    beta: float

    @property
    def guarantee(self) -> float:
        if self.beta <= 0:
            return float("inf")
        return max(1.0, self.tau / self.beta)


class ThresholdAlgorithm(TopKAlgorithm):
    """TA, faithful to Section 4 (see module docstring).

    ``batch_sizes`` implements footnote 6's relaxation: list ``i``
    receives ``batch_sizes[i]`` sorted accesses per round instead of
    one.  Correctness is unchanged (the threshold always uses the
    current bottoms), and instance optimality survives because the
    access rates stay within constant multiples of each other.
    """

    name = "TA"

    def __init__(
        self,
        remember_seen: bool = False,
        batch_sizes: Sequence[int] | None = None,
    ):
        self.remember_seen = remember_seen
        if batch_sizes is not None:
            batch_sizes = tuple(int(b) for b in batch_sizes)
            if not batch_sizes or any(b < 1 for b in batch_sizes):
                raise ValueError(
                    f"batch sizes must be positive integers, got {batch_sizes}"
                )
        self.batch_sizes = batch_sizes
        if remember_seen:
            self.name = "TA(cache)"
        if batch_sizes is not None:
            self.name += f"(batches={list(batch_sizes)})"

    # ------------------------------------------------------------------
    # hooks overridden by TA-theta and TAZ
    # ------------------------------------------------------------------
    def _halt_on_threshold(self, buffer: TopKBuffer, tau: float) -> bool:
        """The paper's stopping rule: k buffered objects with grade >= tau."""
        return buffer.full and buffer.min_grade >= tau

    def _lists_for_sorted_access(self, session: AccessSession) -> Sequence[int]:
        return range(session.num_lists)

    # ------------------------------------------------------------------
    def _run(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        return self._execute(session, aggregation, k, observer=None)

    def _execute(
        self,
        session: AccessSession,
        aggregation: AggregationFunction,
        k: int,
        observer: Callable[[EarlyStopView], bool] | None,
    ) -> TopKResult:
        m = session.num_lists
        sorted_lists = list(self._lists_for_sorted_access(session))
        if self.batch_sizes is not None and len(self.batch_sizes) != len(
            sorted_lists
        ):
            raise QueryError(
                f"{self.name}: got {len(self.batch_sizes)} batch sizes for "
                f"{len(sorted_lists)} sorted-accessible lists"
            )
        batches = self.batch_sizes or (1,) * len(sorted_lists)
        if session.supports_batches:
            return self._execute_columnar(
                session, aggregation, k, observer, sorted_lists, batches, m
            )
        buffer = TopKBuffer(k)
        bottoms = [1.0] * m
        probe = getattr(session, "probe", None)
        cache: dict[Hashable, dict[int, float]] | None = (
            {} if self.remember_seen else None
        )
        # survive mode keeps a shadow candidate store from round one:
        # TA's own buffer requires full resolution, which dies with the
        # lost list's random access, but the shadow's W/B bounds stay
        # sound and let complete_with_sorted_only finish NRA-style
        shadow = (
            CandidateStore(aggregation, m, k)
            if session.survive_list_loss
            else None
        )
        lost_hit = False
        rounds = 0
        max_buffer = 0
        halt_reason = None

        while halt_reason is None:
            if session.budget_exceeded:
                halt_reason = HaltReason.DEADLINE
                break
            rounds += 1
            progressed = False
            for i, batch in zip(sorted_lists, batches):
                for _ in range(batch):
                    entry = session.sorted_access(i)
                    if entry is None:
                        break
                    progressed = True
                    obj, grade = entry
                    bottoms[i] = grade
                    if shadow is not None:
                        shadow.update_bottom(i, grade)
                        shadow.record(obj, i, grade)
                    try:
                        overall = self._resolve(
                            session, aggregation, obj, i, grade, m, cache,
                            shadow,
                        )
                    except ListLostError:
                        lost_hit = True
                        break
                    buffer.offer(obj, overall)
                if lost_hit:
                    break
            if lost_hit or (shadow is not None and session.lost_lists):
                return self._complete_degraded(
                    session,
                    aggregation,
                    k,
                    shadow,
                    rounds,
                    max_buffer,
                    sorted_lists,
                )
            max_buffer = max(
                max_buffer, len(buffer) + (len(cache) if cache is not None else 0)
            )
            tau = aggregation.aggregate(tuple(bottoms))
            if probe is not None:
                probe.on_round(rounds, tau=tau, w=buffer.min_grade, b=tau)
            if self._halt_on_threshold(buffer, tau):
                halt_reason = HaltReason.THRESHOLD
            elif observer is not None and buffer.full:
                view = EarlyStopView(
                    round=rounds,
                    depth=session.depth,
                    items=tuple(buffer.items_desc()),
                    tau=tau,
                    beta=buffer.min_grade,
                )
                if observer(view):
                    halt_reason = HaltReason.INTERACTIVE
            if halt_reason is None:
                if not progressed:
                    # every sorted-capable list is exhausted: every object
                    # has been seen and resolved, so the buffer is exact
                    halt_reason = HaltReason.EXHAUSTED
                elif any(session.exhausted(i) for i in sorted_lists):
                    # one list ran dry mid-run: every object has appeared in
                    # it, hence has been seen and resolved already
                    halt_reason = HaltReason.EXHAUSTED

        tau = aggregation.aggregate(tuple(bottoms))
        beta = buffer.min_grade
        items = [
            RankedItem(obj, grade, grade, grade)
            for obj, grade in buffer.items_desc()
        ]
        extras = {
            "final_threshold": tau,
            "guarantee": max(1.0, tau / beta) if beta > 0 else float("inf"),
        }
        if halt_reason == HaltReason.DEADLINE:
            # THRESHOLD would have fired at guarantee <= 1: the same
            # tau/beta ratio IS the certified factor at the deadline
            extras["certified_theta"] = extras["guarantee"]
        return TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=halt_reason,
            max_buffer_size=max_buffer,
            extras=extras,
        )

    def _complete_degraded(
        self,
        session: AccessSession,
        aggregation: AggregationFunction,
        k: int,
        shadow: CandidateStore,
        rounds: int,
        max_buffer: int,
        sorted_lists: Sequence[int],
    ) -> TopKResult:
        """A list died mid-run: finish NRA-style over the survivors
        using the shadow store's (still sound) W/B bounds, and report a
        certified :class:`~repro.resilience.degraded.DegradedResult`."""
        # imported lazily: repro.resilience builds on repro.core
        from ..resilience.degraded import (
            complete_with_sorted_only,
            finalize_certificates,
        )

        topk, rounds, halt_reason = complete_with_sorted_only(
            session, aggregation, k, shadow, rounds, lists=sorted_lists
        )
        items = [
            RankedItem(
                obj,
                shadow.exact_grade(obj),
                shadow.w[obj],
                shadow.b_value(obj),
            )
            for obj in topk
        ]
        items.sort(key=lambda it: (-it.lower_bound, -it.upper_bound))
        result = TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=halt_reason,
            max_buffer_size=max(max_buffer, shadow.seen_count),
            extras={"final_threshold": shadow.threshold},
        )
        return finalize_certificates(result, session, shadow, topk)

    def _execute_columnar(
        self,
        session: AccessSession,
        aggregation: AggregationFunction,
        k: int,
        observer: Callable[[EarlyStopView], bool] | None,
        sorted_lists: Sequence[int],
        batches: Sequence[int],
        m: int,
    ) -> TopKResult:
        """The speculative chunked engine (see the module docstring).

        Per chunk: read the next ``chunk_rounds`` rounds' worth of sorted
        entries through the uncharged columnar view, compute every
        overall grade and every round's threshold vectorised, replay the
        paper's rounds sequentially (through the same
        ``_halt_on_threshold`` / observer hooks as the scalar loop) to
        find the exact halting round, then charge precisely the consumed
        prefix through the session's batched access methods.
        """
        db = session.columnar_view()
        matrix = db._matrix
        order_rows = db._order_rows
        order_grades = db._order_grades
        n = db.num_objects
        buffer = TopKBuffer(k)
        offer = buffer.offer
        bottoms = [1.0] * m
        probe = getattr(session, "probe", None)
        cache: dict[Hashable, dict[int, float]] | None = (
            {} if self.remember_seen else None
        )
        positions = [session.position(i) for i in range(m)]
        rounds = 0
        max_buffer = 0
        halt_reason = None
        chunk_rounds = 32

        while halt_reason is None:
            if session.budget_exceeded:
                # chunk boundary: everything consumed has been charged
                halt_reason = HaltReason.DEADLINE
                break
            # ---- speculative chunk assembly (uncharged view reads) ----
            chunk = assemble_sorted_chunk(
                order_rows,
                order_grades,
                positions,
                sorted_lists,
                batches,
                chunk_rounds,
                n,
                m,
                bottoms,
            )
            if chunk is None:
                # phantom round on a fully exhausted database: replay the
                # scalar tail exactly (threshold, observer, exhaustion)
                rounds += 1
                tau = aggregation.aggregate(tuple(bottoms))
                if probe is not None:
                    probe.on_round(rounds, tau=tau, w=buffer.min_grade, b=tau)
                if self._halt_on_threshold(buffer, tau):
                    halt_reason = HaltReason.THRESHOLD
                elif observer is not None and buffer.full:
                    view = EarlyStopView(
                        round=rounds,
                        depth=max(positions),
                        items=tuple(buffer.items_desc()),
                        tau=tau,
                        beta=buffer.min_grade,
                    )
                    if observer(view):
                        halt_reason = HaltReason.INTERACTIVE
                if halt_reason is None:
                    halt_reason = HaltReason.EXHAUSTED
                break
            counts = chunk.counts
            rows_all = chunk.rows
            grades_all = chunk.grades
            rounds_all = chunk.rounds
            lists_all = chunk.lists
            total = chunk.total
            c_eff = chunk.c_eff
            bott = chunk.bottoms_matrix
            overall_arr = aggregation.aggregate_batch(matrix[rows_all])
            overall = overall_arr.tolist()
            objs_all = db.ids_for_rows(rows_all)
            rounds_list = rounds_all.tolist()
            tau_list = aggregation.aggregate_batch(bott).tolist()
            # first round (if any) in which some list runs dry
            exhaust_round = None
            for idx, i in enumerate(sorted_lists):
                c = counts[idx]
                if positions[i] + c >= n:
                    r = (c - 1) // batches[idx] if c > 0 else 0
                    if exhaust_round is None or r < exhaust_round:
                        exhaust_round = r
            # prefilter: entries that cannot enter the buffer (grade not
            # strictly above the current floor) are skipped -- offer()
            # would reject them unchanged, and the floor only rises
            if buffer.full:
                accepted = np.nonzero(overall_arr > buffer.min_grade)[0].tolist()
            else:
                accepted = list(range(total))
            # ---- exact sequential replay of the paper's rounds ----
            halt_round = None
            ai = 0
            acc_len = len(accepted)
            for r in range(c_eff):
                while ai < acc_len and rounds_list[accepted[ai]] == r:
                    p = accepted[ai]
                    offer(objs_all[p], overall[p])
                    ai += 1
                tau = tau_list[r]
                if self._halt_on_threshold(buffer, tau):
                    halt_reason = HaltReason.THRESHOLD
                    halt_round = r
                    break
                if observer is not None and buffer.full:
                    depth = 0
                    for idx, i in enumerate(sorted_lists):
                        d = positions[i] + min(
                            (r + 1) * batches[idx], counts[idx]
                        )
                        if d > depth:
                            depth = d
                    view = EarlyStopView(
                        round=rounds + r + 1,
                        depth=depth,
                        items=tuple(buffer.items_desc()),
                        tau=tau,
                        beta=buffer.min_grade,
                    )
                    if observer(view):
                        halt_reason = HaltReason.INTERACTIVE
                        halt_round = r
                        break
                if exhaust_round is not None and r >= exhaust_round:
                    halt_reason = HaltReason.EXHAUSTED
                    halt_round = r
                    break
            consumed = halt_round + 1 if halt_round is not None else c_eff
            # ---- commit: charge exactly the consumed prefix ----
            for idx, i in enumerate(sorted_lists):
                c = min(consumed * batches[idx], counts[idx])
                if c:
                    session.sorted_access_batch(i, c)
                    positions[i] += c
            upto = chunk.consumed_upto(consumed)
            bottoms[:] = bott[consumed - 1].tolist()
            rows_prefix = rows_all[:upto]
            lists_prefix = lists_all[:upto]
            if cache is None:
                if m > 1:
                    # bounded-buffer TA: every entry re-pays m - 1
                    # random accesses, order-independent per list
                    for j in range(m):
                        mask = lists_prefix != j
                        rows_j = rows_prefix[mask]
                        if rows_j.size:
                            session.random_access_batch(j, None, rows=rows_j)
            else:
                # seen-cache: plan sequentially in scalar order so
                # duplicates skip exactly the same accesses
                pending_objs: list[list] = [[] for _ in range(m)]
                pending_rows: list[list[int]] = [[] for _ in range(m)]
                rows_pref = rows_prefix.tolist()
                lists_pref = lists_prefix.tolist()
                grades_pref = grades_all[:upto].tolist()
                for p in range(upto):
                    obj = objs_all[p]
                    known = cache.setdefault(obj, {})
                    known[lists_pref[p]] = grades_pref[p]
                    for j in range(m):
                        if j not in known:
                            known[j] = None  # filled after the gather
                            pending_objs[j].append(obj)
                            pending_rows[j].append(rows_pref[p])
                for j in range(m):
                    if pending_objs[j]:
                        fetched = session.random_access_batch(
                            j,
                            pending_objs[j],
                            rows=np.asarray(pending_rows[j], dtype=np.intp),
                        )
                        for obj, g in zip(pending_objs[j], fetched.tolist()):
                            cache[obj][j] = g
            rounds += consumed
            if probe is not None and consumed:
                taus = tuple(float(t) for t in tau_list[:consumed])
                probe.on_round(
                    rounds, tau=taus[-1], w=buffer.min_grade, b=taus[-1],
                    taus=taus,
                )
            size = len(buffer) + (len(cache) if cache is not None else 0)
            if size > max_buffer:
                max_buffer = size
            chunk_rounds = min(chunk_rounds * 2, 4096)

        tau = aggregation.aggregate(tuple(bottoms))
        beta = buffer.min_grade
        items = [
            RankedItem(obj, grade, grade, grade)
            for obj, grade in buffer.items_desc()
        ]
        extras = {
            "final_threshold": tau,
            "guarantee": max(1.0, tau / beta) if beta > 0 else float("inf"),
        }
        if halt_reason == HaltReason.DEADLINE:
            extras["certified_theta"] = extras["guarantee"]
        return TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=halt_reason,
            max_buffer_size=max_buffer,
            extras=extras,
        )

    def _resolve(
        self,
        session: AccessSession,
        aggregation: AggregationFunction,
        obj: Hashable,
        seen_list: int,
        seen_grade: float,
        m: int,
        cache: dict[Hashable, dict[int, float]] | None,
        shadow: CandidateStore | None = None,
    ) -> float:
        """Fetch all fields of ``obj`` (random access to the other
        lists) and return its overall grade.  The cross-list fetch goes
        through :meth:`~repro.middleware.access.AccessSession.random_access_across`
        -- the per-list scalar loop on local sessions, concurrently
        overlapped round trips (same charging) on remote ones.  In
        survive mode, every grade actually fetched is mirrored into the
        ``shadow`` store (nothing is recorded when the fetch raises)."""
        if cache is None:
            others = [j for j in range(m) if j != seen_list]
            fetched = iter(session.random_access_across(obj, others))
            grades = tuple(
                seen_grade if j == seen_list else next(fetched)
                for j in range(m)
            )
            if shadow is not None:
                for j in others:
                    shadow.record(obj, j, grades[j])
            return aggregation.aggregate(grades)
        known = cache.setdefault(obj, {})
        known[seen_list] = seen_grade
        missing = [j for j in range(m) if j not in known]
        if missing:
            for j, grade in zip(
                missing, session.random_access_across(obj, missing)
            ):
                known[j] = grade
        if shadow is not None:
            for j in range(m):
                shadow.record(obj, j, known[j])
        return aggregation.aggregate(tuple(known[j] for j in range(m)))
