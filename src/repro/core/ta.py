"""TA -- the Threshold Algorithm (Section 4), the paper's central object.

The loop is exactly the paper's:

1. Sorted access in parallel to each list.  Every object seen under
   sorted access is immediately resolved by random access to the other
   ``m - 1`` lists, its overall grade computed, and offered to a
   ``k``-slot buffer.
2. After each round, the *threshold* ``tau = t(bottom_1, ..., bottom_m)``
   is recomputed from the last grades seen under sorted access.  Halt as
   soon as the buffer holds ``k`` objects with grade ``>= tau``.

Correctness for every monotone ``t`` is Theorem 4.1 (an unseen object has
every field at or below the bottoms, so its grade is at most ``tau``).
Instance optimality over no-wild-guess algorithms is Theorem 6.1, with
ratio ``m + m(m-1) cR/cS`` tight for strict ``t`` (Corollary 6.2).

Two implementation switches:

``remember_seen=False`` (default)
    The paper's bounded-buffer TA (Theorem 4.2): grades learned earlier
    are deliberately *not* cached, so re-seeing an object re-pays
    ``m - 1`` random accesses.  Buffer = ``k`` objects + ``m`` bottoms.
``remember_seen=True``
    The practical variant with an unbounded seen-cache that skips
    duplicate random accesses -- the memory/cost trade-off the paper
    discusses after Theorem 4.2, measurable via ``max_buffer_size``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Hashable

from ..aggregation.base import AggregationFunction
from ..middleware.access import AccessSession
from .base import QueryError, TopKAlgorithm, TopKBuffer
from .result import HaltReason, RankedItem, TopKResult

__all__ = ["ThresholdAlgorithm", "EarlyStopView"]


@dataclass(frozen=True)
class EarlyStopView:
    """Snapshot shown to an interactive user after each round
    (Section 6.2's early-stopping protocol).

    ``guarantee`` is the paper's ``theta = tau / beta``: the current top-k
    list is a ``theta``-approximation to the true top-k.  It is ``1`` (or
    less) exactly when TA's stopping rule has fired.
    """

    round: int
    depth: int
    items: tuple[tuple[Hashable, float], ...]
    tau: float
    beta: float

    @property
    def guarantee(self) -> float:
        if self.beta <= 0:
            return float("inf")
        return max(1.0, self.tau / self.beta)


class ThresholdAlgorithm(TopKAlgorithm):
    """TA, faithful to Section 4 (see module docstring).

    ``batch_sizes`` implements footnote 6's relaxation: list ``i``
    receives ``batch_sizes[i]`` sorted accesses per round instead of
    one.  Correctness is unchanged (the threshold always uses the
    current bottoms), and instance optimality survives because the
    access rates stay within constant multiples of each other.
    """

    name = "TA"

    def __init__(
        self,
        remember_seen: bool = False,
        batch_sizes: Sequence[int] | None = None,
    ):
        self.remember_seen = remember_seen
        if batch_sizes is not None:
            batch_sizes = tuple(int(b) for b in batch_sizes)
            if not batch_sizes or any(b < 1 for b in batch_sizes):
                raise ValueError(
                    f"batch sizes must be positive integers, got {batch_sizes}"
                )
        self.batch_sizes = batch_sizes
        if remember_seen:
            self.name = "TA(cache)"
        if batch_sizes is not None:
            self.name += f"(batches={list(batch_sizes)})"

    # ------------------------------------------------------------------
    # hooks overridden by TA-theta and TAZ
    # ------------------------------------------------------------------
    def _halt_on_threshold(self, buffer: TopKBuffer, tau: float) -> bool:
        """The paper's stopping rule: k buffered objects with grade >= tau."""
        return buffer.full and buffer.min_grade >= tau

    def _lists_for_sorted_access(self, session: AccessSession) -> Sequence[int]:
        return range(session.num_lists)

    # ------------------------------------------------------------------
    def _run(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        return self._execute(session, aggregation, k, observer=None)

    def _execute(
        self,
        session: AccessSession,
        aggregation: AggregationFunction,
        k: int,
        observer: Callable[[EarlyStopView], bool] | None,
    ) -> TopKResult:
        m = session.num_lists
        sorted_lists = list(self._lists_for_sorted_access(session))
        if self.batch_sizes is not None and len(self.batch_sizes) != len(
            sorted_lists
        ):
            raise QueryError(
                f"{self.name}: got {len(self.batch_sizes)} batch sizes for "
                f"{len(sorted_lists)} sorted-accessible lists"
            )
        batches = self.batch_sizes or (1,) * len(sorted_lists)
        buffer = TopKBuffer(k)
        bottoms = [1.0] * m
        cache: dict[Hashable, dict[int, float]] | None = (
            {} if self.remember_seen else None
        )
        rounds = 0
        max_buffer = 0
        halt_reason = None

        while halt_reason is None:
            rounds += 1
            progressed = False
            for i, batch in zip(sorted_lists, batches):
                for _ in range(batch):
                    entry = session.sorted_access(i)
                    if entry is None:
                        break
                    progressed = True
                    obj, grade = entry
                    bottoms[i] = grade
                    overall = self._resolve(
                        session, aggregation, obj, i, grade, m, cache
                    )
                    buffer.offer(obj, overall)
            max_buffer = max(
                max_buffer, len(buffer) + (len(cache) if cache is not None else 0)
            )
            tau = aggregation.aggregate(tuple(bottoms))
            if self._halt_on_threshold(buffer, tau):
                halt_reason = HaltReason.THRESHOLD
            elif observer is not None and buffer.full:
                view = EarlyStopView(
                    round=rounds,
                    depth=session.depth,
                    items=tuple(buffer.items_desc()),
                    tau=tau,
                    beta=buffer.min_grade,
                )
                if observer(view):
                    halt_reason = HaltReason.INTERACTIVE
            if halt_reason is None:
                if not progressed:
                    # every sorted-capable list is exhausted: every object
                    # has been seen and resolved, so the buffer is exact
                    halt_reason = HaltReason.EXHAUSTED
                elif any(session.exhausted(i) for i in sorted_lists):
                    # one list ran dry mid-run: every object has appeared in
                    # it, hence has been seen and resolved already
                    halt_reason = HaltReason.EXHAUSTED

        tau = aggregation.aggregate(tuple(bottoms))
        beta = buffer.min_grade
        items = [
            RankedItem(obj, grade, grade, grade)
            for obj, grade in buffer.items_desc()
        ]
        return TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=halt_reason,
            max_buffer_size=max_buffer,
            extras={
                "final_threshold": tau,
                "guarantee": max(1.0, tau / beta) if beta > 0 else float("inf"),
            },
        )

    def _resolve(
        self,
        session: AccessSession,
        aggregation: AggregationFunction,
        obj: Hashable,
        seen_list: int,
        seen_grade: float,
        m: int,
        cache: dict[Hashable, dict[int, float]] | None,
    ) -> float:
        """Fetch all fields of ``obj`` (random access to the other lists)
        and return its overall grade."""
        if cache is None:
            grades = tuple(
                seen_grade if j == seen_list else session.random_access(j, obj)
                for j in range(m)
            )
            return aggregation.aggregate(grades)
        known = cache.setdefault(obj, {})
        known[seen_list] = seen_grade
        for j in range(m):
            if j not in known:
                known[j] = session.random_access(j, obj)
        return aggregation.aggregate(tuple(known[j] for j in range(m)))
