"""Result types returned by the top-k algorithms.

Two details of the paper's model shape these types:

* NRA and CA return the top-``k`` *objects* without exact grades
  (Section 8.1 weakens the output requirement because computing a grade
  may be arbitrarily more expensive than identifying the object, cf.
  Example 8.3).  Each :class:`RankedItem` therefore carries a lower/upper
  bound pair ``[W, B]`` and an exact ``grade`` only when ``W == B`` or the
  algorithm resolved the object fully.
* Instance-optimality accounting needs the halt depth, the access counts,
  and -- for Theorem 4.2's bounded-buffer claim -- the maximum bookkeeping
  footprint the algorithm ever held.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..middleware.access import AccessStats

__all__ = ["RankedItem", "TopKResult", "HaltReason"]


class HaltReason:
    """Why an algorithm stopped (string constants)."""

    THRESHOLD = "threshold"          # the paper's stopping rule fired
    NO_VIABLE = "no-viable"          # NRA/CA: no viable object outside top-k
    EXHAUSTED = "exhausted"          # a list (or all lists) ran out
    ALL_RESOLVED = "all-resolved"    # every object fully known
    INTERACTIVE = "interactive"      # user stopped an early-stopping run
    DEADLINE = "deadline"            # the query budget expired


@dataclass(frozen=True)
class RankedItem:
    """One output object.

    ``grade`` is the exact overall grade when the algorithm knows it,
    otherwise ``None``; ``lower_bound``/``upper_bound`` always satisfy
    ``lower_bound <= t(obj) <= upper_bound``.
    """

    obj: Hashable
    grade: float | None
    lower_bound: float
    upper_bound: float

    @property
    def is_exact(self) -> bool:
        return self.grade is not None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.grade is not None:
            return f"({self.obj!r}, {self.grade:.6g})"
        return f"({self.obj!r}, [{self.lower_bound:.6g}, {self.upper_bound:.6g}])"


@dataclass
class TopKResult:
    """The full outcome of one algorithm run.

    Attributes
    ----------
    items:
        The top-``k`` objects, best first (ties in unspecified order).
    stats:
        Access counts and middleware cost, as accounted by the session.
    rounds:
        Number of parallel sorted-access rounds executed.
    depth:
        ``max_i d_i`` -- the deepest sorted-access position reached.
    halt_reason:
        One of the :class:`HaltReason` constants.
    max_buffer_size:
        Peak number of objects the algorithm tracked simultaneously.
        Constant (``k`` plus bookkeeping) for TA, up to ``N`` for FA/NRA --
        the operational content of Theorem 4.2.
    extras:
        Algorithm-specific extras (e.g. TA-theta's achieved guarantee,
        CA's random-phase count).
    """

    algorithm: str
    k: int
    items: list[RankedItem]
    stats: AccessStats
    rounds: int
    depth: int
    halt_reason: str
    max_buffer_size: int
    extras: dict = field(default_factory=dict)

    @property
    def objects(self) -> list[Hashable]:
        """Output object ids, best first."""
        return [item.obj for item in self.items]

    @property
    def grades(self) -> list[float | None]:
        return [item.grade for item in self.items]

    @property
    def middleware_cost(self) -> float:
        return self.stats.middleware_cost

    @property
    def sorted_accesses(self) -> int:
        return self.stats.sorted_accesses

    @property
    def random_accesses(self) -> int:
        return self.stats.random_accesses

    def summary(self) -> str:
        """One-line human-readable summary."""
        shown = ", ".join(str(item) for item in self.items[:5])
        if len(self.items) > 5:
            shown += ", ..."
        return (
            f"{self.algorithm} top-{self.k}: [{shown}] "
            f"s={self.sorted_accesses} r={self.random_accesses} "
            f"cost={self.middleware_cost:g} depth={self.depth} "
            f"halt={self.halt_reason}"
        )
