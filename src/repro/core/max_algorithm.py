"""The ``mk``-sorted-access special case for ``t = max`` (Section 3).

The paper notes that for the (non-strict) aggregation function ``max``
there is a simple algorithm finding the top ``k`` with at most ``m * k``
sorted accesses and *no* random accesses -- a counterexample to FA's
optimality for all monotone functions.

Why it works: if an object ``R`` is among the true top ``k`` for ``max``,
then in the list where ``R`` attains its maximal field, fewer than ``k``
objects can sit above it (each of them has overall grade at least
``t(R)``).  Hence every top-``k`` object appears in the top-``k`` prefix
of some list at its own maximal field.  Taking the best ``k`` objects (by
best-seen field) from the union of the ``k``-prefixes is therefore
grade-correct, and the best-seen field of each returned object equals its
true overall grade.

The algorithm refuses to run for any other aggregation function -- it is
sound only for ``max``.
"""

from __future__ import annotations

from typing import Hashable

from ..aggregation.base import AggregationFunction
from ..aggregation.standard import Max
from ..middleware.access import AccessSession
from .base import QueryError, TopKAlgorithm, TopKBuffer
from .result import HaltReason, RankedItem, TopKResult

__all__ = ["MaxAlgorithm"]


class MaxAlgorithm(TopKAlgorithm):
    """Top-k for ``max`` in at most ``m*k`` sorted accesses."""

    name = "MaxAlgorithm"
    uses_random_access = False

    def _run(
        self, session: AccessSession, aggregation: AggregationFunction, k: int
    ) -> TopKResult:
        if not isinstance(aggregation, Max):
            raise QueryError(
                "MaxAlgorithm is only correct for t = max; got "
                f"{aggregation.name!r}"
            )
        m = session.num_lists
        best_seen: dict[Hashable, float] = {}
        rounds = 0
        for _ in range(k):
            rounds += 1
            for i in range(m):
                entry = session.sorted_access(i)
                if entry is None:
                    continue
                obj, grade = entry
                if grade > best_seen.get(obj, -1.0):
                    best_seen[obj] = grade
        buffer = TopKBuffer(k)
        for obj, grade in best_seen.items():
            buffer.offer(obj, grade)
        items = [
            RankedItem(obj, grade, grade, grade)
            for obj, grade in buffer.items_desc()
        ]
        return TopKResult(
            algorithm=self.name,
            k=k,
            items=items,
            stats=session.stats(),
            rounds=rounds,
            depth=session.depth,
            halt_reason=HaltReason.THRESHOLD,
            max_buffer_size=len(best_seen),
        )
